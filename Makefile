# Convenience targets for the reproduction.

.PHONY: install test lint bench tables census races quick all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

lint:
	ruff check src tests benchmarks

bench:
	pytest benchmarks/ --benchmark-only

tables:
	python -m repro tables

census:
	python -m repro census

races:
	python -m repro races

quick:
	python examples/quickstart.py

all: test bench
