# Convenience targets for the reproduction.

.PHONY: install test bench tables census quick all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

tables:
	python -m repro tables

census:
	python -m repro census

quick:
	python examples/quickstart.py

all: test bench
