# Convenience targets for the reproduction.

.PHONY: install test lint bench bench-perf bench-server bench-cluster bench-workload golden tables census races chaos explore litmus serve cluster workload failover quick all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

lint:
	ruff check src tests benchmarks

bench:
	pytest benchmarks/ --benchmark-only

# Wall-clock cost of the simulator itself; writes BENCH_kernel_perf.json
# with improvement ratios against the pinned pre-optimisation baseline.
bench-perf:
	PYTHONPATH=src python benchmarks/bench_kernel_perf.py

# Multi-tenant RPC server SLO sweep (policy x pool size x load); writes
# BENCH_server.json with p50/p95/p99/p999, throughput and shed counts.
bench-server:
	PYTHONPATH=src python benchmarks/bench_server.py

# Sharded cluster SLO sweep (routing policy x shard count x admission x
# mix) plus the single-server baseline; writes BENCH_cluster.json.
bench-cluster:
	PYTHONPATH=src python benchmarks/bench_cluster.py

# Million-client workload scenarios + cache stampede contrast + the
# SLO-attainment feedback loop; writes BENCH_workload.json.
bench-workload:
	PYTHONPATH=src python benchmarks/bench_workload.py

# The golden-schedule determinism guard on its own.
golden:
	PYTHONPATH=src python -m pytest tests/test_golden_schedule.py -q

tables:
	python -m repro tables

census:
	python -m repro census

races:
	python -m repro races

# Seeded fault-injection sweep with the waits-for watchdog and invariant
# checks; writes the JSON report (see docs/ROBUSTNESS.md).
chaos:
	PYTHONPATH=src python -m repro chaos --smoke --output chaos-report.json

# Systematic schedule exploration: find the directed scenarios' bugs,
# shrink each to a minimal replayable trace, write the JSON report (see
# docs/EXPLORATION.md).
explore:
	PYTHONPATH=src python -m repro --seed 0 explore --scenario all --budget 200 --output explore-report.json

# Litmus battery: enumerate reachable SB/MP/LB/IRIW outcomes under the
# sc/tso/pso memory models, check the pinned tables, and save a
# replayable witness trace for every beyond-SC outcome (see
# docs/MEMORY.md).
litmus:
	PYTHONPATH=src python -m repro --seed 0 litmus --trace-dir litmus-traces --output litmus-report.json

# The multi-tenant RPC server world with its latency-SLO report.
serve:
	PYTHONPATH=src python -m repro serve

# The sharded cluster world (balancer + N shards) with its SLO rollup.
cluster:
	PYTHONPATH=src python -m repro cluster

# A compiled million-client workload scenario with its SLO-attainment
# report (see docs/WORKLOAD.md).
workload:
	PYTHONPATH=src python -m repro workload

# The failover battery: directed kill-primary + partition-balancer chaos
# plus schedule exploration of the replicated cluster (zero lost
# acknowledged requests; see docs/CLUSTER.md "Replication & failover").
failover:
	PYTHONPATH=src python -m repro --seed 0 chaos --scenario cluster-kill-primary,cluster-partition-balancer --runs 0 --skip-golden --output failover-report.json
	PYTHONPATH=src python -m repro --seed 0 explore --scenario cluster-failover --budget 50 --output failover-explore.json

quick:
	python examples/quickstart.py

all: test bench
