"""Chaos sweep: workloads under sampled fault plans, with invariants.

``python -m repro chaos`` runs the Cedar/GVX worlds and a set of
synchronisation micro-scenarios under seeded :class:`FaultPlan`s — stolen
NOTIFYs, spurious wakeups, feigned FORK failures, thread kills, timer
jitter — with the waits-for watchdog on, and asserts the robustness
invariants the paper's systems earned the hard way:

* **No leaked monitor holds.**  Every monitor a live thread holds names
  that thread as owner, and vice versa — even after injected kills,
  because generator unwinding runs ``finally`` clauses.
* **Stats reconcile.**  ``threads_created == threads_finished + live``,
  and stack reservations track live threads exactly; after shutdown both
  ``live_threads`` and ``stack_bytes`` are zero.
* **Every partial deadlock is detected.**  After each run an independent
  brute-force scan of the waits-for graph (straight from thread state,
  sharing no bookkeeping with the watchdog) finds the cycles; each must
  already be in the watchdog's reports.
* **Directed deadlocks are found while the system lives.**  Two
  scenarios wedge a thread pair on purpose — one via the §5.3
  IF-instead-of-WHILE anti-pattern sprung by an injected spurious
  wakeup, one via a plain ABBA lock cycle — and the sweep asserts the
  watchdog reported exactly that cycle while an unrelated daemon kept
  running.
* **A wedged shard is congestion, not deadlock.**  A directed cluster
  scenario stalls every completion path of one shard; the balancer's
  health probe must trip and re-route the queued work to the surviving
  shard, and the watchdog must report nothing — threads burning CPU
  behind a breaker are live, not wedged on each other.
* **Single flight means single flight.**  A directed cache-stampede
  scenario (hot key, short TTL, wildcard invalidations) asserts that
  with the guard on the cache never has two fetches for one key in
  flight, backend amplification is exactly one fetch per miss window,
  and parked waiters read as congestion, not deadlock.
* **Faults off ≡ no faults.**  A plan with every rate at zero (plus the
  watchdog) must reproduce the pinned golden schedule hashes exactly,
  proving the injection seams are free when disarmed.

The sweep is a pure function of its seed; the JSON report it writes is
the CI artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.faults import FaultPlan
from repro.analysis.watchdog import waits_on
from repro.kernel import Kernel, KernelConfig, msec, sec
from repro.kernel import primitives as p
from repro.kernel.primitives import Enter, Exit, Notify
from repro.kernel.rng import DeterministicRng
from repro.kernel.thread import ThreadState
from repro.sync.condition import (
    ConditionVariable,
    await_condition,
    await_condition_if_broken,
)
from repro.cluster.replication import (
    install_balancer_kill,
    install_primary_kill,
    lost_requests,
)
from repro.cluster.world import build_cluster_world
from repro.server.model import TenantSpec
from repro.server.world import build_server_world
from repro.sync.monitor import Monitor
from repro.workloads import build_cedar_world, build_gvx_world
from repro.workloads.cedar import CEDAR_ACTIVITIES
from repro.workloads.gvx import GVX_ACTIVITIES

#: Simulated time per chaos run.
CHAOS_RUN = sec(1)


# ---------------------------------------------------------------------------
# Fault-plan sampling
# ---------------------------------------------------------------------------

def sample_plan(rng: DeterministicRng, *, kills: bool = True) -> FaultPlan:
    """Draw one fault plan from the sweep's sampling distribution."""
    return FaultPlan(
        drop_notify_prob=rng.choice([0.0, 0.05, 0.2]),
        spurious_wakeup_prob=rng.choice([0.0, 0.05, 0.2]),
        fork_fail_prob=rng.choice([0.0, 0.1]),
        kill_thread_prob=rng.choice([0.0, 0.005, 0.02]) if kills else 0.0,
        timer_jitter_prob=rng.choice([0.0, 0.3]),
        timer_jitter_max=msec(20),
        kill_immune=("SystemDaemon",),
    )


def plan_dict(plan: FaultPlan) -> dict:
    return {
        "drop_notify_prob": plan.drop_notify_prob,
        "spurious_wakeup_prob": plan.spurious_wakeup_prob,
        "fork_fail_prob": plan.fork_fail_prob,
        "kill_thread_prob": plan.kill_thread_prob,
        "timer_jitter_prob": plan.timer_jitter_prob,
        "timer_jitter_max": plan.timer_jitter_max,
    }


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------
# Each scenario builder takes a KernelConfig and returns
# (kernel, shutdown_callable).  ``kill_safe`` marks workloads whose thread
# bodies all release monitors through ``finally`` (so injected kills
# unwind cleanly); kills are masked out of sampled plans elsewhere.

def _world_scenario(builder, activities, activity):
    def build(config: KernelConfig):
        world, context = builder(config)
        install = activities[activity]
        if install is not None:
            install(world, context)
        return world.kernel, world.shutdown

    return build


def _producer_consumer(config: KernelConfig):
    """The correct WAIT-in-a-loop idiom: survives every fault kind."""
    kernel = Kernel(config)
    lock = Monitor("chaos.pc")
    nonempty = ConditionVariable(lock, "chaos.nonempty")
    state = {"available": 0, "consumed": 0}

    def consumer():
        while state["consumed"] < 60:
            yield Enter(lock)
            try:
                # The timeout bounds the damage of a stolen NOTIFY; the
                # WHILE bounds the damage of a spurious wakeup.
                yield from await_condition(
                    nonempty, lambda: state["available"] > 0, timeout=msec(40)
                )
                if state["available"] > 0:
                    state["available"] -= 1
                    state["consumed"] += 1
            finally:
                yield Exit(lock)

    def producer():
        for _ in range(60):
            yield Enter(lock)
            try:
                state["available"] += 1
                yield Notify(nonempty)
            finally:
                yield Exit(lock)
            yield p.Pause(msec(5))

    kernel.fork_root(consumer, name="consumer", priority=5)
    kernel.fork_root(producer, name="producer", priority=4)
    return kernel, kernel.shutdown


def _fork_churn(config: KernelConfig):
    """Fork/join trees under feigned FORK failures and kills."""
    kernel = Kernel(config)

    def leaf(work):
        yield p.Compute(work)

    def spawner(depth):
        children = []
        for i in range(3):
            child = yield p.Fork(leaf, args=(msec(1) * (i + 1),))
            children.append(child)
        if depth > 0:
            sub = yield p.Fork(spawner, args=(depth - 1,))
            children.append(sub)
        for child in children:
            try:
                yield p.Join(child)
            except Exception:
                pass  # a killed child's death arrives at JOIN; survive it

    def root():
        for _ in range(6):
            top = yield p.Fork(spawner, args=(1,))
            try:
                yield p.Join(top)
            except Exception:
                pass
            yield p.Pause(msec(10))

    kernel.fork_root(root, name="churn-root", priority=4)
    return kernel, kernel.shutdown


def _server_chaos(scenario):
    """The RPC server world under faults.  Stolen NOTIFYs must degrade to
    one-tick stalls (every pool get is timed), and injected kills must
    not leak monitor holds or wedge the remaining workers."""

    def build(config: KernelConfig):
        world, _server = build_server_world(config, scenario=scenario)
        return world.kernel, world.shutdown

    return build


def _cluster_chaos(scenario):
    """The sharded cluster world under faults: two shards, the balancer
    pipeline, WFQ admission.  Stolen NOTIFYs on the credit CV must
    degrade to one-tick dispatch stalls (the wait is timed), and kills
    anywhere in the pipeline must not leak monitors."""

    def build(config: KernelConfig):
        config.ncpus = 2
        world, _balancer = build_cluster_world(config, scenario=scenario)
        return world.kernel, world.shutdown

    return build


def _workload_chaos(scenario):
    """A compiled workload scenario under faults: the cluster (and, for
    cache scenarios, the cache tier) driven by aggregate million-client
    arrival pumps.  The pumps are kernel events, not threads, so kills
    land on the serving side only — the offered load never flinches,
    which is exactly what makes open-loop overload dangerous."""

    def build(config: KernelConfig):
        from repro.workload.scenarios import workload_spec
        from repro.workload.world import build_workload_world

        spec = workload_spec(scenario)
        config.ncpus = spec.shards + (1 if spec.cache else 0)
        ww = build_workload_world(config, spec=spec)
        return ww.world.kernel, ww.world.shutdown

    return build


def _make_cache_stampede():
    """Directed: hot-key TTL expiry + wildcard invalidations with the
    single-flight guard ON — the stampede scenario in its guarded
    configuration.  The post-check asserts the guard's whole story: at
    most one fetch per key in flight (``max_inflight_per_key == 1``),
    backend amplification exactly one fetch per miss window, concurrent
    misses actually coalesced, traffic completing, and the watchdog
    quiet — parked waiters are congestion accounting, not deadlock.
    (The *unguarded* contrast — amplification, p99 blowup, SLO loss —
    is measured by ``benchmarks/bench_workload.py``.)
    """
    state: dict[str, Any] = {}

    def build(config: KernelConfig):
        from repro.workload.scenarios import workload_spec
        from repro.workload.world import build_workload_world

        spec = workload_spec("cache-stampede")
        config.ncpus = spec.shards + 1
        ww = build_workload_world(config, spec=spec, single_flight=True)
        state["ww"] = ww
        return ww.world.kernel, ww.world.shutdown

    def post_check(kernel: Kernel) -> list[str]:
        ww = state.get("ww")
        if ww is None:
            return ["stampede: world never built"]
        cache = ww.cache
        failures = []
        if cache.max_inflight_per_key != 1:
            failures.append(
                "stampede: single-flight violated — "
                f"max_inflight_per_key={cache.max_inflight_per_key}"
            )
        if cache.fetches != cache.fetch_windows:
            failures.append(
                "stampede: backend amplification with the guard on — "
                f"{cache.fetches} fetches for {cache.fetch_windows} windows"
            )
        if cache.coalesced_waits == 0:
            failures.append(
                "stampede: no concurrent miss was ever coalesced"
            )
        if cache.fills == 0:
            failures.append("stampede: no fill ever landed")
        if cache.stats.total("completed") == 0:
            failures.append("stampede: no cached request completed")
        if kernel.watchdog is not None and kernel.watchdog.deadlocks:
            failures.append(
                "stampede: watchdog reported a deadlock for parked waiters"
            )
        return failures

    return build, post_check


_CACHE_STAMPEDE_BUILD, _CACHE_STAMPEDE_CHECK = _make_cache_stampede()


def _make_cluster_wedge():
    """Directed: wedge one shard, assert the breaker story end to end.

    Poison requests with effectively-infinite compute occupy every
    worker of shard 0 (plus its serializer), so its outcome counters
    stop while its queues hold work.  The balancer's health sleeper must
    trip the breaker, and — now that the shard is replicated — promote
    the replica, replaying the acknowledged in-flight requests instead
    of dropping them (``lost_inflight`` must stay zero; it counted 15+
    per run before replication).  Traffic must keep completing on the
    surviving shards, and the watchdog must stay quiet throughout — a
    wedged shard is congestion, not deadlock.
    """
    state: dict[str, Any] = {}

    def build(config: KernelConfig):
        config.ncpus = 4
        world, balancer = build_cluster_world(
            config, scenario="steady", replicas=True, standby=False
        )
        state["balancer"] = balancer
        shard0 = balancer.shards[0]
        poison = TenantSpec(
            name="poison",
            mode="open",
            cost=sec(30),
            cost_jitter=0.0,
            deadline=sec(10),
            max_retries=0,
        )
        ordered_poison = TenantSpec(
            name="ordered",
            mode="open",
            cost=sec(30),
            cost_jitter=0.0,
            deadline=sec(10),
            max_retries=0,
            ordered=True,
        )

        def inject(k):
            # One per worker wedges the pool; one more wedges the
            # ordered serializer, so no completion path stays open.
            for _ in range(shard0.workers):
                shard0.net.post(shard0.make_request(poison, k.now))
            shard0.net.post(shard0.make_request(ordered_poison, k.now))

        world.kernel.post_at(msec(5), inject)
        return world.kernel, world.shutdown

    def post_check(kernel: Kernel) -> list[str]:
        balancer = state.get("balancer")
        if balancer is None:
            return ["wedge: balancer never built"]
        failures = []
        if balancer.trips < 1:
            failures.append("wedge: health probe never tripped the breaker")
        if balancer.promotions < 1:
            failures.append("wedge: tripped shard was never promoted")
        if balancer.replayed < 1:
            failures.append(
                "wedge: no in-flight request was replayed onto the replica"
            )
        lost = sum(balancer.lost_inflight)
        if lost:
            failures.append(
                f"wedge: {lost} acknowledged in-flight requests dropped"
            )
        survivors = sum(
            shard.stats.total("completed")
            for sid, shard in enumerate(balancer.shards)
            if sid != 0
        )
        if survivors == 0:
            failures.append("wedge: no completions on the surviving shards")
        if balancer.shards[0].stats.total("completed") == 0:
            failures.append("wedge: promoted replica completed nothing")
        if kernel.watchdog is not None and kernel.watchdog.deadlocks:
            failures.append(
                "wedge: watchdog reported a deadlock for a congested shard"
            )
        return failures

    return build, post_check


_CLUSTER_WEDGE_BUILD, _CLUSTER_WEDGE_CHECK = _make_cluster_wedge()


def _track_minted(balancer) -> list:
    """Wrap the balancer's request factory so every minted request is
    recorded — the ground-truth population for the custody audit."""
    minted: list = []
    original = balancer.factory.make

    def make(*args, **kwargs):
        req = original(*args, **kwargs)
        minted.append(req)
        return req

    balancer.factory.make = make
    return minted


def _settled_losses(kernel: Kernel, balancer, minted: list) -> list:
    """Requests that vanished: still PENDING yet held by no component.

    A request can be transiently unheld while a reroute/retry one-shot
    is being forked, so a nonzero audit gets up to three short settle
    windows before it counts as loss.
    """
    lost = lost_requests(balancer, minted)
    for _ in range(3):
        if not lost:
            break
        kernel.run_for(msec(40), raise_on_deadlock=False)
        lost = lost_requests(balancer, minted)
    return lost


def _make_kill_primary():
    """Directed: kill every thread of a primary shard mid-batch.

    At ``msec(100)`` the failover mix has acknowledged work in every
    stage of shard 0 — queued, executing, retry-parked — when a posted
    event kills all of its threads at once.  The health probe must trip
    on the stalled progress counters, promote the replica, and replay
    the un-acked in-flight requests from the retransmit buffer against
    the replica's applied op log.  The custody audit then proves the
    tentpole claim: **zero acknowledged requests lost** — every minted
    request is either terminal or held by some live component.
    """
    state: dict[str, Any] = {}

    def build(config: KernelConfig):
        config.ncpus = 4
        world, balancer = build_cluster_world(
            config, scenario="failover", replicas=True, standby=False
        )
        state["balancer"] = balancer
        state["minted"] = _track_minted(balancer)
        install_primary_kill(world, balancer, 0, msec(100))
        return world.kernel, world.shutdown

    def post_check(kernel: Kernel) -> list[str]:
        balancer = state.get("balancer")
        if balancer is None:
            return ["kill-primary: balancer never built"]
        failures = []
        if balancer.promotions < 1:
            failures.append("kill-primary: replica was never promoted")
        if balancer.replayed < 1:
            failures.append(
                "kill-primary: no in-flight request was replayed"
            )
        if sum(balancer.lost_inflight):
            failures.append(
                "kill-primary: lost_inflight counted on a replicated shard"
            )
        if balancer.quarantined:
            failures.append(
                "kill-primary: requests quarantined despite a live replica"
            )
        if balancer.shards[0].stats.total("completed") == 0:
            failures.append(
                "kill-primary: promoted replica completed nothing"
            )
        lost = _settled_losses(kernel, balancer, state["minted"])
        if lost:
            rids = ", ".join(req.rid for req in lost[:5])
            failures.append(
                f"kill-primary: {len(lost)} acknowledged requests "
                f"vanished ({rids})"
            )
        if kernel.watchdog is not None and kernel.watchdog.deadlocks:
            failures.append(
                "kill-primary: watchdog reported a deadlock during failover"
            )
        return failures

    return build, post_check


_KILL_PRIMARY_BUILD, _KILL_PRIMARY_CHECK = _make_kill_primary()


def _make_partition_balancer():
    """Directed: partition away the balancer; the standby must take over.

    A posted event kills the primary balancer's whole thread population
    at ``msec(150)``.  Its lease stops being renewed, so the standby's
    watch sleeper must seize it, rebuild routing state from the shards'
    own progress counters, re-inject anything the dead pipeline was
    carrying between queues, and fork a replacement population.  The
    cluster must demonstrably complete work *after* the takeover, and
    the custody audit must find no vanished requests.
    """
    state: dict[str, Any] = {}

    def build(config: KernelConfig):
        config.ncpus = 4
        world, balancer = build_cluster_world(
            config, scenario="failover", replicas=True, standby=True
        )
        state["balancer"] = balancer
        state["minted"] = _track_minted(balancer)
        install_balancer_kill(world, balancer, msec(150))
        return world.kernel, world.shutdown

    def post_check(kernel: Kernel) -> list[str]:
        balancer = state.get("balancer")
        if balancer is None:
            return ["partition: balancer never built"]
        failures = []
        lease = balancer.lease
        standby = balancer.standby
        if lease is None or lease.takeovers < 1:
            failures.append("partition: standby never seized the lease")
        if standby is None or not standby.active:
            failures.append("partition: standby never activated")
        else:
            done = sum(
                balancer.shard_done(sid)
                for sid in range(len(balancer.shards))
            )
            if done <= standby.completed_at_takeover:
                failures.append(
                    "partition: no completions after the takeover"
                )
        lost = _settled_losses(kernel, balancer, state["minted"])
        if lost:
            rids = ", ".join(req.rid for req in lost[:5])
            failures.append(
                f"partition: {len(lost)} acknowledged requests "
                f"vanished ({rids})"
            )
        if kernel.watchdog is not None and kernel.watchdog.deadlocks:
            failures.append(
                "partition: watchdog reported a deadlock during takeover"
            )
        return failures

    return build, post_check


_PARTITION_LB_BUILD, _PARTITION_LB_CHECK = _make_partition_balancer()


def _wait_if_deadlock(config: KernelConfig):
    """Directed: an injected spurious wakeup springs the §5.3 IF-not-WHILE
    anti-pattern into an ABBA monitor cycle, while a daemon keeps running.

    The victim WAITs (untimed, IF-guarded) for ``ready``; the spurious
    wake makes it proceed on a broken invariant and reach for a second
    monitor held by its partner, which is about to reach for the first.
    """
    kernel = Kernel(config)
    m_outer = Monitor("chaos.outer")
    m_inner = Monitor("chaos.inner")
    ready_cv = ConditionVariable(m_inner, "chaos.ready")
    state = {"ready": False}

    def victim():
        yield Enter(m_inner)
        # Anti-pattern: checks once, waits once, believes the wake.
        yield from await_condition_if_broken(ready_cv, lambda: state["ready"])
        yield Enter(m_outer)  # holds inner, wants outer -> half the cycle
        yield Exit(m_outer)
        yield Exit(m_inner)

    def partner():
        yield Enter(m_outer)
        yield p.Pause(msec(400))  # outlive the spurious wake
        yield Enter(m_inner)  # holds outer, wants inner -> cycle closed
        yield Exit(m_inner)
        yield Exit(m_outer)

    def daemon():
        while True:
            yield p.Pause(msec(20))
            yield p.Compute(msec(1))

    kernel.fork_root(victim, name="victim", priority=4)
    kernel.fork_root(partner, name="partner", priority=4)
    kernel.fork_root(daemon, name="bystander", priority=3)
    return kernel, kernel.shutdown


#: The plan that springs ``_wait_if_deadlock``: one fault kind, certain.
WAIT_IF_PLAN = FaultPlan(spurious_wakeup_prob=1.0)


def _abba_deadlock(config: KernelConfig):
    """Directed: a plain ABBA cycle (no faults needed), daemon running."""
    kernel = Kernel(config)
    m_a = Monitor("chaos.a")
    m_b = Monitor("chaos.b")

    def first():
        yield Enter(m_a)
        yield p.Pause(msec(10))
        yield Enter(m_b)
        yield Exit(m_b)
        yield Exit(m_a)

    def second():
        yield Enter(m_b)
        yield p.Pause(msec(10))
        yield Enter(m_a)
        yield Exit(m_a)
        yield Exit(m_b)

    def daemon():
        while True:
            yield p.Pause(msec(20))
            yield p.Compute(msec(1))

    kernel.fork_root(first, name="first", priority=4)
    kernel.fork_root(second, name="second", priority=4)
    kernel.fork_root(daemon, name="bystander", priority=3)
    return kernel, kernel.shutdown


@dataclass(frozen=True)
class ChaosScenario:
    name: str
    build: Callable[[KernelConfig], tuple]
    #: All thread bodies release monitors via ``finally`` — injected
    #: kills unwind cleanly, so the sweep may enable them.
    kill_safe: bool = True
    #: The scenario is engineered to wedge: the watchdog MUST report a
    #: cycle, and a bystander thread must still be runnable.
    expect_deadlock: bool = False
    #: Fixed plan for directed scenarios (None -> sampled).
    plan: FaultPlan | None = None
    #: Scenario-specific invariants, run against the live kernel after
    #: the generic checks (directed cluster scenarios assert breaker
    #: state the generic invariants cannot see).
    post_check: Callable[[Kernel], list] | None = None


SWEEP_SCENARIOS: tuple[ChaosScenario, ...] = (
    ChaosScenario(
        "cedar-idle",
        _world_scenario(build_cedar_world, CEDAR_ACTIVITIES, "idle"),
    ),
    ChaosScenario(
        "cedar-keyboard",
        _world_scenario(build_cedar_world, CEDAR_ACTIVITIES, "keyboard"),
    ),
    ChaosScenario(
        "cedar-formatting",
        _world_scenario(build_cedar_world, CEDAR_ACTIVITIES, "formatting"),
    ),
    ChaosScenario(
        "gvx-idle", _world_scenario(build_gvx_world, GVX_ACTIVITIES, "idle")
    ),
    ChaosScenario(
        "gvx-keyboard",
        _world_scenario(build_gvx_world, GVX_ACTIVITIES, "keyboard"),
    ),
    ChaosScenario("producer-consumer", _producer_consumer),
    ChaosScenario("fork-churn", _fork_churn),
    ChaosScenario("server-steady", _server_chaos("steady")),
    ChaosScenario("server-overload", _server_chaos("overload")),
    ChaosScenario("cluster-steady", _cluster_chaos("steady")),
    ChaosScenario("cluster-skewed", _cluster_chaos("skewed")),
    ChaosScenario("workload-diurnal", _workload_chaos("diurnal")),
    ChaosScenario("cache-steady", _workload_chaos("cache-steady")),
)

DIRECTED_SCENARIOS: tuple[ChaosScenario, ...] = (
    ChaosScenario(
        "wait-if-deadlock",
        _wait_if_deadlock,
        expect_deadlock=True,
        plan=WAIT_IF_PLAN,
    ),
    ChaosScenario(
        "abba-deadlock",
        _abba_deadlock,
        expect_deadlock=True,
        plan=FaultPlan(),
    ),
    ChaosScenario(
        "cluster-wedged-shard",
        _CLUSTER_WEDGE_BUILD,
        plan=FaultPlan(),
        post_check=_CLUSTER_WEDGE_CHECK,
    ),
    ChaosScenario(
        "cluster-kill-primary",
        _KILL_PRIMARY_BUILD,
        plan=FaultPlan(),
        post_check=_KILL_PRIMARY_CHECK,
    ),
    ChaosScenario(
        "cluster-partition-balancer",
        _PARTITION_LB_BUILD,
        plan=FaultPlan(),
        post_check=_PARTITION_LB_CHECK,
    ),
    ChaosScenario(
        "cache-stampede",
        _CACHE_STAMPEDE_BUILD,
        plan=FaultPlan(),
        post_check=_CACHE_STAMPEDE_CHECK,
    ),
)


# ---------------------------------------------------------------------------
# Invariant checks
# ---------------------------------------------------------------------------

def _brute_force_cycles(kernel: Kernel) -> list[frozenset[int]]:
    """Independent waits-for cycle scan, sharing no state with the
    watchdog: every live thread is a start node, every edge re-derived."""
    cycles: list[frozenset[int]] = []
    seen: set[frozenset[int]] = set()
    for start in kernel.threads.values():
        if not start.alive:
            continue
        path: list[int] = []
        on_path: set[int] = set()
        node = start
        while node is not None and node.tid not in on_path:
            path.append(node.tid)
            on_path.add(node.tid)
            node = waits_on(node)
        if node is not None:
            cycle = frozenset(path[path.index(node.tid):])
            if cycle not in seen:
                seen.add(cycle)
                cycles.append(cycle)
    return cycles


def check_invariants(kernel: Kernel, *, expect_deadlock: bool) -> list[str]:
    """All post-run invariant checks; returns human-readable violations."""
    failures: list[str] = []
    stats = kernel.stats

    # 1. Monitor-hold consistency (no leaks through kills/unwinds).
    monitors: dict[int, Any] = {}
    for thread in kernel.threads.values():
        for monitor in thread.held_monitors:
            monitors[monitor.uid] = monitor
            if not thread.alive:
                failures.append(
                    f"dead thread {thread.name!r} still lists "
                    f"monitor {monitor.name!r} as held"
                )
            elif monitor.owner is not thread:
                failures.append(
                    f"{thread.name!r} holds {monitor.name!r} but its owner "
                    f"is {getattr(monitor.owner, 'name', None)!r}"
                )
        candidate = thread.blocked_on
        if hasattr(candidate, "entry_queue") and hasattr(candidate, "owner"):
            monitors[candidate.uid] = candidate
    for monitor in monitors.values():
        owner = monitor.owner
        if owner is not None and monitor not in owner.held_monitors:
            failures.append(
                f"monitor {monitor.name!r} names owner {owner.name!r} "
                "which does not hold it"
            )

    # 2. Thread accounting reconciles.
    live = [t for t in kernel.threads.values() if t.alive]
    if stats.live_threads != len(live):
        failures.append(
            f"live_threads={stats.live_threads} but {len(live)} threads alive"
        )
    if stats.threads_created != stats.threads_finished + stats.live_threads:
        failures.append(
            f"created={stats.threads_created} != finished="
            f"{stats.threads_finished} + live={stats.live_threads}"
        )
    expected_stack = stats.live_threads * kernel.config.stack_reservation
    if stats.stack_bytes != expected_stack:
        failures.append(
            f"stack_bytes={stats.stack_bytes} != live*reservation="
            f"{expected_stack}"
        )

    # 3. Every partial deadlock detected: force a final sweep, then scan
    # independently and require containment.
    watchdog = kernel.watchdog
    if watchdog is not None:
        watchdog.check(kernel.now)
        reported = {report.tids for report in watchdog.deadlocks}
        for cycle in _brute_force_cycles(kernel):
            if cycle not in reported:
                names = sorted(
                    kernel.threads[tid].name for tid in cycle
                )
                failures.append(f"undetected waits-for cycle: {names}")

    # 4. Directed scenarios: the wedge must exist, be reported, and be
    # *partial* — a bystander still making progress.
    if expect_deadlock:
        if watchdog is None or not watchdog.deadlocks:
            failures.append("expected a partial deadlock; watchdog found none")
        else:
            wedged = set().union(*(r.tids for r in watchdog.deadlocks))
            bystanders = [
                t for t in live
                if t.tid not in wedged
                and t.state in (ThreadState.READY, ThreadState.RUNNING,
                                ThreadState.SLEEPING)
            ]
            if not bystanders:
                failures.append(
                    "deadlock detected but no unrelated thread is still live"
                )
    return failures


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------

@dataclass
class RunRecord:
    scenario: str
    plan: dict
    seed: int
    faults: dict = field(default_factory=dict)
    deadlocks: int = 0
    starvation: int = 0
    failures: list[str] = field(default_factory=list)
    #: Where the failing run's decision trace was saved (see
    #: ``python -m repro explore --replay``), or None.
    trace_path: str | None = None

    @property
    def ok(self) -> bool:
        return not self.failures


def run_one(
    scenario: ChaosScenario,
    plan: FaultPlan,
    seed: int,
    *,
    trace_dir: str | None = None,
) -> RunRecord:
    """One chaos run: build, run, sweep, check, shut down.

    Every run records its schedule through a :class:`ScheduleController`
    (with default tails, so directed runs stay byte-identical — the
    disarmed seams decide nothing).  When ``trace_dir`` is given and the
    run fails an invariant, the recorded :class:`DecisionTrace` is saved
    there so ``repro explore --replay`` can reproduce the exact run.
    """
    from repro.explore.trace import TAIL_DEFAULT, ScheduleController

    recorder = ScheduleController(tail=TAIL_DEFAULT)
    config = KernelConfig(
        seed=seed, fault_plan=plan, watchdog=True,
        schedule_controller=recorder,
    )
    kernel, shutdown = scenario.build(config)
    record = RunRecord(
        scenario=scenario.name, plan=plan_dict(plan), seed=seed
    )
    try:
        try:
            kernel.run_until(CHAOS_RUN, raise_on_deadlock=False)
        except Exception as error:  # noqa: BLE001 - a fault surfaced a
            # workload bug (e.g. a monitor held without try/finally when a
            # kill unwound it); that is a finding, not a harness crash.
            record.failures.append(f"run aborted: {error!r}")
        record.faults = dict(kernel.stats.fault_counts)
        record.deadlocks = len(kernel.watchdog.deadlocks)
        record.starvation = len(kernel.watchdog.starvation)
        record.failures.extend(
            check_invariants(kernel, expect_deadlock=scenario.expect_deadlock)
        )
        if scenario.post_check is not None:
            record.failures.extend(scenario.post_check(kernel))
    finally:
        shutdown()
    # 5. Post-shutdown: everything returned.
    stats = kernel.stats
    if stats.live_threads != 0:
        record.failures.append(
            f"after shutdown: live_threads={stats.live_threads}"
        )
    if stats.stack_bytes != 0:
        record.failures.append(
            f"after shutdown: stack_bytes={stats.stack_bytes}"
        )
    if record.failures and trace_dir is not None:
        import os

        recorder.trace.meta.update(
            scenario=scenario.name, seed=seed, plan=record.plan,
            kill_immune=list(plan.kill_immune),
            failures=list(record.failures),
        )
        path = os.path.join(
            trace_dir, f"chaos-{scenario.name}-seed{seed}.trace.json"
        )
        recorder.trace.save(path)
        record.trace_path = path
    return record


def verify_golden(*, with_watchdog: bool = True) -> dict:
    """Faults-off chaos mode: a zero-rate plan (and the watchdog) must
    reproduce the pinned golden schedule hashes bit-for-bit."""
    from repro.analysis.golden import SCENARIOS, load_golden

    golden = load_golden()
    overrides: dict[str, Any] = {"fault_plan": FaultPlan()}
    if with_watchdog:
        overrides["watchdog"] = True
    mismatches = []
    for name, run in SCENARIOS.items():
        actual = run(config_overrides=overrides)
        if golden.get(name) != actual:
            mismatches.append(name)
    return {
        "scenarios": len(SCENARIOS),
        "mismatches": mismatches,
        "ok": not mismatches,
    }


def run_sweep(
    *,
    seed: int = 0,
    runs: int = 14,
    check_golden: bool = True,
    progress: Callable[[str], None] | None = None,
    trace_dir: str | None = None,
    scenarios: tuple[str, ...] | None = None,
) -> dict:
    """The full sweep: directed scenarios, sampled plans, golden check.

    Returns the JSON-serialisable report.  Deterministic in ``seed``.
    ``scenarios`` restricts the directed set by name (the sampled runs
    are controlled separately by ``runs``) — CI's failover smoke runs
    just the two failover scenarios with ``runs=0``.
    """
    directed = DIRECTED_SCENARIOS
    if scenarios is not None:
        known = {s.name for s in DIRECTED_SCENARIOS}
        unknown = sorted(set(scenarios) - known)
        if unknown:
            raise ValueError(
                f"unknown directed chaos scenario(s) {unknown}; "
                f"available: {sorted(known)}"
            )
        directed = tuple(
            s for s in DIRECTED_SCENARIOS if s.name in set(scenarios)
        )
    rng = DeterministicRng(seed).fork("chaos")
    say = progress or (lambda line: None)
    records: list[RunRecord] = []

    for scenario in directed:
        record = run_one(scenario, scenario.plan, seed, trace_dir=trace_dir)
        say(f"{scenario.name}: deadlocks={record.deadlocks} "
            f"{'ok' if record.ok else 'FAIL'}")
        records.append(record)

    for index in range(runs):
        scenario = SWEEP_SCENARIOS[index % len(SWEEP_SCENARIOS)]
        plan = sample_plan(rng, kills=scenario.kill_safe)
        record = run_one(scenario, plan, seed + index, trace_dir=trace_dir)
        say(f"{scenario.name}[{index}]: faults={sum(record.faults.values())} "
            f"{'ok' if record.ok else 'FAIL'}")
        records.append(record)

    report: dict[str, Any] = {
        "seed": seed,
        "runs": [vars(r) for r in records],
        "summary": {
            "total": len(records),
            "failed": sum(1 for r in records if not r.ok),
            "faults_injected": sum(
                sum(r.faults.values()) for r in records
            ),
            "deadlocks_detected": sum(r.deadlocks for r in records),
        },
    }
    if check_golden:
        say("verifying golden hashes with faults disarmed...")
        report["golden"] = verify_golden()
    report["ok"] = report["summary"]["failed"] == 0 and (
        not check_golden or report["golden"]["ok"]
    )
    return report


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
