"""Priority-usage analysis (F4).

Section 3's observations, reproduced by the priority-usage bench:

* "of the 7 available priority levels one wasn't used at all";
* "user interface activity tended to use higher priorities for its
  threads than did user-initiated tasks such as compiling";
* Cedar: long-lived threads "relatively evenly distributed over the four
  'standard' priority values of 1 to 4"; level 7 for interrupt handling,
  level 5 unused, level 6 for the SystemDaemon and GC daemon;
* GVX: "almost all of its threads [at] priority level 3"; level 5 used
  and 7 unused (the opposite of Cedar); level 6 for the daemon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.config import MAX_PRIORITY, MIN_PRIORITY
from repro.kernel.stats import ThreadRecord


@dataclass
class PriorityReport:
    #: CPU µs accumulated at each priority level.
    cpu_by_priority: dict[int, int]
    #: thread-creation counts per priority level.
    threads_by_priority: dict[int, int]
    unused_levels: list[int]
    busiest_level: int


def analyse(
    cpu_by_priority: dict[int, int],
    thread_log: list[ThreadRecord],
) -> PriorityReport:
    threads_by_priority = {
        p: 0 for p in range(MIN_PRIORITY, MAX_PRIORITY + 1)
    }
    for record in thread_log:
        threads_by_priority[record.priority] += 1
    unused = [
        level
        for level in range(MIN_PRIORITY, MAX_PRIORITY + 1)
        if cpu_by_priority.get(level, 0) == 0
        and threads_by_priority[level] == 0
    ]
    busiest = max(cpu_by_priority, key=lambda p: cpu_by_priority[p])
    return PriorityReport(
        cpu_by_priority=dict(cpu_by_priority),
        threads_by_priority=threads_by_priority,
        unused_levels=unused,
        busiest_level=busiest,
    )
