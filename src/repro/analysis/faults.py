"""Seeded fault injection over the kernel trap layer.

The paper's systems survived a decade of production use not because the
primitives were never misused but because the failure modes — a NOTIFY
issued a hair too early, a FORK denied under load, a thread dying with a
monitor held, a timeout firing late — were *survivable* by correctly
written client code (WAIT in a loop, Section 4.2; fork-failure policies,
Section 5.4; timeout slop, Section 6.3).  This module makes those failure
modes reproducible on demand so the robustness claims can be tested
instead of assumed.

Five fault kinds, each driven by its own RNG stream:

* ``drop_notify`` — a NOTIFY that would have woken a waiter is stolen;
  correct WAIT-in-a-loop code with a timeout recovers, IF-based code
  hangs.
* ``spurious_wakeup`` — a CV waiter is woken with no NOTIFY pending;
  correct code re-checks its predicate, IF-based code proceeds on a
  broken invariant.
* ``fork_fail`` — a FORK is denied as if thread resources were
  exhausted, exercising the configured ``fork_failure`` policy.
* ``kill`` — a running or ready thread receives :class:`ThreadKilled`
  at its next trap boundary; generator unwinding runs ``finally``
  clauses, so held monitors are released like any other exception exit.
* ``timer_jitter`` — a timed wait's deadline is pushed later by a
  bounded random amount, modelling coarse timeout granularity.

Determinism contract: the injector draws from streams forked off the
kernel seed under per-kind labels.  ``DeterministicRng.fork`` is pure
(CRC32 of seed+label, no parent draws) and ``chance(p)`` consumes no
state when ``p <= 0``, so a plan with every rate at zero is trace- and
stats-identical to running with no plan at all, and turning one fault
kind on never perturbs another kind's schedule of draws.  The regression
test ``tests/test_faults.py`` pins both properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.rng import DeterministicRng
    from repro.kernel.thread import SimThread

#: Fault kind names as they appear in ``GlobalStats.fault_counts`` and in
#: ``CAT_FAULT`` trace events.
KIND_DROP_NOTIFY = "drop_notify"
KIND_SPURIOUS_WAKEUP = "spurious_wakeup"
KIND_FORK_FAIL = "fork_fail"
KIND_KILL = "kill"
KIND_TIMER_JITTER = "timer_jitter"

ALL_KINDS = (
    KIND_DROP_NOTIFY,
    KIND_SPURIOUS_WAKEUP,
    KIND_FORK_FAIL,
    KIND_KILL,
    KIND_TIMER_JITTER,
)


@dataclass(frozen=True)
class FaultPlan:
    """What to inject and how often.  Immutable; attach to
    ``KernelConfig.fault_plan``.

    Rates are probabilities per *opportunity*: per NOTIFY with waiters
    (``drop_notify_prob``), per FORK (``fork_fail_prob``), per armed
    timeout (``timer_jitter_prob``), per scheduler tick
    (``spurious_wakeup_prob``, ``kill_thread_prob``).
    """

    #: Probability a NOTIFY that has waiters wakes nobody.
    drop_notify_prob: float = 0.0
    #: Per-tick probability of waking one random CV waiter spuriously.
    spurious_wakeup_prob: float = 0.0
    #: Probability a FORK fails as if out of thread resources.
    fork_fail_prob: float = 0.0
    #: Per-tick probability of killing one random ready/running thread.
    kill_thread_prob: float = 0.0
    #: Probability an armed timeout gets jittered later.
    timer_jitter_prob: float = 0.0
    #: Maximum jitter added to a timed-wait deadline, in microseconds.
    timer_jitter_max: int = 0
    #: Thread-name prefixes that are never kill targets.  Workload roots
    #: and harness threads go here so chaos runs converge.
    kill_immune: tuple[str, ...] = ()

    def validate(self) -> None:
        for name in (
            "drop_notify_prob",
            "spurious_wakeup_prob",
            "fork_fail_prob",
            "kill_thread_prob",
            "timer_jitter_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.timer_jitter_max < 0:
            raise ValueError("timer_jitter_max must be non-negative")
        if self.timer_jitter_prob > 0.0 and self.timer_jitter_max == 0:
            raise ValueError("timer_jitter_prob set but timer_jitter_max is 0")

    @property
    def wants_ticks(self) -> bool:
        """Whether any per-tick fault is live (the kernel keeps ticking
        through otherwise-idle stretches when this is true)."""
        return self.spurious_wakeup_prob > 0.0 or self.kill_thread_prob > 0.0


class FaultInjector:
    """Draws fault decisions and performs the tick-driven injections.

    Constructed by the kernel when ``config.fault_plan`` is set.  Trap-site
    faults (notify/fork/timer) are *decided* here but *performed* by the
    kernel at the hook site, which then calls :meth:`note` with the victim
    context; tick faults (spurious wake, kill) are both decided and
    performed from :meth:`on_tick`.
    """

    def __init__(self, kernel: "Kernel", plan: FaultPlan, rng: "DeterministicRng") -> None:
        self.kernel = kernel
        self.plan = plan
        #: Schedule-exploration seam, or None.  When present, every
        #: fault decision is routed through ``controller.decide`` with a
        #: *per-decision* forked default stream (``fork(f"{kind}:{seq}")``)
        #: instead of the sequential per-run streams below.  Sequential
        #: streams shift when exploration forces an earlier decision
        #: (the forced site consumes no draw), so a minimized trace
        #: would replay against a different fault tail; a per-decision
        #: fork depends only on (kind, seq) and stays put.
        self.controller = kernel.controller
        self._rng = rng
        # One stream per fault kind so enabling one kind does not shift
        # another kind's draw sequence.
        self._notify_rng = rng.fork("notify")
        self._spurious_rng = rng.fork("spurious")
        self._fork_rng = rng.fork("fork")
        self._kill_rng = rng.fork("kill")
        self._timer_rng = rng.fork("timer")

    # -- bookkeeping -------------------------------------------------------

    def note(self, kind: str, thread_name: str, detail: object = None) -> None:
        """Count an injected fault and trace it under ``CAT_FAULT``."""
        kernel = self.kernel
        kernel.stats.note_fault(kind)
        if kernel._trace_fault:
            from repro.kernel.instrumentation import CAT_FAULT

            kernel.tracer.record(kernel.now, CAT_FAULT, kind, thread_name, detail)

    # -- per-decision default streams (exploration seam) -------------------

    def _forked_chance(self, kind: str, prob: float):
        """Default for a boolean fault decision: a fresh stream derived
        from (kind, seq) alone, so forcing any earlier decision leaves
        this draw untouched."""
        base = self._rng

        def default(seq: int) -> int:
            return int(base.fork(f"{kind}:{seq}").chance(prob))

        return default

    def _forked_pick(self, kind: str, n: int):
        """Default for a victim-choice decision: uniform over ``n``."""
        base = self._rng

        def default(seq: int) -> int:
            return base.fork(f"{kind}:{seq}").randint(0, n - 1)

        return default

    # -- trap-site decisions ----------------------------------------------

    def steal_notify(self) -> bool:
        """Decide whether this NOTIFY (which has waiters) wakes nobody."""
        prob = self.plan.drop_notify_prob
        if self.controller is not None:
            if prob <= 0.0:
                return False  # disarmed seam: no decision recorded
            return bool(
                self.controller.decide(
                    "fault.drop_notify", 2, self._forked_chance("drop_notify", prob)
                )
            )
        return self._notify_rng.chance(prob)

    def fail_fork(self) -> bool:
        """Decide whether this FORK is denied for (feigned) resources."""
        prob = self.plan.fork_fail_prob
        if self.controller is not None:
            if prob <= 0.0:
                return False
            return bool(
                self.controller.decide(
                    "fault.fork_fail", 2, self._forked_chance("fork_fail", prob)
                )
            )
        return self._fork_rng.chance(prob)

    def timer_jitter(self) -> int:
        """Extra microseconds to push a timed-wait deadline later."""
        plan = self.plan
        if plan.timer_jitter_max == 0:
            return 0
        if self.controller is not None:
            if plan.timer_jitter_prob <= 0.0:
                return 0
            # One decision carrying the amount: 0 = no jitter, j = +j µs.
            return self.controller.decide(
                "fault.timer_jitter",
                plan.timer_jitter_max + 1,
                self._forked_jitter(),
            )
        if not self._timer_rng.chance(plan.timer_jitter_prob):
            return 0
        return self._timer_rng.randint(1, plan.timer_jitter_max)

    def _forked_jitter(self):
        base, plan = self._rng, self.plan

        def default(seq: int) -> int:
            stream = base.fork(f"timer_jitter:{seq}")
            if not stream.chance(plan.timer_jitter_prob):
                return 0
            return stream.randint(1, plan.timer_jitter_max)

        return default

    # -- tick-driven faults ------------------------------------------------

    def on_tick(self) -> None:
        """Called by the kernel from every scheduler tick."""
        plan = self.plan
        if plan.spurious_wakeup_prob > 0.0:
            if self.controller is not None:
                self._controlled_spurious()
            elif self._spurious_rng.chance(plan.spurious_wakeup_prob):
                victim = self._pick_cv_waiter()
                if victim is not None:
                    self.kernel._inject_spurious_wake(victim)
        if plan.kill_thread_prob > 0.0:
            if self.controller is not None:
                self._controlled_kill()
            elif self._kill_rng.chance(plan.kill_thread_prob):
                victim = self._pick_kill_target()
                if victim is not None:
                    self.kernel._inject_kill(victim)

    def _controlled_spurious(self) -> None:
        """Spurious wake as two decisions: fire?, then which waiter.

        Unlike the legacy path (which burns a chance draw even with no
        waiters), decisions only exist when there is a real choice —
        the trace stays as short as the schedule's actual freedom.
        """
        waiters = self._cv_waiters()
        if not waiters:
            return
        names = tuple(t.name for t in waiters)
        fired = self.controller.decide(
            "fault.spurious",
            2,
            self._forked_chance("spurious", self.plan.spurious_wakeup_prob),
            labels=names,
        )
        if not fired:
            return
        victim = waiters[0]
        if len(waiters) > 1:
            index = self.controller.decide(
                "fault.spurious_victim",
                len(waiters),
                self._forked_pick("spurious_victim", len(waiters)),
                labels=names,
            )
            victim = waiters[index]
        self.kernel._inject_spurious_wake(victim)

    def _controlled_kill(self) -> None:
        targets = self._kill_targets()
        if not targets:
            return
        names = tuple(t.name for t in targets)
        fired = self.controller.decide(
            "fault.kill",
            2,
            self._forked_chance("kill", self.plan.kill_thread_prob),
            labels=names,
        )
        if not fired:
            return
        victim = targets[0]
        if len(targets) > 1:
            index = self.controller.decide(
                "fault.kill_victim",
                len(targets),
                self._forked_pick("kill_victim", len(targets)),
                labels=names,
            )
            victim = targets[index]
        self.kernel._inject_kill(victim)

    def _cv_waiters(self) -> "list[SimThread]":
        from repro.kernel.thread import ThreadState

        return [
            t
            for t in self.kernel.threads.values()
            if t.state is ThreadState.WAITING_CV
        ]

    def _pick_cv_waiter(self) -> "SimThread | None":
        waiters = self._cv_waiters()
        if not waiters:
            return None
        return self._spurious_rng.choice(waiters)

    def _kill_targets(self) -> "list[SimThread]":
        from repro.kernel.thread import ThreadState

        immune = self.plan.kill_immune
        return [
            t
            for t in self.kernel.threads.values()
            if t.state in (ThreadState.READY, ThreadState.RUNNING)
            and t.pending_throw is None
            and not any(t.name.startswith(p) for p in immune)
        ]

    def _pick_kill_target(self) -> "SimThread | None":
        targets = self._kill_targets()
        if not targets:
            return None
        return self._kill_rng.choice(targets)
