"""Export kernel traces to Chrome trace-event JSON.

Load the output in ``chrome://tracing`` or https://ui.perfetto.dev to
scrub through a run visually — the modern equivalent of the paper's
"100 millisecond event histories", with one timeline row per thread.

Mapping:

* each dispatch..deschedule span becomes a duration event (``X``) on the
  thread's row, so CPU occupancy reads directly off the timeline;
* forks, notifies, timeouts, spurious conflicts and deaths become
  instant events (``i``) so the interesting moments stand out;
* the trace's ``ts``/``dur`` are the kernel's microseconds unchanged
  (Chrome trace format is natively in µs).

Usage::

    kernel = Kernel(KernelConfig(trace=True))
    ...
    write_chrome_trace(kernel.tracer, "run.json")
"""

from __future__ import annotations

import json
from typing import Any

from repro.kernel.instrumentation import Tracer

#: (category, kind) pairs exported as instant markers.
_INSTANTS = {
    ("fork", "create"): "fork",
    ("cv", "notify"): "notify",
    ("cv", "broadcast"): "broadcast",
    ("cv", "timeout"): "cv-timeout",
    ("monitor", "spurious"): "spurious-conflict",
    ("monitor", "block"): "lock-block",
    ("end", "die"): "thread-died",
    ("yield", "yield-but-not-to-me"): "yield-but-not-to-me",
}


def build_chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """Convert a trace into the Chrome trace-event JSON object."""
    events: list[dict[str, Any]] = []
    tids: dict[str, int] = {}
    open_span: dict[str, int] = {}

    def tid_for(thread: str) -> int:
        if thread not in tids:
            tids[thread] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tids[thread],
                    "args": {"name": thread},
                }
            )
        return tids[thread]

    for event in tracer.events:
        if event.thread == "-":
            continue
        tid = tid_for(event.thread)
        key = (event.category, event.kind)
        if key == ("switch", "dispatch"):
            open_span[event.thread] = event.time
        elif key == ("switch", "offcpu"):
            started = open_span.pop(event.thread, None)
            if started is not None and event.time > started:
                events.append(
                    {
                        "name": "running",
                        "ph": "X",
                        "pid": 1,
                        "tid": tid,
                        "ts": started,
                        "dur": event.time - started,
                    }
                )
        if key in _INSTANTS:
            events.append(
                {
                    "name": _INSTANTS[key],
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": tid,
                    "ts": event.time,
                    "args": {} if event.detail is None else {"detail": str(event.detail)},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the JSON file; returns the number of exported events."""
    trace = build_chrome_trace(tracer)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return len(trace["traceEvents"])
