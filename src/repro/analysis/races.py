"""Dynamic data-race detection: Eraser locksets fused with happens-before.

Section 5.5 of the paper shows threaded code whose correctness silently
depended on strong memory ordering, and the Mesa monitor discipline exists
precisely so that monitor-protected data is always safe.  The simulator can
*reproduce* those hazards (``casestudies/weakmem.py``); this module makes
them *detectable*: every shared-memory access and every synchronisation
event already flows through kernel traps, so a passive observer can decide
whether a workload follows the locking discipline at all.

Two classic analyses run side by side on the same event stream:

* **Lockset (Eraser)** — each :class:`~repro.kernel.memory.SimVar` moves
  through the state machine *virgin -> exclusive -> shared ->
  shared-modified*; once a variable is accessed by a second thread, the
  detector intersects the sets of monitors held at each access.  An empty
  intersection in the shared-modified state means no single lock protects
  the variable, and a :class:`RaceReport` is emitted.  Locksets flag the
  *policy* violation even when the scheduler happened to serialise the
  accesses on this run.

* **Happens-before (vector clocks)** — per-thread clocks joined on every
  synchronisation edge the kernel exposes: Fork/Join, monitor
  acquire/release, CV notify/wake, channel post/receive, and Fence
  (modelled as publishing the writer's pre-fence clock with each
  subsequent store, acquired by readers of those stores).  When a lockset
  violation fires, the clocks say whether the two accesses were genuinely
  concurrent (``hb_race=True``) or ordered by some non-lock edge such as
  Fork (``hb_race=False`` — an Eraser false positive, e.g. parent-init
  data handed to a child).

A report is therefore triggered by the lockset machine and *confirmed* by
happens-before; :attr:`RaceDetector.races` lists only confirmed races,
:attr:`RaceDetector.reports` every lockset violation.

The detector is strictly passive: it never touches the scheduler, the
kernel RNG, or any thread state, so enabling
``KernelConfig(race_detection=True)`` cannot change a schedule —
``benchmarks/bench_races.py`` pins that property.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from repro.kernel.instrumentation import CAT_RACE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (kernel imports us)
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import SimThread

# Eraser variable states.
VIRGIN = "virgin"
EXCLUSIVE = "exclusive"
SHARED = "shared"
SHARED_MODIFIED = "shared-modified"


class VectorClock:
    """A sparse vector clock: tid -> logical time, absent means 0."""

    __slots__ = ("_c",)

    def __init__(self, init: dict[int, int] | None = None) -> None:
        self._c: dict[int, int] = dict(init) if init else {}

    def get(self, tid: int) -> int:
        return self._c.get(tid, 0)

    def tick(self, tid: int) -> None:
        self._c[tid] = self._c.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum, in place."""
        mine = self._c
        for tid, value in other._c.items():
            if value > mine.get(tid, 0):
                mine[tid] = value

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{t}:{v}" for t, v in sorted(self._c.items()))
        return f"<VC {inner}>"


@dataclass(frozen=True)
class Access:
    """One memory access, as remembered for race pairing."""

    tid: int
    thread: str
    op: str            # "read" or "write"
    site: str          # "file.py:lineno in function"
    locks: tuple[str, ...]  # names of monitors held at the access
    time: int          # simulated microseconds
    epoch: int         # accessor's own clock component at the access

    def __str__(self) -> str:
        held = ",".join(self.locks) if self.locks else "no locks"
        return f"{self.op} by {self.thread} at {self.site} [{held}] t={self.time}"


@dataclass(frozen=True)
class RaceReport:
    """One detected lockset violation on one variable (first occurrence).

    ``first``/``second`` are the two conflicting accesses in time order
    (at least one is a write, by construction of the trigger).  ``hb_race``
    records whether vector clocks also found the pair concurrent: True
    means a confirmed data race; False means some non-lock edge (fork,
    join, channel, fence publication) ordered the accesses and the lockset
    violation is advisory.

    ``sc_race`` classifies a confirmed race against the *SC
    interpretation* of the same run: a second clock system that
    additionally counts reads-from edges (a read that observed a write is
    ordered after it — under sequential consistency the observed data
    flow is an ordering).  ``sc_race=True`` means the pair is concurrent
    even with those edges — racy on any memory model.  ``sc_race=False``
    (with ``hb_race=True``) means the observed data flow orders the pair,
    so only a weaker model's store buffering lets the race manifest —
    the §5.5 "correct under strong ordering" pattern.
    """

    var_name: str
    var_uid: int
    first: Access
    second: Access
    hb_race: bool
    detected_at: int
    sc_race: bool = True

    def describe(self) -> str:
        if not self.hb_race:
            verdict = "lockset-only (ordered by happens-before)"
        elif self.sc_race:
            verdict = "RACE (racy even under SC)"
        else:
            verdict = "RACE (racy only under TSO/weak ordering)"
        return (
            f"{self.var_name!r}: {verdict}\n"
            f"    {self.first}\n"
            f"    {self.second}"
        )


class _ThreadClocks:
    """Per-thread detector state."""

    __slots__ = ("clock", "fence", "sc")

    def __init__(self, tid: int) -> None:
        self.clock = VectorClock({tid: 1})
        #: Snapshot of ``clock`` at the most recent fence (or implicit
        #: monitor fence); carried by subsequent stores as their
        #: publication clock.  Empty until the thread fences.
        self.fence = VectorClock()
        #: The SC-interpretation clock: mirrors every edge ``clock``
        #: sees *plus* reads-from edges (joining the observed write's
        #: token).  Own components tick in lockstep with ``clock``, so
        #: an :class:`Access` epoch is valid against either system.
        self.sc = VectorClock({tid: 1})


class _PairClock:
    """HB + SC clocks for one synchronisation object (monitor/CV/channel)."""

    __slots__ = ("hb", "sc")

    def __init__(self) -> None:
        self.hb = VectorClock()
        self.sc = VectorClock()

    def acquire_into(self, state: _ThreadClocks) -> None:
        state.clock.join(self.hb)
        state.sc.join(self.sc)

    def release_from(self, state: _ThreadClocks) -> None:
        self.hb.join(state.clock)
        self.sc.join(state.sc)


class _VarState:
    """Per-SimVar detector state: Eraser machine + access history."""

    __slots__ = (
        "uid", "name", "state", "owner", "lockset", "last_write", "reads",
        "publish", "reported",
    )

    def __init__(self, uid: int, name: str) -> None:
        self.uid = uid
        self.name = name
        self.state = VIRGIN
        self.owner: int | None = None          # exclusive-state thread
        self.lockset: set[int] | None = None   # candidate locks (uids)
        self.last_write: Access | None = None
        self.reads: dict[int, Access] = {}     # tid -> most recent read
        #: Join of the fence clocks carried by stores to this variable;
        #: readers acquire it (the fence-publication happens-before edge).
        self.publish = VectorClock()
        self.reported = False


class RaceDetector:
    """Consumes kernel events and reports data races on SimVars.

    Instantiated by the kernel when ``KernelConfig(race_detection=True)``;
    every hook is invoked inline by the trap handlers.  All state is
    private to the detector — it observes, never steers.
    """

    def __init__(self, kernel: "Kernel | None" = None) -> None:
        self._kernel = kernel
        self._threads: dict[int, _ThreadClocks] = {}
        self._vars: dict[int, _VarState] = {}
        self._monitor_clocks: dict[int, _PairClock] = {}
        self._cv_clocks: dict[int, _PairClock] = {}
        self._channel_clocks: dict[int, _PairClock] = {}
        self.reports: list[RaceReport] = []
        self.reads = 0
        self.writes = 0
        self.sync_events = 0

    # -- results -----------------------------------------------------------

    @property
    def races(self) -> list[RaceReport]:
        """Confirmed races: lockset empty *and* accesses HB-concurrent."""
        return [r for r in self.reports if r.hb_race]

    @property
    def lockset_only(self) -> list[RaceReport]:
        """Lockset violations that happens-before showed to be ordered."""
        return [r for r in self.reports if not r.hb_race]

    def format_report(self) -> str:
        if not self.reports:
            return "no lockset violations detected"
        return "\n".join(r.describe() for r in self.reports)

    # -- synchronisation edges --------------------------------------------

    def on_fork(self, parent: "SimThread | None", child: "SimThread") -> None:
        """FORK: everything the parent did happens-before the child."""
        self.sync_events += 1
        child_state = self._thread(child.tid)
        if parent is not None:
            parent_state = self._thread(parent.tid)
            child_state.clock.join(parent_state.clock)
            child_state.sc.join(parent_state.sc)
            parent_state.clock.tick(parent.tid)
            parent_state.sc.tick(parent.tid)

    def on_join(self, joiner: "SimThread", target: "SimThread") -> None:
        """JOIN: everything the target did happens-before the joiner."""
        self.sync_events += 1
        joiner_state = self._thread(joiner.tid)
        target_state = self._thread(target.tid)
        joiner_state.clock.join(target_state.clock)
        joiner_state.sc.join(target_state.sc)

    def on_acquire(self, thread: "SimThread", monitor: Any) -> None:
        """Monitor acquired: inherit every previous holder's history."""
        self.sync_events += 1
        state = self._thread(thread.tid)
        self._monitor(monitor).acquire_into(state)
        # Monitor entry fences ("The monitor implementation for weak
        # ordering can use memory barrier instructions").
        state.fence = state.clock.copy()

    def on_release(self, thread: "SimThread", monitor: Any) -> None:
        """Monitor released (Exit or the release half of WAIT)."""
        self.sync_events += 1
        state = self._thread(thread.tid)
        state.fence = state.clock.copy()
        self._monitor(monitor).release_from(state)
        state.clock.tick(thread.tid)
        state.sc.tick(thread.tid)

    def on_notify(self, thread: "SimThread", cv: Any) -> None:
        """NOTIFY/BROADCAST: the notifier's history flows to the wakers."""
        self.sync_events += 1
        state = self._thread(thread.tid)
        self._cv(cv).release_from(state)
        state.clock.tick(thread.tid)
        state.sc.tick(thread.tid)

    def on_cv_wake(self, waiter: "SimThread", cv: Any) -> None:
        """A WAIT ended by notification: acquire the CV's clock."""
        self.sync_events += 1
        self._cv(cv).acquire_into(self._thread(waiter.tid))

    def on_channel_post(self, channel: Any, thread: "SimThread | None" = None) -> None:
        """Channel post.  Posts come from the external world (workload
        events), which creates no inter-thread edge; a thread-context post,
        if one ever appears, releases into the channel clock."""
        self.sync_events += 1
        if thread is not None:
            state = self._thread(thread.tid)
            self._channel(channel).release_from(state)
            state.clock.tick(thread.tid)
            state.sc.tick(thread.tid)

    def on_channel_receive(self, thread: "SimThread", channel: Any) -> None:
        """Channel receive: acquire whatever history the channel carries."""
        self.sync_events += 1
        self._channel(channel).acquire_into(self._thread(thread.tid))

    def on_fence(self, thread: "SimThread") -> None:
        """Explicit Fence: subsequent stores publish the pre-fence clock."""
        self.sync_events += 1
        state = self._thread(thread.tid)
        state.fence = state.clock.copy()
        state.clock.tick(thread.tid)
        state.sc.tick(thread.tid)

    # -- memory accesses ---------------------------------------------------

    def on_write(self, thread: "SimThread", var: Any, now: int) -> Any:
        """Record a write; returns the write token (the writer's SC clock
        snapshot) that the memory system stores alongside the value so a
        later reader can report exactly which write it observed."""
        self.writes += 1
        state = self._thread(thread.tid)
        vs = self._var(var)
        access = self._access(thread, "write", now, state)
        locks = self._held_uids(thread)

        if vs.state == VIRGIN:
            vs.state, vs.owner = EXCLUSIVE, thread.tid
        elif vs.state == EXCLUSIVE:
            if vs.owner != thread.tid:
                vs.state = SHARED_MODIFIED
                vs.lockset = set(locks)
        elif vs.state == SHARED:
            vs.state = SHARED_MODIFIED
            assert vs.lockset is not None
            vs.lockset &= locks
        else:  # SHARED_MODIFIED
            assert vs.lockset is not None
            vs.lockset &= locks

        self._check(vs, access, state, now)
        vs.last_write = access
        # Fence publication: this store carries everything that happened
        # before the writer's last fence.
        vs.publish.join(state.fence)
        return state.sc.copy()

    def on_read(
        self, thread: "SimThread", var: Any, now: int, observed: Any = None
    ) -> None:
        self.reads += 1
        state = self._thread(thread.tid)
        vs = self._var(var)
        # Acquire the fence-publication clock before judging this access:
        # a reader that observes fence-published data is ordered after the
        # writer's pre-fence history.
        state.clock.join(vs.publish)
        state.sc.join(vs.publish)
        if observed is not None:
            # Reads-from edge, SC interpretation only: the read observed
            # this write, so under SC the write is ordered before it.
            state.sc.join(observed)
        access = self._access(thread, "read", now, state)
        locks = self._held_uids(thread)

        if vs.state == VIRGIN:
            vs.state, vs.owner = EXCLUSIVE, thread.tid
        elif vs.state == EXCLUSIVE:
            if vs.owner != thread.tid:
                vs.state = SHARED
                vs.lockset = set(locks)
        else:  # SHARED or SHARED_MODIFIED
            assert vs.lockset is not None
            vs.lockset &= locks
        if vs.state == SHARED_MODIFIED:
            self._check(vs, access, state, now)
        elif vs.state == SHARED and not vs.lockset:
            # Classic Eraser stays silent on write-once data read by other
            # threads (it cannot tell racy reads from a safe handoff).  The
            # fused detector can: report the pair only when happens-before
            # *confirms* the read races the write — so a fork/join/fence
            # handoff stays silent and a §5.5 torn read does not.
            self._check(vs, access, state, now, require_hb=True)

        vs.reads[thread.tid] = access

    # -- internals ---------------------------------------------------------

    def _thread(self, tid: int) -> _ThreadClocks:
        state = self._threads.get(tid)
        if state is None:
            state = self._threads[tid] = _ThreadClocks(tid)
        return state

    def _var(self, var: Any) -> _VarState:
        state = self._vars.get(var.uid)
        if state is None:
            state = self._vars[var.uid] = _VarState(var.uid, var.name)
        return state

    def _monitor(self, monitor: Any) -> _PairClock:
        clock = self._monitor_clocks.get(monitor.uid)
        if clock is None:
            clock = self._monitor_clocks[monitor.uid] = _PairClock()
        return clock

    def _cv(self, cv: Any) -> _PairClock:
        clock = self._cv_clocks.get(cv.uid)
        if clock is None:
            clock = self._cv_clocks[cv.uid] = _PairClock()
        return clock

    def _channel(self, channel: Any) -> _PairClock:
        clock = self._channel_clocks.get(channel.uid)
        if clock is None:
            clock = self._channel_clocks[channel.uid] = _PairClock()
        return clock

    @staticmethod
    def _held_uids(thread: "SimThread") -> frozenset[int]:
        return frozenset(m.uid for m in thread.held_monitors)

    def _access(
        self, thread: "SimThread", op: str, now: int, state: _ThreadClocks
    ) -> Access:
        return Access(
            tid=thread.tid,
            thread=thread.name,
            op=op,
            site=_describe_site(thread),
            locks=tuple(m.name for m in thread.held_monitors),
            time=now,
            epoch=state.clock.get(thread.tid),
        )

    def _check(
        self,
        vs: _VarState,
        access: Access,
        state: _ThreadClocks,
        now: int,
        *,
        require_hb: bool = False,
    ) -> None:
        """Lockset verdict at a suspicious access.

        ``require_hb=True`` (the shared-state read trigger) only reports
        pairs that happens-before proves concurrent.
        """
        if vs.reported or (vs.lockset is not None and vs.lockset):
            return
        other = self._conflicting_access(vs, access)
        if other is None:
            return
        # The pair is HB-ordered iff the current thread has seen the other
        # access's epoch (other happened-before this access).
        ordered = state.clock.get(other.tid) >= other.epoch
        if require_hb and ordered:
            return
        # Same test against the SC clocks (sync edges + reads-from):
        # sc ⊇ hb pointwise, so an HB-ordered pair is always SC-ordered.
        sc_ordered = state.sc.get(other.tid) >= other.epoch
        report = RaceReport(
            var_name=vs.name,
            var_uid=vs.uid,
            first=other,
            second=access,
            hb_race=not ordered,
            detected_at=now,
            sc_race=not sc_ordered,
        )
        vs.reported = True
        self.reports.append(report)
        if self._kernel is not None:
            self._kernel.tracer.record(
                now, CAT_RACE,
                "race" if report.hb_race else "lockset",
                access.thread,
                f"{vs.name} vs {other.op} by {other.thread}",
            )

    @staticmethod
    def _conflicting_access(vs: _VarState, access: Access) -> Access | None:
        """The most recent earlier access by a *different* thread that
        conflicts with ``access`` (a write, or any access if ``access``
        is a write)."""
        candidates: Iterable[Access | None]
        if access.op == "write":
            candidates = [vs.last_write, *vs.reads.values()]
        else:
            candidates = [vs.last_write]
        best: Access | None = None
        for candidate in candidates:
            if candidate is None or candidate.tid == access.tid:
                continue
            if best is None or candidate.time > best.time:
                best = candidate
        return best


def _describe_site(thread: "SimThread") -> str:
    """``file.py:lineno in function`` of the suspended yield, innermost
    generator of any ``yield from`` chain."""
    gen = thread.body
    frame = None
    while gen is not None:
        frame = getattr(gen, "gi_frame", None) or frame
        inner = getattr(gen, "gi_yieldfrom", None)
        if inner is None or not hasattr(inner, "gi_frame"):
            break
        gen = inner
    if frame is None:
        return "<unknown>"
    code = frame.f_code
    return f"{os.path.basename(code.co_filename)}:{frame.f_lineno} in {code.co_name}"
