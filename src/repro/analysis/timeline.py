"""Event-history rendering: the paper's microscopic analysis view.

"Finally, reading code and microscopic analysis taught us new things
about systems we had created and used over a ten year period.  Even
after a year of looking at the same 100 millisecond event histories we
are seeing new things in them."  (Section 7.)

This module turns a window of trace events into exactly that artifact: a
per-thread timeline of dispatches, preemptions, monitor traffic and CV
events, one column per time slot, so a human can *read* a scheduling
story the way the authors did.

Usage::

    kernel = Kernel(KernelConfig(trace=True))
    ... run ...
    print(render_history(kernel.tracer, start=msec(100), end=msec(200)))
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.instrumentation import Tracer
from repro.kernel.simtime import fmt_time

#: Symbol per event kind, chosen to read at a glance.
_SYMBOLS = {
    ("switch", "dispatch"): "D",
    ("switch", "preempt"): "P",
    ("yield", "yield"): "y",
    ("yield", "yield-but-not-to-me"): "Y",
    ("yield", "directed-yield"): "Y",
    ("monitor", "enter"): "m",
    ("monitor", "block"): "B",
    ("monitor", "exit"): "x",
    ("monitor", "spurious"): "!",
    ("cv", "wait"): "w",
    ("cv", "notify"): "n",
    ("cv", "broadcast"): "N",
    ("cv", "timeout"): "t",
    ("sleep", "sleep"): "z",
    ("sleep", "wake"): "k",
    ("fork", "create"): "F",
    ("end", "finish"): ".",
    ("end", "die"): "X",
}

LEGEND = (
    "D dispatch  P preempt  y yield  Y yield-but-not-to-me/directed  "
    "m enter  x exit  B block  ! spurious  w wait  n notify  N broadcast  "
    "t timeout  z sleep  k wake  F fork  . finish  X die"
)


@dataclass
class HistoryWindow:
    start: int
    end: int
    columns: int
    lanes: dict[str, list[str]]

    def render(self) -> str:
        width = max((len(name) for name in self.lanes), default=4)
        lines = [
            f"event history {fmt_time(self.start)} .. {fmt_time(self.end)} "
            f"({self.columns} slots of "
            f"{(self.end - self.start) / self.columns / 1000:.2f} ms)"
        ]
        for name in sorted(self.lanes):
            lane = "".join(self.lanes[name])
            lines.append(f"{name.ljust(width)} |{lane}|")
        lines.append(LEGEND)
        return "\n".join(lines)


def build_history(
    tracer: Tracer,
    *,
    start: int,
    end: int,
    columns: int = 100,
) -> HistoryWindow:
    """Bucket a trace window into per-thread lanes of event symbols.

    When several events land in one slot, the most "interesting" one wins
    (spurious conflicts and deaths outrank routine monitor traffic).
    """
    if end <= start:
        raise ValueError("need end > start")
    if columns < 1:
        raise ValueError("need at least one column")
    slot = max(1, (end - start) // columns)
    interest = {"!": 9, "X": 9, "B": 8, "P": 7, "Y": 6, "F": 5, "t": 5,
                "n": 4, "N": 4, "w": 4, "k": 4, "z": 4, "D": 3, "y": 3,
                "m": 1, "x": 1, ".": 5}
    lanes: dict[str, list[str]] = {}
    for event in tracer.between(start, end):
        symbol = _SYMBOLS.get((event.category, event.kind))
        if symbol is None or event.thread == "-":
            continue
        lane = lanes.setdefault(event.thread, [" "] * columns)
        index = min((event.time - start) // slot, columns - 1)
        current = lane[index]
        if current == " " or interest[symbol] > interest.get(current, 0):
            lane[index] = symbol
    return HistoryWindow(start=start, end=end, columns=columns, lanes=lanes)


def render_history(tracer: Tracer, *, start: int, end: int, columns: int = 100) -> str:
    """Convenience: build and render in one call."""
    return build_history(tracer, start=start, end=end, columns=columns).render()
