"""Fork-genealogy analysis (F3).

Section 3's forking-pattern observations:

* "none of our benchmarks exhibited forking generations greater than 2.
  That is, every transient thread was either the child or grandchild of
  some worker or long-lived thread."
* the per-activity patterns: keyboard forks one transient per keystroke
  from the command shell; the formatter's transients "fork one or more
  additional transient threads" while the compiler's and previewer's
  "simply run to completion"; mouse motion forks nothing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.kernel.stats import ThreadRecord


@dataclass
class GenealogyReport:
    #: thread count per fork generation (0 = roots/eternal/workers).
    by_generation: dict[int, int]
    max_generation: int
    transient_count: int
    #: names of generation-2 thread kinds (the grandchildren).
    grandchild_kinds: list[str]


def analyse(thread_log: list[ThreadRecord]) -> GenealogyReport:
    """Genealogy of every thread created during a window."""
    by_generation = Counter(record.generation for record in thread_log)
    transients = [r for r in thread_log if r.generation >= 1]
    grandchildren = sorted(
        {r.name.split("#")[0] for r in thread_log if r.generation == 2}
    )
    return GenealogyReport(
        by_generation=dict(sorted(by_generation.items())),
        max_generation=max(by_generation, default=0),
        transient_count=len(transients),
        grandchild_kinds=grandchildren,
    )


def forked_during_window(
    thread_log: list[ThreadRecord], start: int, end: int
) -> list[ThreadRecord]:
    """Records of threads created inside a measurement window."""
    return [r for r in thread_log if start <= r.created_at < end]
