"""Golden-schedule scenarios and fingerprinting, as a library.

The determinism guard (``tests/test_golden_schedule.py``) pins SHA-256
digests of twenty-one scenarios' full trace streams and final statistics.
This module holds the scenario bodies and the fingerprint function so
other consumers can run the same scenarios under varied configuration:

* the watchdog false-positive tests run every scenario with the watchdog
  enabled and assert both zero reports *and* fingerprint equality with
  the pinned hashes (observers must be passive);
* the chaos runner (:mod:`repro.analysis.chaos`) re-verifies the pins in
  its faults-off mode, proving the fault-injection seams cost nothing
  when disarmed;
* ``scripts/update_golden_schedule.py`` regenerates the pins after an
  intentional behaviour change.

Every scenario callable takes ``(config_overrides=None, probe=None)``:
``config_overrides`` is merged into the scenario's base ``KernelConfig``
kwargs; ``probe``, if given, is called with the kernel after the run but
before shutdown, for reading observer state (it must not mutate — the
fingerprint is taken right after it returns).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Callable

from repro.kernel import Kernel, KernelConfig, msec, sec, usec
from repro.kernel import primitives as p
from repro.kernel.primitives import Enter, Exit, Notify, Wait
from repro.sync.condition import ConditionVariable
from repro.sync.monitor import Monitor
from repro.server.world import build_server_world
from repro.workloads import build_cedar_world, build_gvx_world
from repro.workloads.cedar import CEDAR_ACTIVITIES
from repro.workloads.gvx import GVX_ACTIVITIES

#: Simulated time each world scenario runs for.  Long enough to cross many
#: quantum boundaries, timeouts and forks; short enough to stay fast.
WORLD_RUN = sec(2)

Probe = Callable[[Kernel], None]


def default_golden_path() -> Path:
    """``tests/golden/schedule_hashes.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden" / "schedule_hashes.json"


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------

def fingerprint(kernel: Kernel) -> dict:
    """Digest the full trace stream and the statistics of a finished run.

    Note: object ``uid``s (monitors, CVs, channels) are process-global
    counters, so raw uid values depend on what ran earlier in the test
    session.  Fingerprints therefore use set *sizes* and names, never
    uids.
    """
    trace_lines = "\n".join(
        f"{e.time}|{e.category}|{e.kind}|{e.thread}|{e.detail}"
        for e in kernel.tracer.events
    )
    trace_hash = hashlib.sha256(trace_lines.encode()).hexdigest()

    stats = kernel.stats
    scalars = {
        name: value
        for name, value in vars(stats).items()
        if isinstance(value, int)
    }
    canonical = {
        "scalars": dict(sorted(scalars.items())),
        "monitors_used": len(stats.monitors_used),
        "cvs_used": len(stats.cvs_used),
        "exec_intervals": stats.exec_intervals,
        "cpu_by_priority": sorted(stats.cpu_by_priority.items()),
        "thread_log": [
            (r.tid, r.name, r.parent_tid, r.generation, r.priority,
             r.created_at, r.role)
            for r in stats.thread_log
        ],
        "lifetimes": stats.lifetimes,
        "per_thread": [
            (t.tid, t.name, t.priority, t.state.value,
             t.stats.cpu_time, t.stats.dispatches, t.stats.preemptions,
             t.stats.yields, t.stats.monitor_enters, t.stats.monitor_blocks,
             t.stats.cv_waits, t.stats.cv_timeouts,
             t.stats.cv_notifies_received, t.stats.forks_issued)
            for t in kernel.threads.values()
        ],
        "now": kernel.now,
    }
    stats_hash = hashlib.sha256(
        json.dumps(canonical, sort_keys=True, default=str).encode()
    ).hexdigest()
    return {
        "trace": trace_hash,
        "stats": stats_hash,
        "events": len(kernel.tracer.events),
    }


def _config(base: dict, overrides: dict | None) -> KernelConfig:
    merged = dict(base)
    if overrides:
        merged.update(overrides)
    return KernelConfig(**merged)


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------

def _world_scenario(builder, activities, activity):
    def run(config_overrides: dict | None = None, probe: Probe | None = None) -> dict:
        world, context = builder(_config(dict(seed=0, trace=True), config_overrides))
        install = activities[activity]
        if install is not None:
            install(world, context)
        world.run_for(WORLD_RUN)
        if probe is not None:
            probe(world.kernel)
        result = fingerprint(world.kernel)
        world.shutdown()
        return result

    return run


def _spurious_scenario(semantics):
    """The Section-6.1 producer/consumer across a priority boundary."""

    def run(config_overrides: dict | None = None, probe: Probe | None = None) -> dict:
        kernel = Kernel(
            _config(
                dict(seed=0, trace=True, notify_semantics=semantics),
                config_overrides,
            )
        )
        lock = Monitor("pc")
        nonempty = ConditionVariable(lock, "nonempty")
        state = {"available": 0, "consumed": 0}

        def consumer():
            while state["consumed"] < 40:
                yield Enter(lock)
                try:
                    while state["available"] == 0:
                        yield Wait(nonempty, timeout=msec(200))
                    state["available"] -= 1
                    state["consumed"] += 1
                finally:
                    yield Exit(lock)

        def producer():
            for _ in range(40):
                yield Enter(lock)
                try:
                    state["available"] += 1
                    yield Notify(nonempty)
                    yield p.Compute(usec(100))
                finally:
                    yield Exit(lock)
                yield p.Compute(usec(50))

        kernel.fork_root(consumer, name="consumer", priority=5)
        kernel.fork_root(producer, name="producer", priority=3)
        kernel.run_for(sec(5))
        if probe is not None:
            probe(kernel)
        result = fingerprint(kernel)
        kernel.shutdown()
        return result

    return run


def _donation_scenario(
    config_overrides: dict | None = None, probe: Probe | None = None
) -> dict:
    """YieldButNotToMe and directed yields across priorities (§5.2, §6.2)."""
    kernel = Kernel(_config(dict(seed=0, trace=True), config_overrides))
    progress = {"low": 0}
    handles = {}

    def low():
        while True:
            yield p.Compute(msec(2))
            progress["low"] += 1
            yield p.Yield()

    def courteous_high():
        for _ in range(120):
            yield p.Compute(msec(1))
            yield p.YieldButNotToMe()

    def director():
        for _ in range(40):
            yield p.Pause(msec(10))
            yield p.DirectedYield(handles["low"])

    handles["low"] = kernel.fork_root(low, name="low", priority=2)
    kernel.fork_root(courteous_high, name="high", priority=6)
    kernel.fork_root(director, name="director", priority=7)
    kernel.run_for(sec(1))
    if probe is not None:
        probe(kernel)
    result = fingerprint(kernel)
    kernel.shutdown()
    return result


def _fork_churn_scenario(
    config_overrides: dict | None = None, probe: Probe | None = None
) -> dict:
    """Fork/join churn that exhausts thread slots (§5.4 resource waits)."""
    kernel = Kernel(
        _config(
            dict(seed=0, trace=True, max_threads=8, fork_failure="wait"),
            config_overrides,
        )
    )

    def leaf(work):
        yield p.Compute(work)

    def spawner(depth):
        children = []
        for i in range(3):
            child = yield p.Fork(leaf, args=(usec(50 * (i + 1)),))
            children.append(child)
        if depth > 0:
            sub = yield p.Fork(spawner, args=(depth - 1,))
            children.append(sub)
        for child in children:
            yield p.Join(child)

    def root():
        for _ in range(12):
            top = yield p.Fork(spawner, args=(2,))
            yield p.Join(top)

    kernel.fork_root(root, name="root", priority=4)
    kernel.run_for(sec(2))
    if probe is not None:
        probe(kernel)
    result = fingerprint(kernel)
    kernel.shutdown()
    return result


def _timed_waits_scenario(
    config_overrides: dict | None = None, probe: Probe | None = None
) -> dict:
    """Every timed-wait kind: sleeps, CV timeouts, channel timeouts."""
    kernel = Kernel(_config(dict(seed=0, trace=True), config_overrides))
    channel = kernel.channel("dev")
    lock = Monitor("tw")
    cv = ConditionVariable(lock, "tw.cv", timeout=msec(80))

    def sleeper():
        for _ in range(25):
            yield p.Pause(msec(30))

    def cv_waiter():
        for _ in range(15):
            yield Enter(lock)
            try:
                yield Wait(cv)
            finally:
                yield Exit(lock)

    def stimulator():
        for _ in range(5):
            yield p.Pause(msec(170))
            yield Enter(lock)
            try:
                yield Notify(cv)
            finally:
                yield Exit(lock)

    def receiver():
        for _ in range(12):
            yield p.Channelreceive(channel, timeout=msec(60))

    kernel.fork_root(sleeper, name="sleeper", priority=3)
    kernel.fork_root(cv_waiter, name="cv-waiter", priority=4)
    kernel.fork_root(stimulator, name="stimulator", priority=5)
    kernel.fork_root(receiver, name="receiver", priority=4)
    for i in range(4):
        kernel.post_at(msec(100 + 150 * i), lambda k: channel.post("pkt"))
    kernel.run_for(sec(2))
    if probe is not None:
        probe(kernel)
    result = fingerprint(kernel)
    kernel.shutdown()
    return result


def _multiprocessor_scenario(
    config_overrides: dict | None = None, probe: Probe | None = None
) -> dict:
    """Two CPUs, mixed priorities, contention and preemption."""
    kernel = Kernel(_config(dict(seed=0, trace=True, ncpus=2), config_overrides))
    lock = Monitor("mp")

    def worker(slice_us):
        for _ in range(30):
            yield p.Compute(slice_us)
            yield Enter(lock)
            try:
                yield p.Compute(usec(20))
            finally:
                yield Exit(lock)

    def interrupter():
        for _ in range(20):
            yield p.Pause(msec(7))
            yield p.Compute(usec(300))

    for i, prio in enumerate([2, 3, 4, 4, 5]):
        kernel.fork_root(worker, args=(usec(400 + 100 * i),), priority=prio)
    kernel.fork_root(interrupter, name="interrupter", priority=7)
    kernel.run_for(sec(1))
    if probe is not None:
        probe(kernel)
    result = fingerprint(kernel)
    kernel.shutdown()
    return result


def _fair_share_scenario(
    config_overrides: dict | None = None, probe: Probe | None = None
) -> dict:
    """The Section-7 lottery policy: different code path entirely."""
    kernel = Kernel(
        _config(
            dict(seed=0, trace=True, scheduler_policy="fair_share"),
            config_overrides,
        )
    )
    progress = {}

    def worker(tag):
        progress[tag] = 0
        while True:
            yield p.Compute(msec(3))
            progress[tag] += 1

    for tag, prio in [("a", 1), ("b", 4), ("c", 7)]:
        kernel.fork_root(worker, args=(tag,), name=tag, priority=prio)
    kernel.run_for(sec(1))
    if probe is not None:
        probe(kernel)
    result = fingerprint(kernel)
    kernel.shutdown()
    return result


def _weak_memory_scenario(
    config_overrides: dict | None = None, probe: Probe | None = None
) -> dict:
    """Weak ordering with fences and monitor-implied barriers (§5.5)."""
    from repro.kernel.memory import SimVar

    kernel = Kernel(
        _config(
            dict(seed=0, trace=True, ncpus=2, memory_order="weak"),
            config_overrides,
        )
    )
    flag = SimVar("flag", 0)
    data = SimVar("data", 0)
    lock = Monitor("wm")

    def writer():
        for i in range(40):
            yield p.MemWrite(data, i)
            yield p.Fence()
            yield p.MemWrite(flag, i + 1)
            yield p.Compute(usec(120))

    def reader():
        for _ in range(40):
            yield Enter(lock)
            try:
                seen = yield p.MemRead(flag)
                if seen:
                    yield p.MemRead(data)
            finally:
                yield Exit(lock)
            yield p.Compute(usec(90))

    kernel.fork_root(writer, name="writer", priority=4)
    kernel.fork_root(reader, name="reader", priority=4)
    kernel.run_for(sec(1))
    if probe is not None:
        probe(kernel)
    result = fingerprint(kernel)
    kernel.shutdown()
    return result


def _server_scenario(scenario):
    """The multi-tenant RPC server world (steady-state and overload)."""

    def run(config_overrides: dict | None = None, probe: Probe | None = None) -> dict:
        world, _server = build_server_world(
            _config(dict(seed=0, trace=True), config_overrides),
            scenario=scenario,
        )
        world.run_for(WORLD_RUN)
        if probe is not None:
            probe(world.kernel)
        result = fingerprint(world.kernel)
        world.shutdown()
        return result

    return run


def _cluster_scenario(scenario):
    """The sharded cluster world: balancer, WFQ admission, two shards."""

    def run(config_overrides: dict | None = None, probe: Probe | None = None) -> dict:
        from repro.cluster.world import build_cluster_world

        world, _balancer = build_cluster_world(
            _config(dict(seed=0, trace=True, ncpus=2), config_overrides),
            scenario=scenario,
        )
        world.run_for(WORLD_RUN)
        if probe is not None:
            probe(world.kernel)
        result = fingerprint(world.kernel)
        world.shutdown()
        return result

    return run


def _cluster_replicated_scenario(kill: bool):
    """The replicated cluster: log shipping, lease, standby — and, with
    ``kill``, a posted mid-run primary kill driving a full promotion.
    Pinning both proves the whole failover path (op-log ship/apply,
    replay, lease renewal) is itself deterministic."""

    def run(config_overrides: dict | None = None, probe: Probe | None = None) -> dict:
        from repro.cluster.replication import install_primary_kill
        from repro.cluster.world import build_cluster_world

        world, balancer = build_cluster_world(
            _config(dict(seed=0, trace=True, ncpus=2), config_overrides),
            scenario="failover",
            shards=1,
            replicas=True,
        )
        if kill:
            install_primary_kill(world, balancer, 0, msec(100))
        world.run_for(WORLD_RUN)
        if probe is not None:
            probe(world.kernel)
        result = fingerprint(world.kernel)
        world.shutdown()
        return result

    return run


def _workload_scenario(scenario):
    """A compiled workload scenario: aggregate NHPP arrival pumps over
    the cluster (plus, for cache scenarios, the cache tier).  Pinning
    these proves the thinning pumps, the resubmit sinks and the cache's
    fill/invalidation machinery are deterministic end to end."""

    def run(config_overrides: dict | None = None, probe: Probe | None = None) -> dict:
        from repro.workload.scenarios import workload_spec
        from repro.workload.world import build_workload_world

        spec = workload_spec(scenario)
        ncpus = spec.shards + (1 if spec.cache else 0)
        ww = build_workload_world(
            _config(dict(seed=0, trace=True, ncpus=ncpus), config_overrides),
            spec=spec,
        )
        ww.world.run_for(WORLD_RUN)
        if probe is not None:
            probe(ww.world.kernel)
        result = fingerprint(ww.world.kernel)
        ww.world.shutdown()
        return result

    return run


SCENARIOS: dict[str, Callable[..., dict]] = {
    "cedar-idle": _world_scenario(build_cedar_world, CEDAR_ACTIVITIES, "idle"),
    "cedar-keyboard": _world_scenario(
        build_cedar_world, CEDAR_ACTIVITIES, "keyboard"
    ),
    "cedar-formatting": _world_scenario(
        build_cedar_world, CEDAR_ACTIVITIES, "formatting"
    ),
    "gvx-idle": _world_scenario(build_gvx_world, GVX_ACTIVITIES, "idle"),
    "gvx-keyboard": _world_scenario(build_gvx_world, GVX_ACTIVITIES, "keyboard"),
    "spurious-immediate": _spurious_scenario("immediate"),
    "spurious-deferred": _spurious_scenario("deferred"),
    "donations": _donation_scenario,
    "fork-churn": _fork_churn_scenario,
    "timed-waits": _timed_waits_scenario,
    "multiprocessor": _multiprocessor_scenario,
    "fair-share": _fair_share_scenario,
    "weak-memory": _weak_memory_scenario,
    "server-steady": _server_scenario("steady"),
    "server-overload": _server_scenario("overload"),
    "cluster-steady": _cluster_scenario("steady"),
    "cluster-skewed": _cluster_scenario("skewed"),
    "cluster-replicated": _cluster_replicated_scenario(kill=False),
    "cluster-failover": _cluster_replicated_scenario(kill=True),
    "workload-diurnal": _workload_scenario("diurnal"),
    "cache-steady": _workload_scenario("cache-steady"),
}


# ---------------------------------------------------------------------------
# Pinning machinery
# ---------------------------------------------------------------------------

def load_golden(path: Path | None = None) -> dict:
    path = path or default_golden_path()
    if not path.exists():
        return {}
    return json.loads(path.read_text())


def regenerate_golden(path: Path | None = None) -> dict:
    """Recompute every scenario fingerprint and rewrite the pinned file."""
    path = path or default_golden_path()
    golden: dict[str, Any] = {name: run() for name, run in SCENARIOS.items()}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    return golden
