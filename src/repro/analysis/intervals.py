"""Execution-interval analyses (F1/F2).

Paper claims reproduced here (Section 3):

* Cedar: "Thread execution intervals ... exhibit a peak at about 3
  milliseconds, with about 75% of all execution intervals being between
  0 and 5 milliseconds in length. ... A second peak is around 45
  milliseconds, which is related to the PCR time-slice period."
* Cedar: "Between 20% and 50% of the total execution time during any
  period is accumulated by threads running for periods of 45 to 50
  milliseconds."
* GVX: "between 50% and 70% of all execution intervals are between 0 and
  5 milliseconds ... Between 30% and 80% of the total execution time ...
  is accumulated by threads running for periods of 45 to 50 ms."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.simtime import msec

#: Histogram bucket edges in µs (upper bounds; last bucket is open).
DEFAULT_EDGES = [
    msec(1), msec(2), msec(3), msec(5), msec(10), msec(20),
    msec(30), msec(40), msec(45), msec(50), msec(60),
]


@dataclass
class IntervalSummary:
    count: int
    total_time: int
    short_fraction: float        # intervals in 0-5 ms, by count (F1)
    quantum_time_share: float    # execution time in quantum-length intervals (F2)
    histogram: list[tuple[str, int]]


def summarise(intervals: list[int], edges: list[int] | None = None) -> IntervalSummary:
    """Compute the F1/F2 statistics for a list of interval durations."""
    edges = edges if edges is not None else DEFAULT_EDGES
    total_time = sum(intervals)
    count = len(intervals)
    short = sum(1 for d in intervals if d <= msec(5))
    # The paper's bucket is "45 to 50 milliseconds".  Our rotated slices
    # start mid-quantum when an equal-priority peer ran first, so a
    # quantum-limited interval can be 40-50 ms; we widen the bucket
    # accordingly (recorded as a deviation in EXPERIMENTS.md).
    quantum_time = sum(d for d in intervals if msec(40) <= d <= msec(50))
    histogram = bucketise(intervals, edges)
    return IntervalSummary(
        count=count,
        total_time=total_time,
        short_fraction=short / count if count else 0.0,
        quantum_time_share=quantum_time / total_time if total_time else 0.0,
        histogram=histogram,
    )


def bucketise(intervals: list[int], edges: list[int]) -> list[tuple[str, int]]:
    """Counts per bucket; labels are in milliseconds for readability."""
    counts = [0] * (len(edges) + 1)
    for duration in intervals:
        for index, edge in enumerate(edges):
            if duration <= edge:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
    labels = []
    low = 0
    for edge in edges:
        labels.append(f"{low / 1000:g}-{edge / 1000:g}ms")
        low = edge
    labels.append(f">{edges[-1] / 1000:g}ms")
    return list(zip(labels, counts))


def has_bimodal_shape(intervals: list[int]) -> bool:
    """True when the distribution shows the paper's two peaks: mass in
    the 0-5 ms region and a distinct cluster in 40-50 ms."""
    if not intervals:
        return False
    short = sum(1 for d in intervals if d <= msec(5))
    quantum_like = sum(1 for d in intervals if msec(40) <= d <= msec(50))
    middle = sum(1 for d in intervals if msec(20) < d < msec(40))
    return short > quantum_like > 0 and quantum_like >= middle
