"""Waits-for watchdog: partial deadlocks and starvation, while live.

The kernel's built-in detector only fires when *nothing* can run — the
whole simulation is wedged and ``run_until`` has no next instant.  The
paper's systems failed more insidiously: two threads of a forty-thread
world deadlock over a pair of monitors and the rest of the system keeps
running, or a ready thread sits behind a priority inversion "for
considerable periods of time" (Section 6.2) without anything being
technically stuck.  This watchdog catches both, on-line, from the same
trap seams the race detector uses.

**Waits-for graph.**  Each blocked thread has at most one out-edge, so
the graph is functional and cycle detection is pointer-chasing with
path colouring — O(blocked threads) per sweep:

* ``BLOCKED_MONITOR`` → the monitor's owner;
* ``JOINING`` → the join target (while it is alive);
* untimed ``WAITING_CV`` → the CV's monitor's owner.  Sound because
  NOTIFY/BROADCAST require holding the monitor: if the owner can never
  release it, nobody — the owner included — can ever notify.

Timed waits of any kind self-wake and get no edge.  ``RECEIVING`` is the
device boundary (host code may post later); ``FORK_WAIT`` waits on the
thread *pool*, not any one thread.  Neither joins a cycle.

Edges are computed at check time from live thread state, never cached:
the deferred-NOTIFY path moves a waiter from a CV to a monitor entry
queue without a kernel block event, so stored edges would go stale.
``on_block`` only registers *candidates*; a sweep revalidates each one.

**Starvation.**  A thread that is READY can only leave READY by being
dispatched (which bumps ``stats.dispatches``), so "continuously ready
since t" is provable from two facts at sweep time: still READY, and
dispatch count unchanged since the sweep that first saw it.  A thread
ready longer than ``starvation_budget`` is reported once per episode.

The watchdog is strictly passive: it draws no randomness and mutates no
kernel state, so a watchdog-on run reproduces the golden schedule hashes
bit-for-bit as long as it has nothing to report (and the false-positive
tests pin that it reports nothing on all golden scenarios).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.kernel.errors import Deadlock
from repro.kernel.thread import SimThread, ThreadState

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

#: Row layout shared by the watchdog, the kernel's global deadlock
#: report, and the CLI's ``--no-raise-on-deadlock`` table.
ROW_HEADER = ("thread", "state", "waits on", "held by")


@dataclass(frozen=True)
class DeadlockReport:
    """One waits-for cycle, reported the first sweep it is seen."""

    time: int
    #: Thread names in edge order (cycle[i] waits on cycle[i+1], wrapping).
    cycle: tuple[str, ...]
    tids: frozenset[int]
    rows: tuple[tuple[str, str, str, str], ...]

    def __str__(self) -> str:
        chain = " -> ".join(self.cycle + (self.cycle[0],))
        return f"[{self.time}us] partial deadlock: {chain}"


@dataclass(frozen=True)
class StarvationReport:
    """A ready thread not dispatched within the starvation budget."""

    time: int
    thread: str
    tid: int
    priority: int
    ready_since: int

    @property
    def starved_for(self) -> int:
        return self.time - self.ready_since

    def __str__(self) -> str:
        return (
            f"[{self.time}us] starvation: {self.thread} (prio "
            f"{self.priority}) ready since {self.ready_since}us "
            f"({self.starved_for}us undispatched)"
        )


def waits_on(thread: SimThread) -> SimThread | None:
    """The thread's single waits-for out-edge, or None.

    Only edges that can participate in a cycle are returned; timed waits,
    channel receives and fork-resource waits yield None by design (see
    module docstring).
    """
    state = thread.state
    if state is ThreadState.BLOCKED_MONITOR:
        return thread.blocked_on.owner
    if state is ThreadState.JOINING:
        target = thread.blocked_on
        return target if target.alive else None
    if state is ThreadState.WAITING_CV:
        if thread.timed_epoch == thread.wait_epoch:
            return None  # live timeout: the wait self-wakes
        return thread.blocked_on.monitor.owner
    return None


def block_row(thread: SimThread) -> tuple[str, str, str, str]:
    """(thread, state, waits-on, held-by) diagnosis for one thread.

    Unlike :func:`waits_on` this covers *every* blocked state — it feeds
    human-facing reports, not cycle detection — and it names what the
    resource is and who currently holds it.
    """
    state = thread.state
    target = thread.blocked_on
    if state is ThreadState.BLOCKED_MONITOR:
        owner = target.owner
        held_by = owner.name if owner is not None else "nobody (being handed off)"
        return (thread.name, state.value, f"monitor {target.name}", held_by)
    if state is ThreadState.WAITING_CV:
        monitor = target.monitor
        owner = monitor.owner
        held_by = owner.name if owner is not None else "nobody"
        timed = " [timed]" if thread.timed_epoch == thread.wait_epoch else ""
        return (
            thread.name,
            state.value,
            f"cv {target.name} (monitor {monitor.name}){timed}",
            held_by,
        )
    if state is ThreadState.JOINING:
        return (
            thread.name,
            state.value,
            f"join {target.name}",
            f"{target.name} [{target.state.value}]",
        )
    if state is ThreadState.RECEIVING:
        return (
            thread.name, state.value,
            f"channel {target.name}", "external (device boundary)",
        )
    if state is ThreadState.FORK_WAIT:
        return (thread.name, state.value, "thread resources", "-")
    if state is ThreadState.SLEEPING:
        return (thread.name, state.value, "timer", "-")
    return (thread.name, state.value, "-", "-")


def deadlock_rows(threads: Iterable[SimThread]) -> list[tuple[str, str, str, str]]:
    """Diagnosis rows for every live thread (runnable ones included, so
    the report shows the whole system, not just the stuck part)."""
    rows = []
    for thread in threads:
        if not thread.alive:
            continue
        if thread.state in (ThreadState.READY, ThreadState.RUNNING, ThreadState.NEW):
            rows.append((thread.name, thread.state.value, "-", "-"))
        else:
            rows.append(block_row(thread))
    return rows


def format_rows(rows: list[tuple[str, str, str, str]]) -> str:
    """Render diagnosis rows as an aligned text table."""
    table = [ROW_HEADER, *rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(ROW_HEADER))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


class Watchdog:
    """Periodic waits-for and starvation sweeps over a live kernel."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        config = kernel.config
        self.interval = (
            config.watchdog_interval
            if config.watchdog_interval is not None
            else config.quantum
        )
        self.starvation_budget = config.starvation_budget
        self.raise_on_cycle = config.watchdog_raise
        self._next_check = self.interval
        #: Threads that blocked since the last sweep pruned them; states
        #: are revalidated live at check time.
        self._candidates: dict[int, SimThread] = {}
        #: Cycles already reported (as tid sets), so each fires once.
        self._seen_cycles: set[frozenset[int]] = set()
        #: tid -> (dispatch count, first sweep time seen ready with it).
        self._ready_seen: dict[int, tuple[int, int]] = {}
        #: tids already flagged this starvation episode.
        self._flagged_starving: set[int] = set()
        self.deadlocks: list[DeadlockReport] = []
        self.starvation: list[StarvationReport] = []
        self.checks = 0

    # -- kernel hooks ------------------------------------------------------

    def on_block(self, thread: SimThread) -> None:
        """Register a just-blocked thread as a cycle candidate."""
        if thread.state in (
            ThreadState.BLOCKED_MONITOR,
            ThreadState.WAITING_CV,
            ThreadState.JOINING,
        ):
            self._candidates[thread.tid] = thread

    def maybe_check(self, now: int) -> None:
        if now < self._next_check:
            return
        self._next_check = now + self.interval
        self.check(now)

    # -- the sweep ---------------------------------------------------------

    def check(self, now: int) -> None:
        """One full sweep: prune candidates, find cycles, scan starvation."""
        self.checks += 1
        self._find_cycles(now)
        self._scan_starvation(now)

    def _find_cycles(self, now: int) -> None:
        # Prune candidates that have moved on since they blocked.
        blocked_states = (
            ThreadState.BLOCKED_MONITOR,
            ThreadState.WAITING_CV,
            ThreadState.JOINING,
        )
        for tid in [
            tid
            for tid, t in self._candidates.items()
            if t.state not in blocked_states
        ]:
            del self._candidates[tid]
        # Functional-graph cycle hunt with path colouring.  0/absent =
        # unvisited this sweep, 1 = on the current path, 2 = exhausted.
        colour: dict[int, int] = {}
        for start in list(self._candidates.values()):
            if colour.get(start.tid):
                continue
            path: list[SimThread] = []
            node: SimThread | None = start
            while node is not None and colour.get(node.tid, 0) == 0:
                colour[node.tid] = 1
                path.append(node)
                node = waits_on(node)
            if node is not None and colour.get(node.tid) == 1:
                cycle = path[path.index(node):]
                self._report_cycle(now, cycle)
            for visited in path:
                colour[visited.tid] = 2

    def _report_cycle(self, now: int, cycle: list[SimThread]) -> None:
        tids = frozenset(t.tid for t in cycle)
        if tids in self._seen_cycles:
            return
        self._seen_cycles.add(tids)
        # Canonical order: start from the smallest tid so reports are
        # stable regardless of which candidate the sweep entered from.
        pivot = min(range(len(cycle)), key=lambda i: cycle[i].tid)
        ordered = cycle[pivot:] + cycle[:pivot]
        report = DeadlockReport(
            time=now,
            cycle=tuple(t.name for t in ordered),
            tids=tids,
            rows=tuple(block_row(t) for t in ordered),
        )
        self.deadlocks.append(report)
        kernel = self.kernel
        if kernel._trace_watchdog:
            from repro.kernel.instrumentation import CAT_WATCHDOG

            kernel.tracer.record(
                now, CAT_WATCHDOG, "deadlock", ordered[0].name,
                "->".join(report.cycle),
            )
        if self.raise_on_cycle:
            rows = list(report.rows)
            raise Deadlock(
                f"watchdog: partial deadlock at {now}us:\n{format_rows(rows)}",
                rows=rows,
            )

    def _scan_starvation(self, now: int) -> None:
        ready_now: set[int] = set()
        for thread in self.kernel.threads.values():
            if thread.state is not ThreadState.READY:
                continue
            tid = thread.tid
            ready_now.add(tid)
            dispatches = thread.stats.dispatches
            seen = self._ready_seen.get(tid)
            if seen is None or seen[0] != dispatches:
                # First sight, or it ran since: a fresh episode starts.
                self._ready_seen[tid] = (dispatches, now)
                self._flagged_starving.discard(tid)
                continue
            ready_since = seen[1]
            if now - ready_since < self.starvation_budget:
                continue
            if tid in self._flagged_starving:
                continue
            self._flagged_starving.add(tid)
            report = StarvationReport(
                time=now,
                thread=thread.name,
                tid=tid,
                priority=thread.priority,
                ready_since=ready_since,
            )
            self.starvation.append(report)
            if self.kernel._trace_watchdog:
                from repro.kernel.instrumentation import CAT_WATCHDOG

                self.kernel.tracer.record(
                    now, CAT_WATCHDOG, "starvation", thread.name,
                    report.starved_for,
                )
        # Threads no longer ready start from scratch next time they queue.
        for tid in list(self._ready_seen):
            if tid not in ready_now:
                del self._ready_seen[tid]
                self._flagged_starving.discard(tid)

    # -- reporting ---------------------------------------------------------

    def describe(self) -> str:
        """Human-readable summary of everything found so far."""
        if not self.deadlocks and not self.starvation:
            return f"watchdog: no anomalies in {self.checks} sweeps"
        lines = [
            f"watchdog: {len(self.deadlocks)} partial deadlock(s), "
            f"{len(self.starvation)} starvation report(s) "
            f"in {self.checks} sweeps"
        ]
        for report in self.deadlocks:
            lines.append(str(report))
            lines.append(format_rows(list(report.rows)))
        lines.extend(str(report) for report in self.starvation)
        return "\n".join(lines)
