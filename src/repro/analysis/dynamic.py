"""Tables 1-3: the paper's reported values and the machinery to
regenerate them from the synthetic worlds.

``PAPER_ROWS`` transcribes the published numbers; ``measure`` runs one
activity and returns the measured row; ``measure_all`` produces a full
table.  Reproduction succeeds on *shape*: orderings and rough magnitudes,
not exact matches (see EXPERIMENTS.md for the per-cell comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.kernel.simtime import sec
from repro.workloads.base import ActivityResult, run_activity
from repro.workloads.cedar import CEDAR_ACTIVITIES, build_cedar_world
from repro.workloads.gvx import GVX_ACTIVITIES, build_gvx_world


@dataclass(frozen=True)
class PaperRow:
    """One published row across Tables 1, 2 and 3."""

    system: str
    activity: str
    forks_per_sec: float      # Table 1
    switches_per_sec: float   # Table 1
    waits_per_sec: float      # Table 2
    timeout_fraction: float   # Table 2 (fraction, not %)
    ml_enters_per_sec: float  # Table 2
    distinct_cvs: int         # Table 3
    distinct_mls: int         # Table 3


#: Tables 1-3 as published (timeout fractions converted from %).
PAPER_ROWS: dict[tuple[str, str], PaperRow] = {
    (r.system, r.activity): r
    for r in [
        PaperRow("Cedar", "idle", 0.9, 132, 121, 0.82, 414, 22, 554),
        PaperRow("Cedar", "keyboard", 5.0, 269, 185, 0.48, 2557, 32, 918),
        PaperRow("Cedar", "mouse", 1.0, 191, 163, 0.58, 1025, 26, 734),
        PaperRow("Cedar", "scrolling", 0.7, 172, 115, 0.69, 2032, 30, 797),
        PaperRow("Cedar", "formatting", 3.6, 171, 130, 0.72, 2739, 46, 1060),
        PaperRow("Cedar", "previewing", 1.6, 222, 157, 0.56, 1335, 32, 938),
        PaperRow("Cedar", "make", 0.3, 170, 158, 0.61, 2218, 24, 1296),
        PaperRow("Cedar", "compile", 0.3, 135, 119, 0.82, 1365, 36, 2900),
        PaperRow("GVX", "idle", 0.0, 33, 32, 0.99, 366, 5, 48),
        PaperRow("GVX", "keyboard", 0.0, 60, 38, 0.42, 1436, 7, 204),
        PaperRow("GVX", "mouse", 0.0, 34, 33, 0.96, 410, 5, 52),
        PaperRow("GVX", "scrolling", 0.0, 43, 25, 0.61, 691, 6, 209),
    ]
}

CEDAR_ACTIVITY_ORDER = list(CEDAR_ACTIVITIES)
GVX_ACTIVITY_ORDER = list(GVX_ACTIVITIES)

_BUILDERS: dict[str, Callable] = {
    "Cedar": build_cedar_world,
    "GVX": build_gvx_world,
}
_ACTIVITIES = {"Cedar": CEDAR_ACTIVITIES, "GVX": GVX_ACTIVITIES}


def measure(
    system: str,
    activity: str,
    *,
    warmup: int = sec(3),
    window: int = sec(10),
    seed: int = 0,
) -> ActivityResult:
    """Run one benchmark activity and return its measured row."""
    if system not in _BUILDERS:
        raise ValueError(f"unknown system {system!r}")
    activities = _ACTIVITIES[system]
    if activity not in activities:
        raise ValueError(f"unknown {system} activity {activity!r}")
    return run_activity(
        system=system,
        activity=activity,
        build_world=_BUILDERS[system],
        install=activities[activity],
        warmup=warmup,
        window=window,
        seed=seed,
    )


def measure_all(system: str, **kwargs) -> list[ActivityResult]:
    """Measure every benchmark activity for a system, in table order."""
    return [measure(system, name, **kwargs) for name in _ACTIVITIES[system]]


def paper_row(system: str, activity: str) -> PaperRow:
    return PAPER_ROWS[(system, activity)]
