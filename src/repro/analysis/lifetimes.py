"""Thread-lifetime analysis (Section 3).

"Looking at the dynamic thread behavior, we observed several different
classes of threads": eternal threads that wait and run briefly forever,
worker threads forked for an activity, and "short-lived transient
threads ... by far the most numerous resulting in an average lifetime
for non-eternal threads that is well under 1 second."

The kernel records ``(lifetime, role)`` for every finished thread; this
module classifies and summarises them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.simtime import sec


@dataclass
class LifetimeReport:
    finished: int
    transient_count: int
    worker_count: int
    mean_transient_lifetime: float
    max_transient_lifetime: int
    #: Fraction of finished threads that were transients.
    transient_share: float


def analyse(lifetimes: list[tuple[int | None, str | None]]) -> LifetimeReport:
    """Summarise finished-thread lifetimes.

    ``lifetimes`` is ``GlobalStats.lifetimes``: (duration, declared role).
    Threads with no declared role are the forked transients; "worker"
    marks activity workers; eternal threads never finish so they never
    appear here.
    """
    finished = [(d, role) for d, role in lifetimes if d is not None]
    transients = [d for d, role in finished if role is None]
    workers = [d for d, role in finished if role == "worker"]
    mean_transient = sum(transients) / len(transients) if transients else 0.0
    return LifetimeReport(
        finished=len(finished),
        transient_count=len(transients),
        worker_count=len(workers),
        mean_transient_lifetime=mean_transient,
        max_transient_lifetime=max(transients, default=0),
        transient_share=len(transients) / len(finished) if finished else 0.0,
    )


def is_well_under_a_second(report: LifetimeReport) -> bool:
    """The paper's headline claim about transient lifetimes."""
    return report.transient_count > 0 and report.mean_transient_lifetime < sec(1) / 2
