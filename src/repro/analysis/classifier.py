"""The paradigm classifier: the census "reader" for Table 4.

The paper's method: "we used grep to locate all uses of thread primitives
and then read the surrounding code".  The classifier plays the reading
researcher with an ordered rule list: each rule is a set of grep-style
cues (regexes over the fragment text) capturing how a human recognises
the paradigm — a FORK immediately before RETURN is work deferral, a WAIT
inside a loop with a timeout comment is a sleeper, a merge step with a
yield is a slack process, and so on.  Rules are checked most-specific
first; a fragment matching nothing lands in "unknown or other", exactly
like the paper's residual row.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from repro.corpus import model
from repro.corpus.model import CensusCount, CodeFragment


@dataclass(frozen=True)
class Rule:
    """One classification rule: every pattern must match somewhere."""

    paradigm: str
    patterns: tuple[str, ...]
    #: Rules may also require the absence of a cue (e.g. a pump is only a
    #: *slack* process if it merges/batches).
    forbidden: tuple[str, ...] = ()

    def matches(self, text: str) -> bool:
        for pattern in self.patterns:
            if not re.search(pattern, text, re.IGNORECASE):
                return False
        for pattern in self.forbidden:
            if re.search(pattern, text, re.IGNORECASE):
                return False
        return True


#: Ordered most-specific-first: slack before pump, encapsulated before
#: one-shot (DelayedFork *is* a one-shot, but the census counts the
#: package uses separately), rejuvenation before defer.
RULES: list[Rule] = [
    Rule(
        model.ENCAPSULATED,
        (r"(DelayedFork|PeriodicalFork|PeriodicalProcess|MBQueue)\.(Create|Register)",),
    ),
    Rule(
        model.SLACK,
        (r"(merge|coalesce|batch)", r"(YieldButNotToMe|Yield|Pause)", r"(Dequeue|Get)\["),
    ),
    Rule(
        model.REJUVENATE,
        (r"UNCAUGHT", r"FORK"),
    ),
    Rule(
        model.EXPLOITER,
        (r"numProcessors|processors\b", r"FORK", r"JOIN"),
    ),
    Rule(
        model.SERIALIZER,
        (r"(MBQueue\.Dequeue|order(ing)? of|order received)", r"WHILE TRUE"),
    ),
    Rule(
        model.DEADLOCK_AVOID,
        (r"(hold some|locks? (it|needed|in order)|release its locks|insulated)",
         r"FORK"),
    ),
    Rule(
        model.SLEEPER,
        (r"WHILE TRUE", r"(WAIT \w+CV|WorkQueue\.Wait)"),
        forbidden=(r"(BoundedBuffer|Enqueue\[|Dequeue\[)",),
    ),
    Rule(
        model.ONESHOT,
        (r"Process\.Pause",),
        forbidden=(r"WHILE TRUE|ENDLOOP",),
    ),
    Rule(
        model.PUMP,
        (r"WHILE TRUE",
         r"(BoundedBuffer\.(Get|Put)|UnixIO\.Read|Enqueue\[)"),
    ),
    Rule(
        model.DEFER,
        (r"Detach\[FORK",),
        forbidden=(r"WHILE TRUE.*FORK|FORK.*ENDLOOP",),
    ),
    # The critical-thread flavour of defer work: an event loop whose body
    # is just "notice and fork".
    Rule(
        model.DEFER,
        (r"WHILE TRUE", r"Detach\[FORK", r"(keep watching|critical)"),
    ),
]


def classify(fragment: CodeFragment) -> str:
    """Assign a paradigm to one fragment; "unknown" if no rule fires."""
    for rule in RULES:
        if rule.matches(fragment.text):
            return rule.paradigm
    return model.UNKNOWN


def census(fragments: Iterable[CodeFragment], system: str) -> CensusCount:
    """Classify a corpus into a Table 4 column."""
    counts = {paradigm: 0 for paradigm in model.PARADIGMS}
    for fragment in fragments:
        counts[classify(fragment)] += 1
    return CensusCount(system=system, counts=counts)


def accuracy(fragments: Iterable[CodeFragment]) -> float:
    """Fraction of fragments whose classification matches ground truth."""
    total = 0
    correct = 0
    for fragment in fragments:
        total += 1
        if classify(fragment) == fragment.label:
            correct += 1
    return correct / total if total else 0.0


def confusion(fragments: Iterable[CodeFragment]) -> dict[tuple[str, str], int]:
    """(truth, predicted) -> count, for classifier diagnostics."""
    table: dict[tuple[str, str], int] = {}
    for fragment in fragments:
        key = (fragment.label, classify(fragment))
        table[key] = table.get(key, 0) + 1
    return table
