"""Measurement analysis: turning runs into the paper's tables and figures.

* :mod:`dynamic` — Tables 1-3 rows from world runs, with the paper's
  reported values alongside;
* :mod:`intervals` — the execution-interval histogram analyses (F1/F2);
* :mod:`genealogy` — fork-generation analysis (F3);
* :mod:`priorities` — CPU-time-by-priority and level-usage analysis (F4);
* :mod:`classifier` — the grep-style paradigm classifier behind Table 4;
* :mod:`report` — table formatting and paper-vs-measured comparison.
"""
