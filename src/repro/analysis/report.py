"""Report formatting: paper-vs-measured tables for the bench harness.

Every benchmark prints its table through these helpers, so the
regenerated rows look the same everywhere: a column of published values,
a column of measured values, and a ratio.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> str:
    """A plain-text table with aligned columns."""
    widths = [len(str(h)) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = [_fmt(cell) for cell in row]
        rendered_rows.append(rendered)
        for index, cell in enumerate(rendered):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(rendered, widths)))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def ratio(measured: float, paper: float) -> str:
    """measured/paper as a compact ratio string ("-" when undefined)."""
    if paper == 0:
        return "-" if measured == 0 else "inf"
    return f"{measured / paper:.2f}x"


def within_band(measured: float, low: float, high: float) -> bool:
    return low <= measured <= high


def shape_holds(measured: float, paper: float, tolerance: float) -> bool:
    """True when measured is within ``tolerance`` (relative) of paper.

    Zero targets require zero measurements (the GVX never-forks rows).
    """
    if paper == 0:
        return measured == 0
    return abs(measured - paper) / paper <= tolerance
