"""Report formatting: paper-vs-measured tables for the bench harness.

Every benchmark prints its table through these helpers, so the
regenerated rows look the same everywhere: a column of published values,
a column of measured values, and a ratio.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> str:
    """A plain-text table with aligned columns."""
    widths = [len(str(h)) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = [_fmt(cell) for cell in row]
        rendered_rows.append(rendered)
        for index, cell in enumerate(rendered):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(rendered, widths)))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_latency_histogram(
    title: str,
    latency: dict,
    *,
    width: int = 40,
) -> str:
    """ASCII rendering of a :class:`~repro.server.latency.LatencyHistogram`
    in its ``to_dict()`` form: one bar per non-empty log2 bucket, plus
    the quantile footer every SLO discussion starts from."""
    from repro.server.latency import QUANTILES, bucket_label

    buckets = {int(k): v for k, v in latency.get("buckets", {}).items()}
    lines = [title]
    if not buckets:
        lines.append("  (no observations)")
        return "\n".join(lines)
    peak = max(buckets.values())
    label_width = max(len(bucket_label(i)) for i in buckets)
    for index in sorted(buckets):
        count = buckets[index]
        bar = "#" * max(1, round(width * count / peak))
        lines.append(
            f"  {bucket_label(index):>{label_width}}  {count:>7}  {bar}"
        )
    quantiles = "  ".join(
        f"{name}={latency[name] / 1000:.1f}ms" for name, _ in QUANTILES
    )
    lines.append(
        f"  n={latency['total']}  mean="
        f"{(latency['sum'] / latency['total']) / 1000:.1f}ms  {quantiles}"
    )
    return "\n".join(lines)


def format_server_counters(stats: dict) -> str:
    """Per-tenant shed/timeout/retry counter table for a server run's
    ``ServerStats.to_dict()``; the totals row closes the table."""
    headers = ["tenant", "offered", "admitted", "shed", "completed",
               "coalesced", "timeouts", "retries", "failed", "give_ups",
               "p50", "p99"]
    rows = []
    for name, row in stats["tenants"].items():
        latency = row.get("latency")
        rows.append([
            name, row["offered"], row["admitted"], row["shed"],
            row["completed"], row["coalesced"], row["timeouts"],
            row["retries"], row["failed"], row["give_ups"],
            f"{latency['p50'] / 1000:.1f}ms" if latency else "-",
            f"{latency['p99'] / 1000:.1f}ms" if latency else "-",
        ])
    totals = stats["totals"]
    rows.append([
        "TOTAL", totals["offered"], totals["admitted"], totals["shed"],
        totals["completed"], totals["coalesced"], totals["timeouts"],
        totals["retries"], totals["failed"], totals["give_ups"],
        f"{stats['latency']['p50'] / 1000:.1f}ms",
        f"{stats['latency']['p99'] / 1000:.1f}ms",
    ])
    return format_table("Per-tenant outcomes", headers, rows)


def format_server_report(report: dict) -> str:
    """The full ``serve`` output for a ``ServerReport.to_dict()``."""
    stats = report["stats"]
    seconds = report["duration_us"] / 1_000_000
    depth = stats.get("max_depth_sampled", 0)
    lines = [
        f"server scenario={report['scenario']} seed={report['seed']} "
        f"policy={report['policy']} workers={report['workers']} "
        f"admission={report['admission_capacity']} run={seconds:g}s",
        f"throughput {report['throughput_per_sec']:.1f} req/s, "
        f"shed {100 * report['shed_fraction']:.1f}%, "
        f"peak sampled queue depth {depth}, "
        f"{stats['batches']} write batches",
        "",
        format_server_counters(stats),
        "",
        format_latency_histogram("End-to-end latency", stats["latency"]),
        "",
        f"stats digest: {report['digest']}",
    ]
    return "\n".join(lines)


def format_cluster_report(report: dict) -> str:
    """The full ``cluster`` output for a ``ClusterReport.to_dict()``."""
    merged = report["merged"]
    balancer = report["balancer"]
    seconds = report["duration_us"] / 1_000_000
    health = (
        f"trips {balancer['trips']}, recoveries {balancer['recoveries']}, "
        f"reroutes {balancer['reroutes']}, "
        f"lost-inflight {sum(balancer.get('lost_inflight', ()))}"
    )
    promotions = balancer.get("promotions", 0)
    if promotions:
        health += (
            f", promotions {promotions} "
            f"(replayed {balancer.get('replayed', 0)}, "
            f"quarantined {balancer.get('quarantined', 0)})"
        )
    lease = balancer.get("lease")
    if lease is not None and lease.get("takeovers"):
        health += f", lease takeovers {lease['takeovers']}"
    shard_rows = []
    for sid, stats in enumerate(report["per_shard"]):
        totals = stats["totals"]
        latency = stats["latency"]
        shard_rows.append([
            f"shard{sid}",
            "up" if balancer["healthy"][sid] else "DOWN",
            balancer["dispatched"][sid],
            totals["completed"],
            totals["shed"],
            totals["timeouts"],
            balancer["rerouted_away"][sid],
            f"{latency['p50'] / 1000:.1f}ms" if latency["total"] else "-",
            f"{latency['p99'] / 1000:.1f}ms" if latency["total"] else "-",
        ])
    lines = [
        f"cluster scenario={report['scenario']} seed={report['seed']} "
        f"shards={report['shards']}x{report['workers_per_shard']}w "
        f"policy={report['policy']} admission={report['admission']} "
        f"run={seconds:g}s",
        f"throughput {report['throughput_per_sec']:.1f} req/s, "
        f"shed {100 * report['shed_fraction']:.1f}%, "
        f"dispatch window {balancer['window']}/shard, {health}",
        "",
        format_table(
            "Per-shard outcomes",
            ["shard", "health", "dispatched", "completed", "shed",
             "timeouts", "rerouted", "p50", "p99"],
            shard_rows,
        ),
        "",
        format_server_counters(merged),
        "",
        format_latency_histogram("Cluster end-to-end latency",
                                 merged["latency"]),
        "",
        f"cluster digest: {report['digest']}",
    ]
    throttled = {k: v for k, v in balancer.get("throttled", {}).items() if v}
    if throttled:
        noted = ", ".join(f"{k}={v}" for k, v in sorted(throttled.items()))
        lines.insert(2, f"token-bucket throttled: {noted}")
    return "\n".join(lines)


def format_workload_report(report: dict) -> str:
    """The full ``workload`` output for a ``WorkloadReport.to_dict()``."""
    seconds = report["duration_us"] / 1_000_000
    totals = report["totals"]
    headline = (
        f"workload scenario={report['scenario']} seed={report['seed']} "
        f"clients={report['total_clients']:,} run={seconds:g}s"
    )
    if report["single_flight"] is not None:
        headline += (
            f" single-flight={'on' if report['single_flight'] else 'off'}"
        )
    tenant_rows = []
    for name, row in report["tenants"].items():
        latency = row.get("latency")
        tenant_rows.append([
            name, row["offered"], row["completed"], row["shed"],
            row["give_ups"], row["client_retries"],
            f"{latency['p99'] / 1000:.1f}ms" if latency else "-",
            f"{row['slo_us'] / 1000:g}ms",
            f"{100 * row['latency_attainment']:.1f}%",
            f"{100 * row['slo_attainment']:.1f}%",
        ])
    lines = [
        headline,
        f"offered {totals['offered']}, completed {totals['completed']}, "
        f"shed {totals['shed']}, give-ups {totals['give_ups']}, "
        f"client retries {totals['client_retries']}",
        "",
        format_table(
            "Per-tenant SLO attainment (client-facing)",
            ["tenant", "offered", "completed", "shed", "give_ups",
             "retries", "p99", "slo", "latency-att", "slo-att"],
            tenant_rows,
        ),
    ]
    cache = report.get("cache")
    if cache:
        lines += [
            "",
            f"cache: hit rate {100 * cache['hit_rate']:.1f}% "
            f"({cache['hits']} hits / {cache['misses']} misses), "
            f"fetches {cache['fetches']} over {cache['fetch_windows']} "
            f"windows -> amplification {cache['amplification']:.2f}x, "
            f"max in-flight/key {cache['max_inflight_per_key']}",
            f"cache: fills {cache['fills']}, failed {cache['failed_fills']}, "
            f"stale (dead-on-arrival) {cache['stale_fills']}, "
            f"coalesced waits {cache['coalesced_waits']}, "
            f"invalidated {cache['invalidated']}, "
            f"ttl-expired {cache['expired_entries']}",
        ]
    storms = {
        name: sink for name, sink in report.get("sinks", {}).items()
        if sink["resubmitted"]
    }
    if storms:
        noted = ", ".join(
            f"{name} resubmitted {sink['resubmitted']} "
            f"(gave up {sink['give_ups']})"
            for name, sink in sorted(storms.items())
        )
        lines += ["", f"retry storms: {noted}"]
    cluster = report["cluster"]
    lines += [
        "",
        f"backend cluster: {cluster['throughput_per_sec']:.1f} req/s, "
        f"shed {100 * cluster['shed_fraction']:.1f}%, "
        f"digest {cluster['digest']}",
        f"workload digest: {report['digest']}",
    ]
    return "\n".join(lines)


def ratio(measured: float, paper: float) -> str:
    """measured/paper as a compact ratio string ("-" when undefined)."""
    if paper == 0:
        return "-" if measured == 0 else "inf"
    return f"{measured / paper:.2f}x"


def within_band(measured: float, low: float, high: float) -> bool:
    return low <= measured <= high


def shape_holds(measured: float, paper: float, tolerance: float) -> bool:
    """True when measured is within ``tolerance`` (relative) of paper.

    Zero targets require zero measurements (the GVX never-forks rows).
    """
    if paper == 0:
        return measured == 0
    return abs(measured - paper) / paper <= tolerance
