"""The simulated X server.

What the paper's analysis needs from the server is its *cost structure*,
not its rendering: "Slack processes are useful when the downstream
consumer of the data incurs high per-transaction costs."  Talking to the X
server costs

* a large per-flush overhead (writing the socket, the Unix process switch
  to the server and back) — charged to the submitting client thread as
  CPU, because on the paper's uniprocessor the server steals the client's
  processor; and
* a smaller per-request processing cost.

So ``k`` requests sent in one flush cost ``flush_overhead + k *
per_request``, while sent one-by-one they cost ``k * (flush_overhead +
per_request)`` — the batching economics the buffer thread exists to win.

The server also produces input events (keystroke echoes, exposures) on its
connection channel; client libraries read them per §5.6.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.kernel.primitives import Compute
from repro.kernel.simtime import usec

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.channel import Channel


class QueryRequest:
    """A round-trip request: the server answers it with a reply event.

    The existence of queries is why "the X specification requires that
    the output queue be flushed whenever a read is done on the input
    stream" — a query sitting unflushed while its issuer blocks reading
    the reply would hang the client forever (§5.6).
    """

    __slots__ = ("name", "token")

    def __init__(self, name: str, token: Any = None) -> None:
        self.name = name
        self.token = token

    def __repr__(self) -> str:
        return f"<Query {self.name!r} token={self.token!r}>"


class XServer:
    """An X server as seen from a client thread."""

    def __init__(
        self,
        name: str = "Xserver",
        *,
        flush_overhead: int = usec(400),
        per_request: int = usec(40),
        events: "Channel | None" = None,
    ) -> None:
        self.name = name
        self.flush_overhead = flush_overhead
        self.per_request = per_request
        #: Connection channel carrying server->client events.
        self.events = events
        self.flushes = 0
        self.requests_received = 0
        self.replies_sent = 0
        self.busy_time = 0
        #: (time-ordered) sizes of each delivered batch, for merge audits.
        self.batch_sizes: list[int] = []

    def submit(self, requests: list[Any]):
        """Deliver a batch of requests over the connection (generator).

        Called from a client thread: ``yield from server.submit(batch)``.
        Charges the full transaction cost to the caller.  Any
        :class:`QueryRequest` in the batch produces a reply event on the
        connection.
        """
        cost = self.flush_overhead + len(requests) * self.per_request
        yield Compute(cost)
        self.flushes += 1
        self.requests_received += len(requests)
        self.busy_time += cost
        self.batch_sizes.append(len(requests))
        for request in requests:
            if isinstance(request, QueryRequest) and self.events is not None:
                self.replies_sent += 1
                self.events.post(("reply", request.name, request.token))

    def submit_one(self, request: Any):
        """Unbatched submission — the baseline the slack process beats."""
        yield from self.submit([request])

    def deliver_event(self, event: Any) -> None:
        """Server-side: push an input event to the client connection.

        Host/event-context call (e.g. from a workload's ``post_at``).
        """
        if self.events is None:
            raise ValueError("server has no event connection attached")
        self.events.post(event)

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    def __repr__(self) -> str:
        return (
            f"<XServer flushes={self.flushes} requests={self.requests_received} "
            f"mean_batch={self.mean_batch_size:.2f}>"
        )
