"""Xl: the from-scratch multi-threaded X client library of Section 5.6.

"Xl introduced a new serializing thread that was associated with the I/O
connection.  The job of this thread was solely to read from the I/O
connection and dispatch events to waiting threads."  Benefits the paper
lists, all reproduced here:

* "the client timeout is handled perfectly by the condition variable
  timeout mechanism" — GetEvent is a CV-timed queue get, no library mutex
  held while blocked;
* "priority inversion can only occur during the short time period when a
  low-priority thread checks to see if there are events on the input
  queue" — the only lock is the event queue's, held for a dequeue;
* "there is no need to couple the input and output together.  The reading
  thread can block indefinitely and other mechanisms such as an explicit
  flush by clients or a periodic timeout by a maintenance thread ensure
  that output gets flushed in a timely manner";
* graphics batching via the slack process, making the server connection
  asynchronous.
"""

from __future__ import annotations

from typing import Any

from repro.kernel.channel import Channel
from repro.kernel.primitives import Channelreceive, Pause
from repro.kernel.simtime import msec
from repro.paradigms.slack import GATHER_YBNTM, SlackProcess
from repro.sync.queues import UnboundedQueue
from repro.xwindows.server import XServer


class XlClient:
    """The Xl library: reader thread + slack-process output batching."""

    def __init__(
        self,
        server: XServer,
        connection: Channel,
        *,
        strategy: str = GATHER_YBNTM,
        maintenance_period: int = msec(250),
    ) -> None:
        self.server = server
        self.connection = connection
        self.maintenance_period = maintenance_period
        #: Dispatched input events, consumed by GetEvent with CV timeouts.
        self.event_queue = UnboundedQueue("Xl.events")
        #: Output batching: imaging threads put requests here.
        self.out_queue = UnboundedQueue("Xl.requests")
        self._slack = SlackProcess(
            "Xl.buffer",
            self.out_queue,
            self._deliver,
            strategy=strategy,
        )
        self.events_dispatched = 0
        self.maintenance_flushes = 0

    # -- thread bodies -------------------------------------------------------

    def reader_proc(self):
        """The serializing reader thread: blocks indefinitely on the
        connection, dispatches each event — its whole job."""
        while True:
            event = yield Channelreceive(self.connection)  # no timeout
            self.events_dispatched += 1
            yield from self.event_queue.put(event)

    def buffer_proc(self):
        """The slack-process output thread (asynchronous connection)."""
        yield from self._slack.proc()

    def maintenance_proc(self):
        """The timeliness safety net: flush requests the buffer thread
        has left sitting for a full period — "a periodic timeout by a
        maintenance thread ensure[s] that output gets flushed in a
        timely manner".  It must not race the buffer for fresh bursts,
        so it only acts on items it already saw last period."""
        seen: set[int] = set()
        while True:
            yield Pause(self.maintenance_period)
            stale = [item for item in self.out_queue.items if id(item) in seen]
            seen = {id(item) for item in self.out_queue.items}
            if stale:
                pending = yield from self.out_queue.get_all()
                if pending:
                    self.maintenance_flushes += 1
                    yield from self.server.submit(pending)

    def threads(self) -> list[tuple[Any, str, int]]:
        """(proc, name, priority) for the library's three service threads.

        The reader is a serializer on the critical input path (high
        priority); the buffer and maintenance threads are helpers.
        """
        return [
            (self.reader_proc, "Xl.reader", 5),
            # The buffer thread sits *below* client threads: it gathers
            # whole bursts while painters run and flushes when they rest —
            # the §5.2 lesson applied (no high-priority slack process).
            (self.buffer_proc, "Xl.buffer", 3),
            (self.maintenance_proc, "Xl.maintenance", 3),
        ]

    # -- client API ------------------------------------------------------------

    def paint(self, request: Any):
        """Queue a graphics request (generator); the slack process batches
        and merges before the server sees it."""
        yield from self.out_queue.put(request)

    def get_event(self, timeout: int | None = None):
        """GetEvent: a CV-timed dequeue — the clean timeout story
        (generator; returns None on timeout)."""
        event = yield from self.event_queue.get(timeout)
        return event

    # -- internals ----------------------------------------------------------

    def _deliver(self, batch: list[Any]):
        yield from self.server.submit(batch)

    @property
    def slack(self) -> SlackProcess:
        return self._slack
