"""The §5.2 buffer thread: a slack process in front of the X server.

"In one of our systems, the batching is performed using the slack process
paradigm embodied in a high priority thread.  The buffer thread
accumulates paint requests, merges overlapping requests and sends them
only occasionally to the X server.  In the usual producer-consumer style,
an imaging thread puts paint requests on a queue for the buffer thread and
issues a NOTIFY to wake it up."

This module just wires :class:`repro.paradigms.slack.SlackProcess` to an
:class:`repro.xwindows.server.XServer`; the gather *strategy* (plain
YIELD vs YieldButNotToMe vs sleep) is the experimental variable of case
studies C1 and C2.
"""

from __future__ import annotations

from typing import Any

from repro.paradigms.slack import SlackProcess
from repro.sync.queues import UnboundedQueue


class PaintRequest:
    """A paint request for a screen region.

    Requests for the same ``region`` overlap: a later one supersedes an
    earlier one, which is what lets the buffer thread merge.
    """

    __slots__ = ("region", "payload", "issued_at")

    def __init__(self, region: Any, payload: Any = None, issued_at: int = 0) -> None:
        self.region = region
        self.payload = payload
        self.issued_at = issued_at

    @property
    def key(self) -> Any:
        """Merge key (read by :func:`merge_keep_latest`)."""
        return self.region

    def __repr__(self) -> str:
        return f"<Paint {self.region!r}@{self.issued_at}>"


def make_buffer_thread(
    server: Any,
    *,
    strategy: str,
    name: str = "buffer",
    gather_rounds: int = 1,
    sleep_interval: int = 0,
) -> tuple[UnboundedQueue, SlackProcess]:
    """Build the §5.2 buffer thread.

    Returns ``(queue, slack)``: imaging threads ``yield from
    queue.put(PaintRequest(...))``; fork ``slack.proc`` (traditionally at
    high priority — the choice that caused all the trouble).
    """
    queue = UnboundedQueue(f"{name}.requests")

    def deliver(batch: list[Any]):
        yield from server.submit(batch)

    slack = SlackProcess(
        name,
        queue,
        deliver,
        strategy=strategy,
        gather_rounds=gather_rounds,
        sleep_interval=sleep_interval,
    )
    return queue, slack
