"""The thread-safe-ified Xlib of Section 5.6.

"One approach uses Xlib, modified only to make it thread-safe.  ...  the
modified Xlib allowed any client thread to do the read with a monitor lock
on the library providing serialization.  There were two problems with
this: priority inversion and honoring the clients' timeout parameter on
the GetEvent routine.  When a client thread blocks on the read call it
holds the library mutex.  ...  Therefore, each read had to be done with a
short timeout after which the mutex was released, allowing other threads
to continue."

And the flush coupling: "The X specification requires that the output
queue be flushed whenever a read is done on the input stream.  The
modified Xlib retained this behavior, but the short timeout on the read
operations ... caused an excessive number of output flushes, defeating
the throughput gains of batching requests."

Both pathologies are modelled faithfully so the Xlib-vs-Xl case study can
measure them: reads hold the library mutex (the inversion window), retry
on a short timeout, and flush the output queue before every read attempt.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.kernel.channel import Channel
from repro.kernel.primitives import Channelreceive, Enter, Exit
from repro.kernel.simtime import msec
from repro.sync.monitor import Monitor
from repro.xwindows.server import XServer


class ModifiedXlib:
    """Xlib with one library mutex bolted on."""

    def __init__(
        self,
        server: XServer,
        connection: Channel,
        *,
        read_timeout: int = msec(50),
        flush_before_read: bool = True,
    ) -> None:
        self.server = server
        self.connection = connection
        self.read_timeout = read_timeout
        #: The X-spec rule.  Turning it off demonstrates *why* it exists:
        #: a query sitting unflushed while its issuer waits for the reply
        #: hangs the client ("any commands that might trigger a response
        #: [must be] delivered to the server before the client waits").
        self.flush_before_read = flush_before_read
        self.lock = Monitor("Xlib")
        self.out_queue: deque[Any] = deque()
        self.event_queue: deque[Any] = deque()
        self.flushes = 0
        self.read_attempts = 0
        #: Reads that timed out and had to release/retry the mutex.
        self.read_retries = 0

    # -- output side -------------------------------------------------------

    def queue_request(self, request: Any):
        """Queue an output request (generator).  Batching happens "on a
        higher level"; the library just accumulates."""
        yield Enter(self.lock)
        try:
            self.out_queue.append(request)
        finally:
            yield Exit(self.lock)

    def flush(self):
        """Explicit flush, triggered by "external knowledge of when the
        painting is finished" (generator)."""
        yield Enter(self.lock)
        try:
            yield from self._flush_locked()
        finally:
            yield Exit(self.lock)

    def _flush_locked(self):
        if self.out_queue:
            batch = list(self.out_queue)
            self.out_queue.clear()
            self.flushes += 1
            yield from self.server.submit(batch)

    # -- input side ----------------------------------------------------------

    def get_event(self, timeout: int | None = None):
        """GetEvent with a client timeout (generator).

        The client's timeout cannot be honoured directly — "it is not
        possible for other threads to timeout on their attempt to obtain
        the library mutex" — so the read loops on a short internal
        timeout, releasing the mutex between attempts.  Returns an event,
        or None once the client timeout has elapsed.
        """
        waited = 0
        while True:
            yield Enter(self.lock)
            try:
                if self.event_queue:
                    return self.event_queue.popleft()
                # "The X specification requires that the output queue be
                # flushed whenever a read is done on the input stream."
                if self.flush_before_read:
                    yield from self._flush_locked()
                self.read_attempts += 1
                # The inversion window: we block on the connection while
                # holding the library mutex.
                event = yield Channelreceive(
                    self.connection, timeout=self.read_timeout
                )
                if event is not None:
                    return event
                self.read_retries += 1
            finally:
                yield Exit(self.lock)
            # Releasing the mutex is the point of the short timeout —
            # "allowing other threads to continue" — so the retry loop
            # must actually let them run before re-acquiring.
            from repro.kernel.primitives import Yield

            yield Yield()
            waited += self.read_timeout
            if timeout is not None and waited >= timeout:
                return None
