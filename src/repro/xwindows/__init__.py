"""Simulated X windows substrate (paper Sections 5.2 and 5.6).

* :mod:`server` — an X server modelled by its cost structure: a high
  per-flush transaction cost plus a smaller per-request cost, which is
  what makes batching and merging pay;
* :mod:`buffer_thread` — the §5.2 slack process that batches paint
  requests on their way to the server;
* :mod:`xlib` — "Xlib, modified only to make it thread-safe": one library
  mutex, reads done with short timeouts while holding it;
* :mod:`xl` — "Xl, an X client library designed from scratch with
  multi-threading in mind": a dedicated reader serializer thread.
"""

from repro.xwindows.buffer_thread import PaintRequest, make_buffer_thread
from repro.xwindows.server import XServer
from repro.xwindows.xl import XlClient
from repro.xwindows.xlib import ModifiedXlib

__all__ = [
    "ModifiedXlib",
    "PaintRequest",
    "XServer",
    "XlClient",
    "make_buffer_thread",
]
