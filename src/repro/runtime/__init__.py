"""PCR runtime facade: world assembly and system daemons."""

from repro.runtime.daemon import SYSTEM_DAEMON_PRIORITY, install_system_daemon
from repro.runtime.pcr import World

__all__ = ["SYSTEM_DAEMON_PRIORITY", "World", "install_system_daemon"]
