"""The SystemDaemon (Section 6.2).

"PCR utilizes a high-priority sleeper thread (which we call the
SystemDaemon) that regularly wakes up and donates, using a directed yield,
a small timeslice to another thread chosen at random.  In this way we
ensure that all ready threads get some cpu resource, regardless of their
priorities."

The daemon is the second of the paper's two priority-inversion
workarounds; the priority-inversion case study runs the Birrell scenario
with and without it.  "In both systems, priority level 6 gets used by the
system daemon that does proportional scheduling."
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernel.primitives import DirectedYield, Pause
from repro.kernel.simtime import msec

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import SimThread

SYSTEM_DAEMON_PRIORITY = 6
DEFAULT_DAEMON_PERIOD = msec(200)


def system_daemon_proc(kernel: "Kernel", period: int):
    """Thread body: sleep, pick a random ready thread, donate a slice.

    The donation lasts until the next scheduler tick (directed-yield
    semantics), so each beneficiary gets at most the remainder of a
    quantum — "a small timeslice".
    """
    while True:
        yield Pause(period)
        ready = kernel.scheduler.ready_threads()
        if ready:
            target = kernel.rng.choice(ready)
            yield DirectedYield(target)


def install_system_daemon(
    kernel: "Kernel",
    *,
    period: int = DEFAULT_DAEMON_PERIOD,
    priority: int = SYSTEM_DAEMON_PRIORITY,
) -> "SimThread":
    """Fork the SystemDaemon into a kernel; returns its thread."""
    return kernel.fork_root(
        system_daemon_proc,
        args=(kernel, period),
        name="SystemDaemon",
        priority=priority,
        role="eternal",
    )
