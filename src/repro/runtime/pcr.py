"""World: assembling a thread population on a kernel.

A *world* in Cedar terminology is one running image — its eternal threads,
its daemons, its devices.  This facade keeps workload code declarative:

    world = World(KernelConfig(seed=3))
    world.add_eternal(cursor_blinker, name="BlinkCursor", priority=5)
    keyboard = world.add_device("keyboard")
    world.install_daemon()
    world.run_for(sec(30))

It also carries the measurement-window helpers the Table 1-3 analyses
use: ``begin_measurement`` snapshots the counters and clears the
distinct-use sets after warm-up; ``end_measurement`` returns a
:class:`WindowStats`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.kernel.channel import Channel
from repro.kernel.config import DEFAULT_PRIORITY, KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.stats import Snapshot, WindowStats
from repro.kernel.thread import SimThread
from repro.runtime.daemon import install_system_daemon


class World:
    """One simulated Cedar/GVX-style world."""

    def __init__(self, config: KernelConfig | None = None) -> None:
        self.kernel = Kernel(config)
        self.eternal_threads: list[SimThread] = []
        self.devices: dict[str, Channel] = {}
        self._window_start: tuple[int, Snapshot] | None = None

    # -- population -------------------------------------------------------

    def add_eternal(
        self,
        proc: Callable[..., Any],
        args: tuple = (),
        *,
        name: str,
        priority: int = DEFAULT_PRIORITY,
    ) -> SimThread:
        """An eternal thread: "repeatedly waited on a condition variable
        and then ran briefly before waiting again" (Section 3)."""
        thread = self.kernel.fork_root(
            proc, args, name=name, priority=priority, role="eternal"
        )
        self.eternal_threads.append(thread)
        return thread

    def add_worker(
        self,
        proc: Callable[..., Any],
        args: tuple = (),
        *,
        name: str,
        priority: int = DEFAULT_PRIORITY,
    ) -> SimThread:
        """A worker thread "forked to perform some activity, such as
        formatting a document"."""
        return self.kernel.fork_root(
            proc, args, name=name, priority=priority, role="worker"
        )

    def add_device(self, name: str) -> Channel:
        """A device channel (keyboard, mouse, network, display socket)."""
        channel = self.kernel.channel(name)
        self.devices[name] = channel
        return channel

    def install_daemon(self, **kwargs: Any) -> SimThread:
        """Install the SystemDaemon (priority 6 proportional scheduling)."""
        thread = install_system_daemon(self.kernel, **kwargs)
        self.eternal_threads.append(thread)
        return thread

    # -- running and measuring ---------------------------------------------

    def run_for(self, duration: int, **kwargs: Any) -> int:
        return self.kernel.run_for(duration, **kwargs)

    def begin_measurement(self) -> None:
        """Start a stats window; clears the Table-3 distinct-use sets."""
        self.kernel.stats.clear_distinct()
        self._window_start = (self.kernel.now, self.kernel.stats.snapshot())

    def end_measurement(self) -> WindowStats:
        """Close the window opened by :meth:`begin_measurement`."""
        if self._window_start is None:
            raise RuntimeError("begin_measurement was never called")
        start_time, start_snap = self._window_start
        self._window_start = None
        end_snap = self.kernel.stats.snapshot()
        window = WindowStats(duration=self.kernel.now - start_time)
        window.counts = end_snap.delta(start_snap)
        # Distinct counts are within-window absolutes, not deltas, because
        # begin_measurement cleared the sets.
        window.counts["monitors_used"] = len(self.kernel.stats.monitors_used)
        window.counts["cvs_used"] = len(self.kernel.stats.cvs_used)
        return window

    def shutdown(self) -> None:
        self.kernel.shutdown()

    def __enter__(self) -> "World":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
