"""Command-line interface: ``python -m repro <command>``.

Each command regenerates one of the paper's artifacts and prints the
paper-vs-measured comparison — the same code paths the benchmarks use,
packaged for interactive exploration.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable


def _cmd_tables(args: argparse.Namespace) -> None:
    from repro.analysis import dynamic
    from repro.analysis.report import format_table

    systems = [args.system] if args.system else ["Cedar", "GVX"]
    for system in systems:
        results = dynamic.measure_all(system, seed=args.seed)
        rows = []
        for result in results:
            paper = dynamic.paper_row(system, result.activity)
            rows.append(
                [
                    result.activity,
                    f"{paper.forks_per_sec:g}/{result.forks_per_sec:.1f}",
                    f"{paper.switches_per_sec:g}/{result.switches_per_sec:.0f}",
                    f"{paper.waits_per_sec:g}/{result.waits_per_sec:.0f}",
                    f"{100 * paper.timeout_fraction:.0f}/{100 * result.timeout_fraction:.0f}",
                    f"{paper.ml_enters_per_sec:g}/{result.ml_enters_per_sec:.0f}",
                    f"{paper.distinct_cvs}/{result.distinct_cvs}",
                    f"{paper.distinct_mls}/{result.distinct_mls}",
                ]
            )
        print(
            format_table(
                f"{system}: Tables 1-3 (paper/measured)",
                ["activity", "forks/s", "switch/s", "waits/s", "tmo%",
                 "ML/s", "#CVs", "#MLs"],
                rows,
            )
        )
        print()


def _cmd_census(args: argparse.Namespace) -> None:
    from repro.analysis.classifier import accuracy, census
    from repro.analysis.report import format_table
    from repro.corpus import cedar_corpus, gvx_corpus
    from repro.corpus.model import PAPER_TABLE4, PARADIGMS

    for name, corpus in (
        ("Cedar", cedar_corpus(args.seed)), ("GVX", gvx_corpus(args.seed))
    ):
        result = census(corpus, name)
        rows = [
            [paradigm, PAPER_TABLE4[name][paradigm], result.counts[paradigm]]
            for paradigm in PARADIGMS
        ]
        print(
            format_table(
                f"Table 4 ({name}), accuracy {accuracy(corpus):.1%}",
                ["paradigm", "paper", "recovered"],
                rows,
            )
        )
        print()


def _cmd_ybntm(args: argparse.Namespace) -> None:
    from repro.casestudies.ybntm import run_comparison

    comparison = run_comparison(seed=args.seed)
    plain, fixed = comparison.plain_yield, comparison.ybntm
    print("plain YIELD     :", plain.flushes, "flushes, batch",
          f"{plain.mean_batch:.1f}, server {plain.server_busy / 1000:.1f} ms")
    print("YieldButNotToMe :", fixed.flushes, "flushes, batch",
          f"{fixed.mean_batch:.1f}, server {fixed.server_busy / 1000:.1f} ms")
    print(f"server-work reduction: {comparison.server_work_reduction:.2f}x "
          "(paper: 'about a three-fold performance improvement')")


def _cmd_quantum(args: argparse.Namespace) -> None:
    from repro.casestudies.quantum import sweep_quantum

    for strategy in ("ybntm", "sleep"):
        sweep = sweep_quantum(strategy, seed=args.seed)
        print(f"strategy={strategy}")
        for quantum, result in sweep.results.items():
            print(f"  quantum {quantum / 1000:>6g} ms: "
                  f"echo {result.mean_latency / 1000:>6.1f} ms, "
                  f"batch {result.mean_batch:.2f}, "
                  f"{result.flushes} flushes")


def _cmd_spurious(args: argparse.Namespace) -> None:
    from repro.casestudies.spurious import run_comparison

    for semantics, result in run_comparison(seed=args.seed).items():
        print(f"{semantics:<10} spurious={result.spurious_conflicts:<4} "
              f"switches={result.switches}")


def _cmd_inversion(args: argparse.Namespace) -> None:
    from repro.casestudies.inversion import run_all_variants

    for variant, result in run_all_variants(seed=args.seed).items():
        outcome = (
            "starved" if result.blocked_for is None
            else f"unblocked after {result.blocked_for / 1000:.0f} ms"
        )
        print(f"{variant:<20} {outcome}")


def _cmd_xclients(args: argparse.Namespace) -> None:
    from repro.casestudies.xclients import run_comparison

    for library, result in run_comparison(seed=args.seed).items():
        print(f"{library:<6} flushes={result.flushes:<3} "
              f"shipped={result.requests_shipped:<3} "
              f"contention-blocks={result.lock_contention_blocks:<3} "
              f"painted-at={result.painting_done_at / 1000:.0f}ms")


def _cmd_weakmem(args: argparse.Namespace) -> None:
    from repro.casestudies.weakmem import run_init_once, run_publication

    for order, monitored in (("strong", False), ("weak", False), ("weak", True)):
        result = run_publication(memory_order=order, monitored=monitored,
                                 seed=args.seed)
        label = f"{order}{'+monitor' if monitored else ''}"
        print(f"publication {label:<14} torn reads: {result.torn_reads}/50")
    weak = sum(run_init_once(memory_order="weak", seed=s).saw_uninitialised
               for s in range(20))
    print(f"init-once under weak ordering: hazard in {weak}/20 seeds")


def _cmd_races(args: argparse.Namespace) -> None:
    """Run the §5.5 hazards and both workloads under the race detector."""
    from repro.analysis.report import format_table
    from repro.casestudies.spurious import run_producer_consumer
    from repro.casestudies.weakmem import run_init_once, run_publication
    from repro.kernel.config import KernelConfig
    from repro.kernel.simtime import sec
    from repro.workloads.cedar import build_cedar_world
    from repro.workloads.gvx import build_gvx_world

    rows = []
    detailed = []

    def add(label, races, lockset_only):
        rows.append([label, len(races), len(lockset_only),
                     "RACY" if races else "clean"])
        detailed.extend(races)

    for monitored in (False, True):
        result = run_publication(memory_order="weak", monitored=monitored,
                                 seed=args.seed, race_detection=True)
        races = [r for r in result.race_reports if r.hb_race]
        benign = [r for r in result.race_reports if not r.hb_race]
        add(f"publication weak{'+monitor' if monitored else ''}", races, benign)

    for fenced in (False, True):
        result = run_init_once(memory_order="weak", fenced=fenced,
                               seed=args.seed, race_detection=True)
        races = [r for r in result.race_reports if r.hb_race]
        benign = [r for r in result.race_reports if not r.hb_race]
        add(f"init-once weak{'+fence' if fenced else ''}", races, benign)

    result = run_producer_consumer(notify_semantics="deferred",
                                   seed=args.seed, race_detection=True)
    races = [r for r in result.race_reports if r.hb_race]
    benign = [r for r in result.race_reports if not r.hb_race]
    add("producer/consumer (monitored)", races, benign)

    for label, builder in (("Cedar", build_cedar_world),
                           ("GVX", build_gvx_world)):
        world, _context = builder(
            KernelConfig(seed=args.seed, race_detection=True)
        )
        world.run_for(sec(2))
        detector = world.kernel.race_detector
        add(f"{label} world (2 s)", detector.races, detector.lockset_only)
        world.shutdown()

    print(format_table(
        "Race detector (Eraser lockset + happens-before)",
        ["workload", "races", "lockset-only", "verdict"],
        rows,
    ))
    if detailed:
        print()
        for report in detailed[:8]:
            print(report.describe())
        if len(detailed) > 8:
            print(f"... and {len(detailed) - 8} more")


def _cmd_adaptive(args: argparse.Namespace) -> None:
    from repro.extensions.adaptive_timeout import run_generations

    for generation, pair in run_generations().items():
        for policy, result in pair.items():
            detect = (result.crash_detection_time or 0) / 1000
            print(f"{generation:<9} {policy:<9} "
                  f"spurious={result.spurious_timeouts:<3} "
                  f"crash-detect={detect:.0f}ms "
                  f"final-timeout={result.final_timeout / 1000:.0f}ms")


def _cmd_fairshare(args: argparse.Namespace) -> None:
    from repro.extensions.fair_share import run_tradeoff

    for policy, stats in run_tradeoff().items():
        acquired = stats["inversion_acquired_at"]
        inversion = ("starved" if acquired is None
                     else f"{acquired / 1000:.0f} ms")
        print(f"{policy:<11} inversion={inversion:<10} "
              f"echo mean={stats['echo_mean'] / 1000:.2f} ms "
              f"max={stats['echo_max'] / 1000:.2f} ms")


def _cmd_chaos(args: argparse.Namespace) -> None:
    """Seeded fault-injection sweep with the waits-for watchdog on."""
    import os

    from repro.analysis.chaos import run_sweep, write_report

    runs = 4 if args.smoke else args.runs
    scenarios = None
    if args.scenario:
        scenarios = tuple(
            part.strip() for part in args.scenario.split(",") if part.strip()
        )
    report = run_sweep(
        seed=args.seed,
        runs=runs,
        check_golden=not args.skip_golden,
        progress=print,
        # With an output path, failing runs save their decision traces
        # next to the report for ``repro explore --replay``.
        trace_dir=os.path.dirname(os.path.abspath(args.output))
        if args.output else None,
        scenarios=scenarios,
    )
    summary = report["summary"]
    print(
        f"\n{summary['total']} runs, {summary['faults_injected']} faults "
        f"injected, {summary['deadlocks_detected']} partial deadlocks "
        f"detected, {summary['failed']} invariant failures"
    )
    if not args.skip_golden:
        golden = report["golden"]
        verdict = "match" if golden["ok"] else f"DIVERGED: {golden['mismatches']}"
        print(f"faults-off golden hashes ({golden['scenarios']} scenarios): "
              f"{verdict}")
    if args.output:
        write_report(report, args.output)
        print(f"wrote report to {args.output}")
    if not report["ok"]:
        raise SystemExit(1)


def _cmd_explore(args: argparse.Namespace) -> None:
    """Systematic schedule exploration with counterexample minimization."""
    import json
    import os

    from repro.explore import (
        SCENARIOS,
        DecisionTrace,
        explore,
        make_strategy,
        replay,
        resolve,
    )

    if args.replay:
        trace = DecisionTrace.load(args.replay)
        name = trace.meta.get("scenario", "")
        seed = int(trace.meta.get("seed", args.seed))
        scenario = SCENARIOS.get(name) or _chaos_as_explore_scenario(
            name, trace.meta
        )
        if scenario is None:
            print(f"trace names unknown scenario {name!r}", file=sys.stderr)
            raise SystemExit(1)
        outcome = replay(scenario, trace.choices, seed=seed)
        print(outcome.trace.render())
        if outcome.violation is not None:
            print(f"violation: {outcome.violation}")
        expected = trace.meta.get("trace_hash")
        actual = outcome.fingerprint.get("trace")
        if expected and expected != actual:
            print(f"REPLAY DIVERGED: trace hash {actual} != recorded "
                  f"{expected}")
            raise SystemExit(1)
        if trace.meta.get("violation") and outcome.violation is None:
            print("REPLAY DID NOT REPRODUCE the recorded violation")
            raise SystemExit(1)
        print("replay ok" + (" (trace hash verified)" if expected else ""))
        return

    results = []
    all_ok = True
    for scenario in resolve(args.scenario):
        strategy = make_strategy(args.strategy, seed=args.seed)
        result = explore(
            scenario, strategy, budget=args.budget, seed=args.seed,
            progress=print,
        )
        entry = result.to_dict()
        if result.minimized is not None and args.output:
            minimized = result.minimized
            trace = minimized.outcome.trace
            trace.meta.update(
                scenario=scenario.name,
                seed=minimized.seed,
                violation=minimized.violation,
                trace_hash=minimized.replay_hash.get("trace"),
            )
            out_dir = os.path.dirname(os.path.abspath(args.output))
            path = os.path.join(
                out_dir, f"explore-{scenario.name}.trace.json"
            )
            trace.save(path)
            entry["trace_path"] = path
            print(f"{scenario.name}: minimal trace -> {path}")
        results.append(entry)
        all_ok = all_ok and result.ok
    report = {
        "seed": args.seed,
        "strategy": args.strategy,
        "budget": args.budget,
        "scenarios": results,
        "ok": all_ok,
    }
    found = sum(1 for r in results if "found_at" in r)
    print(f"\n{len(results)} scenarios explored, {found} violations found "
          f"and minimized: {'ok' if all_ok else 'FAILED'}")
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote report to {args.output}")
    if not all_ok:
        raise SystemExit(1)


def _cmd_litmus(args: argparse.Namespace) -> None:
    """Enumerate litmus-test outcomes per memory model (Section 5.5)."""
    import json
    import os

    from repro.explore import replay
    from repro.memmodel.litmus import (
        LITMUS_TESTS,
        MODELS,
        default_plan,
        enumerate_litmus,
        litmus_scenario,
    )

    if args.replay:
        from repro.explore import DecisionTrace

        trace = DecisionTrace.load(args.replay)
        test_name = trace.meta.get("test", "")
        model = trace.meta.get("model", "")
        if test_name not in LITMUS_TESTS or model not in MODELS:
            print(f"trace names unknown litmus pair {test_name!r}/{model!r}",
                  file=sys.stderr)
            raise SystemExit(1)
        scenario, state = litmus_scenario(test_name, model)
        seed = int(trace.meta.get("seed", args.seed))
        outcome = replay(scenario, trace.choices, seed=seed)
        print(outcome.trace.render())
        registers = state.get("outcome")
        print(f"litmus {test_name}/{model} outcome: {registers}")
        failed = False
        expected_hash = trace.meta.get("trace_hash")
        if expected_hash and expected_hash != outcome.fingerprint.get("trace"):
            print(f"REPLAY DIVERGED: trace hash "
                  f"{outcome.fingerprint.get('trace')} != recorded "
                  f"{expected_hash}")
            failed = True
        recorded = trace.meta.get("outcome")
        if recorded is not None and tuple(recorded) != registers:
            print(f"REPLAY DID NOT REPRODUCE the recorded outcome "
                  f"{tuple(recorded)}")
            failed = True
        if failed:
            raise SystemExit(1)
        print("replay ok"
              + (" (trace hash verified)" if expected_hash else ""))
        return

    tests = (list(LITMUS_TESTS) if args.test == "all"
             else [part.strip() for part in args.test.split(",") if part.strip()])
    models = (list(MODELS) if args.model == "all"
              else [part.strip() for part in args.model.split(",") if part.strip()])
    unknown = [t for t in tests if t not in LITMUS_TESTS]
    unknown += [m for m in models if m not in MODELS]
    if unknown:
        print(f"unknown test/model selector(s): {unknown}; tests: "
              f"{sorted(LITMUS_TESTS)}, models: {list(MODELS)}",
              file=sys.stderr)
        raise SystemExit(1)

    pairs = []
    all_ok = True
    for test_name in tests:
        test = LITMUS_TESTS[test_name]
        for model in models:
            strategy, budget = default_plan(test_name, model)
            if args.strategy:
                strategy = args.strategy
            if args.budget:
                budget = args.budget
            result = enumerate_litmus(
                test_name, model, strategy=strategy, budget=budget,
                seed=args.seed,
            )
            sound = not result.forbidden and not result.harness_failures
            complete = result.reached == result.expected
            entry = result.to_dict()
            entry["complete"] = complete
            coverage = ("exhausted" if result.exhausted
                        else f"sampled {result.runs}")
            relaxed = sorted(test.relaxed_outcomes(model) & result.reached)
            beyond = (f"  beyond-SC: {relaxed}" if relaxed else "")
            verdict = ("ok" if sound and complete else
                       "UNSOUND" if not sound else "INCOMPLETE")
            print(f"{test_name:>5}/{model:<4} {strategy:>10} "
                  f"({coverage:>14})  reached {len(result.reached):>2}"
                  f"/{len(result.expected):>2} pinned outcomes"
                  f"{beyond}  -> {verdict}")
            if not sound:
                for registers, violation in result.forbidden:
                    print(f"       forbidden outcome {registers}: {violation}")
            if not complete:
                print(f"       missing: {sorted(result.expected - result.reached)}")
            if args.trace_dir:
                os.makedirs(args.trace_dir, exist_ok=True)
                saved = []
                for registers in relaxed:
                    witness = result.witnesses[registers]
                    witness.trace.meta.update(
                        scenario=f"litmus-{test_name}-{model}",
                        test=test_name,
                        model=model,
                        outcome=list(registers),
                        seed=witness.seed,
                        trace_hash=witness.fingerprint.get("trace"),
                    )
                    tag = "".join(str(bit) for bit in registers)
                    path = os.path.join(
                        args.trace_dir,
                        f"litmus-{test_name}-{model}-{tag}.trace.json",
                    )
                    witness.trace.save(path)
                    saved.append(path)
                    print(f"       witness {registers} -> {path}")
                entry["witness_paths"] = saved
            pairs.append(entry)
            all_ok = all_ok and sound and complete
    print(f"\n{len(pairs)} litmus pairs: "
          f"{'all reachable sets match the pins' if all_ok else 'FAILED'}")
    if args.output:
        report = {"seed": args.seed, "pairs": pairs, "ok": all_ok}
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote report to {args.output}")
    if not all_ok:
        raise SystemExit(1)


def _chaos_as_explore_scenario(name: str, meta: dict):
    """Wrap a chaos scenario so a saved chaos trace can be replayed."""
    from repro.analysis.chaos import (
        CHAOS_RUN,
        DIRECTED_SCENARIOS,
        SWEEP_SCENARIOS,
    )
    from repro.analysis.faults import FaultPlan
    from repro.explore import ExploreScenario

    for chaos_scenario in DIRECTED_SCENARIOS + SWEEP_SCENARIOS:
        if chaos_scenario.name == name:
            break
    else:
        return None
    plan_kwargs = dict(meta.get("plan", {}))
    plan_kwargs["kill_immune"] = tuple(meta.get("kill_immune", ()))
    return ExploreScenario(
        name=name,
        build=chaos_scenario.build,
        horizon=CHAOS_RUN,
        plan=FaultPlan(**plan_kwargs),
        expect_violation=False,
        check=lambda kernel: None,
    )


def _cmd_serve(args: argparse.Namespace) -> None:
    """Run the multi-tenant RPC server world and print the SLO report."""
    import json

    from repro.analysis.report import format_server_report
    from repro.kernel.simtime import msec
    from repro.server.world import run_server

    report = run_server(
        seed=args.seed,
        scenario=args.scenario,
        workers=args.workers,
        policy=args.policy,
        admission_capacity=args.capacity,
        duration=msec(args.duration_ms),
    )
    print(format_server_report(report.to_dict()))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote JSON report to {args.output}")


def _cmd_cluster(args: argparse.Namespace) -> None:
    """Run the sharded cluster world and print the SLO rollup."""
    import json

    from repro.analysis.report import format_cluster_report
    from repro.cluster.world import run_cluster
    from repro.kernel.simtime import msec

    if args.adapt_weights:
        from repro.cluster.feedback import adapt_weights

        result = adapt_weights(
            seed=args.seed,
            scenario=args.scenario,
            rounds=args.adapt_weights,
            duration=msec(args.duration_ms),
            shards=args.shards,
            workers_per_shard=args.workers_per_shard,
            policy=args.policy,
            admission_capacity=args.capacity,
        )
        for index, entry in enumerate(result.history):
            weights = " ".join(
                f"{name}={w}" for name, w in sorted(entry["weights"].items())
            )
            attainment = " ".join(
                f"{name}={value:.3f}"
                for name, value in entry["attainment"].items()
            )
            print(f"round {index}: weights [{weights}]  "
                  f"attainment [{attainment}]")
        final = " ".join(
            f"{name}={w}" for name, w in sorted(result.weights.items())
        )
        verdict = "converged" if result.converged else "did NOT converge"
        print(f"{verdict} after {result.rounds_run} rounds: [{final}]")
        if args.output:
            with open(args.output, "w") as fh:
                json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
            print(f"wrote JSON report to {args.output}")
        return

    report = run_cluster(
        seed=args.seed,
        scenario=args.scenario,
        shards=args.shards,
        workers_per_shard=args.workers_per_shard,
        policy=args.policy,
        admission=args.admission,
        admission_capacity=args.capacity,
        duration=msec(args.duration_ms),
        replicas=args.replicas,
    )
    print(format_cluster_report(report.to_dict()))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote JSON report to {args.output}")


def _cmd_workload(args: argparse.Namespace) -> None:
    """Compile and run a million-client workload scenario."""
    import json

    from repro.analysis.report import format_workload_report
    from repro.kernel.simtime import msec
    from repro.workload import run_workload

    report = run_workload(
        seed=args.seed,
        scenario=args.scenario,
        single_flight=False if args.no_single_flight else None,
        duration=msec(args.duration_ms),
    )
    print(format_workload_report(report.to_dict()))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote JSON report to {args.output}")


def _cmd_trace(args: argparse.Namespace) -> None:
    """Run an idle Cedar world with tracing on and export artifacts."""
    from repro.analysis.chrome_trace import write_chrome_trace
    from repro.analysis.timeline import render_history
    from repro.kernel.config import KernelConfig
    from repro.kernel.simtime import msec, sec
    from repro.workloads.cedar import build_cedar_world

    config = KernelConfig(seed=args.seed, trace=True)
    world, _context = build_cedar_world(config)
    world.run_for(sec(2))
    print(render_history(world.kernel.tracer, start=sec(1),
                         end=sec(1) + msec(100)))
    if args.output:
        count = write_chrome_trace(world.kernel.tracer, args.output)
        print(f"\nwrote {count} Chrome trace events to {args.output} "
              "(open in chrome://tracing or ui.perfetto.dev)")
    world.shutdown()


_COMMANDS: dict[str, tuple[Callable, str]] = {
    "tables": (_cmd_tables, "regenerate Tables 1-3 (dynamic statistics)"),
    "census": (_cmd_census, "regenerate Table 4 (static paradigm census)"),
    "ybntm": (_cmd_ybntm, "the §5.2 YieldButNotToMe case study"),
    "quantum": (_cmd_quantum, "the §6.3 scheduler-quantum sweep"),
    "spurious": (_cmd_spurious, "the §6.1 spurious-lock-conflict study"),
    "inversion": (_cmd_inversion, "the §6.2 priority-inversion study"),
    "xclients": (_cmd_xclients, "the §5.6 Xlib-vs-Xl comparison"),
    "weakmem": (_cmd_weakmem, "the §5.5 weak-memory hazards"),
    "races": (_cmd_races, "dynamic race detection over the §5.5 hazards "
                          "and the Cedar/GVX workloads"),
    "adaptive": (_cmd_adaptive, "future work: adaptive timeouts"),
    "fairshare": (_cmd_fairshare, "future work: fair-share scheduling"),
    "chaos": (_cmd_chaos, "fault-injection sweep (stolen NOTIFYs, spurious "
                          "wakeups, FORK failures, kills, timer jitter) with "
                          "the waits-for watchdog and invariant checks"),
    "explore": (_cmd_explore, "systematic schedule exploration: search the "
                              "kernel's scheduling/fault decision space for "
                              "invariant violations and shrink each find to "
                              "a minimal replayable counterexample"),
    "litmus": (_cmd_litmus, "enumerate reachable outcomes of the classic "
                            "SB/MP/LB/IRIW litmus tests under the sc/tso/"
                            "pso memory models and check the pinned "
                            "expectation tables"),
    "serve": (_cmd_serve, "run the multi-tenant RPC server world and print "
                          "its latency-SLO report (p50/p95/p99/p999, "
                          "shed/timeout/retry counters, stats digest)"),
    "cluster": (_cmd_cluster, "run the sharded cluster world (balancer + "
                              "N shards) and print the merged SLO rollup "
                              "with per-shard health"),
    "workload": (_cmd_workload, "compile a million-client scenario "
                                "(diurnal curves, flash crowds, retry "
                                "storms, cache stampedes) and print the "
                                "per-tenant SLO-attainment report"),
    "trace": (_cmd_trace, "render a 100 ms event history; optionally "
                          "export a Chrome trace JSON"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Using Threads in Interactive Systems: "
            "A Case Study' (SOSP 1993)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="simulation seed (default 0)")
    parser.add_argument(
        "--no-raise-on-deadlock", action="store_true",
        help="on deadlock, print the waits-for diagnosis table and exit 1 "
             "instead of raising a traceback",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, (_handler, help_text) in _COMMANDS.items():
        sub = subparsers.add_parser(name, help=help_text)
        if name == "tables":
            sub.add_argument("system", nargs="?", choices=["Cedar", "GVX"],
                             help="limit to one system")
        if name == "trace":
            sub.add_argument("output", nargs="?",
                             help="Chrome trace JSON output path")
        if name == "serve":
            sub.add_argument("--scenario", default="steady",
                             choices=["steady", "overload"],
                             help="tenant mix (default steady)")
            sub.add_argument("--workers", type=int, default=4,
                             help="worker-pool size (default 4)")
            sub.add_argument("--policy", default="strict",
                             choices=["strict", "fair_share"],
                             help="scheduler policy (default strict)")
            sub.add_argument("--capacity", type=int, default=32,
                             help="admission queue capacity (default 32)")
            sub.add_argument("--duration-ms", type=int, default=2000,
                             help="simulated run length in ms (default 2000)")
            sub.add_argument("--output", default=None,
                             help="write the JSON report here")
        if name == "cluster":
            from repro.cluster import (
                ADMISSION_POLICIES,
                BALANCER_POLICIES,
                CLUSTER_SCENARIOS,
            )

            sub.add_argument("--scenario", default="steady",
                             choices=list(CLUSTER_SCENARIOS),
                             help="tenant mix (default steady)")
            sub.add_argument("--shards", type=int, default=2,
                             help="RPC-server shards (default 2)")
            sub.add_argument("--workers-per-shard", type=int, default=4,
                             help="worker pool per shard (default 4)")
            sub.add_argument("--policy", default="p2c",
                             choices=list(BALANCER_POLICIES),
                             help="balancer routing policy (default p2c)")
            sub.add_argument("--admission", default="wfq",
                             choices=list(ADMISSION_POLICIES),
                             help="balancer admission policy (default wfq)")
            sub.add_argument("--capacity", type=int, default=64,
                             help="balancer admission capacity (default 64)")
            sub.add_argument("--replicas", action="store_true",
                             help="pair every shard with a log-shipped "
                                  "replica and arm the balancer lease + "
                                  "standby")
            sub.add_argument("--duration-ms", type=int, default=2000,
                             help="simulated run length in ms (default 2000)")
            sub.add_argument("--adapt-weights", type=int, default=0,
                             metavar="ROUNDS",
                             help="instead of one run, close the SLO "
                                  "feedback loop: rerun up to ROUNDS times "
                                  "nudging WFQ weights until they settle")
            sub.add_argument("--output", default=None,
                             help="write the JSON report here")
        if name == "workload":
            from repro.workload import WORKLOAD_SCENARIOS

            sub.add_argument("--scenario", default="diurnal",
                             choices=list(WORKLOAD_SCENARIOS),
                             help="compiled scenario (default diurnal)")
            sub.add_argument("--duration-ms", type=int, default=2000,
                             help="simulated run length in ms (default 2000)")
            sub.add_argument("--no-single-flight", action="store_true",
                             help="disable the cache tier's single-flight "
                                  "guard (stampede mode)")
            sub.add_argument("--output", default=None,
                             help="write the JSON report here")
        if name == "explore":
            sub.add_argument("--scenario", default="directed",
                             help="scenario name, comma list, or a group: "
                                  "'directed', 'clean', 'all' "
                                  "(default directed)")
            sub.add_argument("--strategy", default="random",
                             choices=["random", "pct", "seeds", "exhaustive"],
                             help="schedule-generation strategy "
                                  "(default random)")
            sub.add_argument("--budget", type=int, default=200,
                             help="max schedules per scenario (default 200)")
            sub.add_argument("--replay", default=None, metavar="FILE",
                             help="replay a saved decision trace instead of "
                                  "exploring; verifies the recorded hash")
            sub.add_argument("--output", default=None,
                             help="write the JSON report here (minimal "
                                  "traces are saved alongside it)")
        if name == "litmus":
            sub.add_argument("--test", default="all",
                             help="litmus test name or comma list: sb, mp, "
                                  "lb, iriw (default all)")
            sub.add_argument("--model", default="all",
                             help="memory model or comma list: sc, tso, pso "
                                  "(default all)")
            sub.add_argument("--strategy", default=None,
                             choices=["random", "pct", "seeds", "exhaustive"],
                             help="override the per-pair default search "
                                  "(exhaustive; random for IRIW)")
            sub.add_argument("--budget", type=int, default=None,
                             help="override the per-pair schedule budget")
            sub.add_argument("--trace-dir", default=None, metavar="DIR",
                             help="save a replayable witness trace for every "
                                  "beyond-SC outcome reached")
            sub.add_argument("--replay", default=None, metavar="FILE",
                             help="replay a saved witness trace; verifies "
                                  "the recorded hash and outcome")
            sub.add_argument("--output", default=None,
                             help="write the JSON report here")
        if name == "chaos":
            sub.add_argument("--runs", type=int, default=14,
                             help="sampled fault-plan runs (default 14)")
            sub.add_argument("--scenario", default=None,
                             help="comma list restricting the directed "
                                  "scenarios (default: all of them)")
            sub.add_argument("--smoke", action="store_true",
                             help="quick fixed-size sweep for CI")
            sub.add_argument("--skip-golden", action="store_true",
                             help="skip the faults-off golden-hash check")
            sub.add_argument("--output", default=None,
                             help="write the JSON report here")
    args = parser.parse_args(argv)
    handler, _help = _COMMANDS[args.command]
    try:
        handler(args)
    except Exception as error:
        from repro.kernel.errors import Deadlock

        if not (args.no_raise_on_deadlock and isinstance(error, Deadlock)):
            raise
        from repro.analysis.watchdog import format_rows

        print("deadlock detected:", file=sys.stderr)
        if error.rows:
            print(format_rows(error.rows), file=sys.stderr)
        else:
            print(str(error), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
