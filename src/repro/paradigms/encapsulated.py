"""Encapsulated forks (Section 4.8): packages that capture paradigms.

"One way that our systems promote use of common thread paradigms is by
providing modules that encapsulate the paradigms."  The paper names three:
DelayedFork (a one-shot), PeriodicalFork (a repeating DelayedFork — the
sleeper paradigm "where the wakeups are prompted solely by the passage of
time"), and MBQueue (in :mod:`repro.paradigms.serializer`).

Also here: the *fork boolean* convention of Section 4.8's "Miscellaneous"
notes — "Many modules that do callbacks offer a fork boolean parameter in
their interface ...  The default is almost always TRUE, meaning the
callback will be forked.  Unforked callbacks are usually intended for
experts."  :class:`CallbackRegistry` implements it.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.kernel.primitives import Compute, Fork, Pause, ThreadProc
from repro.kernel.simtime import usec


def delayed_fork(
    proc: ThreadProc,
    args: tuple = (),
    *,
    delay: int,
    name: str = "DelayedFork",
):
    """DelayedFork: "It calls a procedure at some time in the future."

    Forks (detached) a one-shot that sleeps ``delay`` then runs ``proc``.
    Usage: ``yield from delayed_fork(repaint, (window,), delay=msec(500))``.
    """

    def one_shot():
        yield Pause(delay)
        yield from proc(*args)

    handle = yield Fork(one_shot, name=name, detached=True)
    return handle


def periodical_fork(
    proc: ThreadProc,
    args: tuple = (),
    *,
    period: int,
    name: str = "PeriodicalFork",
):
    """PeriodicalFork: "simply a DelayedFork that repeats over and over
    again at fixed intervals."

    Returns the eternal thread's handle.  Each activation runs ``proc``
    on the sleeper thread itself (not a fresh fork per activation — the
    encapsulation exists to *avoid* hundreds of sleeper stacks).
    """

    def sleeper():
        while True:
            yield Pause(period)
            yield from proc(*args)

    handle = yield Fork(sleeper, name=name, detached=True)
    return handle


class CallbackRegistry:
    """Callbacks with the fork-boolean convention.

    Clients register with ``fork=True`` (the safe default: the module
    forks each callback, insulating itself) or ``fork=False`` (experts:
    faster, but the caller's "future execution ... within the module
    [becomes] dependent on successful completion of the client callback").
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._entries: list[tuple[Callable[..., Any], bool, int]] = []
        self.invocations = 0
        self.forked_invocations = 0

    def register(
        self,
        callback: Callable[..., Any],
        *,
        fork: bool = True,
        cost: int = usec(50),
    ) -> None:
        self._entries.append((callback, fork, cost))

    def invoke_all(self, *args: Any):
        """Run every registered callback (generator).

        Forked callbacks go to detached threads; unforked ones run inline
        on the calling thread, errors and all.
        """
        for callback, fork, cost in list(self._entries):
            self.invocations += 1
            if fork:
                self.forked_invocations += 1

                def forked_body(cb=callback, c=cost):
                    yield Compute(c)
                    result = cb(*args)
                    if hasattr(result, "send"):
                        yield from result

                yield Fork(forked_body, name=f"{self.name}.callback", detached=True)
            else:
                yield Compute(cost)
                result = callback(*args)
                if hasattr(result, "send"):
                    yield from result
