"""Defer work (Section 4.1) — "the single most common use of forking".

"A procedure can often reduce the latency seen by its clients by forking a
thread to do work not required for the procedure's return value."

The paradigm is just FORK-and-forget, so the component surface is small:
:func:`defer_work` forks a detached thread and returns immediately, and
:func:`run_deferred` is the joinable variant for callers that eventually
need the result.  Both exist mainly so the static census can recognise
work-deferral sites by name, the way the paper's authors recognised them
by idiom.

The "critical thread" flavour — a thread so latency-sensitive it forks
almost everything ("These critical threads play the role of interrupt
handlers") — is :class:`CriticalEventLoop`: it drains a device channel at
high priority and forks the real handling into lower-priority threads,
like the Notifier in both Cedar and GVX.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.kernel.channel import Channel
from repro.kernel.primitives import Channelreceive, Fork, ThreadProc


def defer_work(
    proc: ThreadProc,
    args: tuple = (),
    *,
    name: str | None = None,
    priority: int | None = None,
):
    """Fork ``proc`` detached and return its thread handle immediately.

    Use as ``handle = yield from defer_work(print_document, (doc,))``.
    Control "returns immediately to the user" while the work proceeds.
    """
    handle = yield Fork(proc, args=args, name=name, priority=priority, detached=True)
    return handle


def run_deferred(
    proc: ThreadProc,
    args: tuple = (),
    *,
    name: str | None = None,
    priority: int | None = None,
):
    """Fork ``proc`` joinable, for callers that later JOIN the result."""
    handle = yield Fork(proc, args=args, name=name, priority=priority)
    return handle


class CriticalEventLoop:
    """A high-priority thread that defers almost all work (the Notifier).

    "Some threads are themselves so critical to system responsiveness
    that they fork to defer almost any work at all beyond noticing what
    work needs to be done."

    ``handler_factory(event)`` returns the thread proc that does the real
    work; the loop forks it at ``worker_priority`` and goes straight back
    to watching the device.
    """

    def __init__(
        self,
        device: Channel,
        handler_factory: Callable[[Any], ThreadProc],
        *,
        worker_priority: int = 4,
        name: str = "Notifier",
    ) -> None:
        self.device = device
        self.handler_factory = handler_factory
        self.worker_priority = worker_priority
        self.name = name
        self.events_seen = 0
        self.forks_made = 0

    def proc(self):
        """The event-loop thread body (run at high priority)."""
        while True:
            event = yield Channelreceive(self.device)
            self.events_seen += 1
            handler = self.handler_factory(event)
            if handler is not None:
                self.forks_made += 1
                yield Fork(
                    handler,
                    name=f"{self.name}.worker",
                    priority=self.worker_priority,
                    detached=True,
                )
