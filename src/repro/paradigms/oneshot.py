"""One-shots (Section 4.3): "sleeper processes that sleep for a while, run
and then go away."

The paper's running example is the *guarded button*: "A guarded button
must be pressed twice, in close, but not too close succession.  They
usually look like 'Butten' on the screen."  After the first press a
one-shot sleeps through an *arming period* (second clicks inside it are
too close), then changes the label to "Button" and sleeps through the
*invocation window*; a second click inside the window fires the action,
otherwise the one-shot repaints the guard.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.kernel.primitives import Compute, Enter, Exit, GetTime, Pause
from repro.kernel.simtime import msec, usec
from repro.sync.monitor import Monitor


def one_shot(delay: int, work: Callable[[], Any], *, work_cost: int = usec(100)):
    """Thread body: sleep ``delay``, run ``work`` once, exit.

    The building block behind DelayedFork: fork this proc detached and a
    procedure gets called "at some time in the future".
    """

    def proc():
        yield Pause(delay)
        if work_cost:
            yield Compute(work_cost)
        result = work()
        if hasattr(result, "send"):
            yield from result

    return proc


# Guarded-button states.
GUARDED = "Butten"   # the guard is painted (deliberately misspelled glyph)
ARMED = "Button"     # armed: a second click now invokes the action


class GuardedButton:
    """The two-phase guarded button driven by a one-shot thread.

    Call :meth:`press` (a generator: ``yield from button.press()``) for
    each click.  The first click forks a one-shot that arms the button
    after ``arming_period`` and disarms it again ``invocation_window``
    later.  A click while armed invokes ``action``; a click during the
    arming period is swallowed ("in close, but not too close succession").
    """

    def __init__(
        self,
        name: str,
        action: Callable[[], Any],
        *,
        arming_period: int = msec(100),
        invocation_window: int = msec(1500),
    ) -> None:
        self.name = name
        self.action = action
        self.arming_period = arming_period
        self.invocation_window = invocation_window
        self.monitor = Monitor(f"{name}.lock")
        self.label = GUARDED
        self.invocations = 0
        self.repaints = 0
        self._epoch = 0
        self._pending = False

    def press(self):
        """Handle one click; returns "invoked", "armed", or "ignored"."""
        yield Enter(self.monitor)
        try:
            if self.label == ARMED:
                self.invocations += 1
                self.label = GUARDED
                self._epoch += 1  # cancel the outstanding disarm one-shot
                self._pending = False
                result = self.action()
                if hasattr(result, "send"):
                    yield from result
                return "invoked"
            if self._pending:
                return "ignored"  # too close: still in the arming period
            self._pending = True
            epoch = self._epoch
        finally:
            yield Exit(self.monitor)
        # Outside the monitor: the one-shot must not hold the lock while
        # sleeping (a §4.4-style constraint), so press() forks it.
        from repro.kernel.primitives import Fork

        yield Fork(
            self._arming_one_shot,
            args=(epoch,),
            name=f"{self.name}.oneshot",
            detached=True,
        )
        return "armed-pending"

    def _arming_one_shot(self, epoch: int):
        """The one-shot: arm after the arming period, disarm after the
        invocation window expires unused."""
        yield Pause(self.arming_period)
        yield Enter(self.monitor)
        try:
            if epoch != self._epoch:
                return  # superseded
            self.label = ARMED
            self._pending = False
        finally:
            yield Exit(self.monitor)
        yield Pause(self.invocation_window)
        yield Enter(self.monitor)
        try:
            if epoch != self._epoch:
                return  # a second click invoked the action meanwhile
            if self.label == ARMED:
                self.label = GUARDED
                self.repaints += 1
        finally:
            yield Exit(self.monitor)


class TimestampedClick:
    """A click with its arrival time, for tests that drive buttons."""

    __slots__ = ("at",)

    def __init__(self, at: int) -> None:
        self.at = at


def click_recorder():
    """Helper generator: returns the current time (for action callbacks
    that want to log when they fired)."""
    now = yield GetTime()
    return now
