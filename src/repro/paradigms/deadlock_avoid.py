"""Deadlock avoiders (Section 4.4): FORK instead of violating lock order.

"After adjusting the boundary between two windows the contents of the
windows must be repainted.  The boundary-moving thread forks new threads
to do the repainting because it already holds some, but not all of the
locks needed for the repainting. ...  It is far simpler to fork the
painting threads, unwind the adjuster completely and let the painters
acquire the locks that they need in separate threads."

:class:`WindowManager` reproduces that scenario concretely enough to
demonstrate both outcomes: ``adjust_boundary(..., fork_repaint=False)``
repaints inline while holding the tree lock — which deadlocks against a
concurrent painter that takes window-then-tree — while
``fork_repaint=True`` (the paradigm) is deadlock-free by construction.

:func:`fork_callback` is the second §4.4 flavour: "forking the callbacks
from a service module to a client module ... also insulates the service
from things that may go wrong in the client callback."
"""

from __future__ import annotations

from typing import Any, Callable

from repro.kernel.primitives import Compute, Enter, Exit, Fork, ThreadProc
from repro.kernel.simtime import usec
from repro.sync.monitor import Monitor


def fork_callback(
    callback: ThreadProc,
    args: tuple = (),
    *,
    name: str = "callback",
    priority: int | None = None,
):
    """Run a client callback in its own thread so the service can proceed
    and "eventually [release] locks it holds that will be needed by the
    client" — and so client failures cannot take the service down."""
    handle = yield Fork(callback, args=args, name=name, priority=priority, detached=True)
    return handle


class Window:
    """A window with its own monitor (a monitored record)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lock = Monitor(f"window.{name}")
        self.repaints = 0
        self.bounds = (0, 0)


class WindowManager:
    """The window tree: a tree lock plus per-window locks.

    Lock order discipline: window lock *before* tree lock (painters
    naturally take their window first).  The boundary adjuster holds the
    tree lock, so repainting inline from the adjuster acquires in the
    reverse order — the classic deadlock the paradigm avoids.
    """

    def __init__(self) -> None:
        self.tree_lock = Monitor("window-tree")
        self.windows: dict[str, Window] = {}
        self.adjustments = 0
        self.forked_repaints = 0

    def add_window(self, name: str) -> Window:
        window = Window(name)
        self.windows[name] = window
        return window

    def paint(self, window: Window, *, cost: int = usec(200)):
        """A painter: window lock for the whole repaint, tree lock taken
        mid-paint to post damage — the canonical window-then-tree order."""
        yield Enter(window.lock)
        try:
            yield Compute(cost)  # rasterise under the window lock
            yield Enter(self.tree_lock)
            try:
                bounds = window.bounds  # post damage to the layout tree
            finally:
                yield Exit(self.tree_lock)
            window.repaints += 1
            return bounds
        finally:
            yield Exit(window.lock)

    def adjust_boundary(
        self,
        upper: Window,
        lower: Window,
        delta: int,
        *,
        fork_repaint: bool = True,
    ):
        """Move the boundary between two windows, then repaint both.

        With ``fork_repaint=True`` the adjuster "unwinds completely" and
        detached painter threads acquire locks in the correct order.
        With ``False`` it repaints inline while still holding the tree
        lock — acquiring window locks *after* the tree lock, the
        order violation the paradigm exists to avoid.
        """
        yield Enter(self.tree_lock)
        try:
            upper.bounds = (upper.bounds[0], upper.bounds[1] + delta)
            lower.bounds = (lower.bounds[0] + delta, lower.bounds[1])
            self.adjustments += 1
            yield Compute(usec(50))
            if not fork_repaint:
                # Inline repaint: tree lock held, taking window locks now.
                for window in (upper, lower):
                    yield Enter(window.lock)
                    try:
                        yield Compute(usec(200))
                        window.repaints += 1
                    finally:
                        yield Exit(window.lock)
        finally:
            yield Exit(self.tree_lock)
        if fork_repaint:
            for window in (upper, lower):
                self.forked_repaints += 1
                yield Fork(
                    self._repaint_proc,
                    args=(window,),
                    name=f"repaint.{window.name}",
                    detached=True,
                )

    def _repaint_proc(self, window: Window):
        yield from self.paint(window)


class FlakyClientError(RuntimeError):
    """Raised by misbehaving client callbacks in the insulation tests."""


def finalization_service(
    registry: list[ThreadProc],
    *,
    forked: bool = True,
) -> Callable[[], Any]:
    """The garbage-collector finalization pattern: "The finalization
    service thread forks each callback."

    Returns a thread proc that runs every registered finalizer, forked
    (insulated) or inline (a client error kills the service).
    """

    def service():
        for callback in list(registry):
            if forked:
                yield Fork(callback, name="finalizer", detached=True)
            else:
                yield from callback()

    return service
