"""The ten thread-usage paradigms of Section 4, as reusable components.

| Paradigm             | Module            | Paper section |
|----------------------|-------------------|---------------|
| defer work           | ``defer``         | 4.1           |
| general pumps        | ``pump``          | 4.2           |
| slack processes      | ``slack``         | 4.2, 5.2      |
| sleepers             | ``sleeper``       | 4.3           |
| one-shots            | ``oneshot``       | 4.3           |
| deadlock avoiders    | ``deadlock_avoid``| 4.4           |
| task rejuvenation    | ``rejuvenate``    | 4.5           |
| serializers          | ``serializer``    | 4.6           |
| concurrency exploiters | ``exploit``     | 4.7           |
| encapsulated forks   | ``encapsulated``  | 4.8           |
"""

from repro.paradigms.defer import defer_work, run_deferred
from repro.paradigms.encapsulated import (
    CallbackRegistry,
    delayed_fork,
    periodical_fork,
)
from repro.paradigms.exploit import parallel_map
from repro.paradigms.oneshot import GuardedButton, one_shot
from repro.paradigms.pump import Pump, connect_pipeline
from repro.paradigms.rejuvenate import rejuvenating
from repro.paradigms.serializer import MBQueue
from repro.paradigms.slack import SlackProcess
from repro.paradigms.sleeper import PeriodicalProcess, Sleeper

__all__ = [
    "CallbackRegistry",
    "GuardedButton",
    "MBQueue",
    "PeriodicalProcess",
    "Pump",
    "SlackProcess",
    "Sleeper",
    "connect_pipeline",
    "defer_work",
    "delayed_fork",
    "one_shot",
    "parallel_map",
    "periodical_fork",
    "rejuvenating",
    "run_deferred",
]
