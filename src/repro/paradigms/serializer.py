"""Serializers (Section 4.6): a queue plus a thread that processes it.

"A serializer is a queue and a thread that processes the work on the
queue.  The queue acts as a point of serialization in the system.  The
primary example is in the window system where input events can arrive from
a number of different sources.  They are handled by a single thread in
order to preserve their ordering."

:class:`MBQueue` is the paper's named encapsulation ("the name means
Menu/Button Queue"): "MBQueue creates a queue as a serialization context
and a thread to process it.  Mouse clicks and key strokes cause procedures
to be enqueued for the context: the thread then calls the procedures in
the order received."

:class:`CoalescingSerializer` is one of the "several minor variations"
the paper observes instead of a single generic package: it collapses
queued work items that share a key (useful for repaint requests), which is
exactly the kind of interface-specific twist that made programmers prefer
variations over one generic implementation.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.kernel.primitives import Compute
from repro.kernel.simtime import usec
from repro.sync.queues import UnboundedQueue


class WorkItem:
    """One queued procedure: a generator function or plain callable."""

    __slots__ = ("proc", "args", "cost", "key")

    def __init__(
        self,
        proc: Callable[..., Any],
        args: tuple = (),
        *,
        cost: int = usec(50),
        key: Any = None,
    ) -> None:
        self.proc = proc
        self.args = args
        self.cost = cost
        self.key = key


class MBQueue:
    """The serialization context: enqueue procedures, one thread runs them.

    Usage::

        mbq = MBQueue("viewer")
        world.add_eternal(mbq.proc, name="viewer.serializer")
        ...
        yield from mbq.enqueue(handle_click, (event,))
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.queue = UnboundedQueue(f"{name}.mbq")
        self.processed = 0
        #: Completion order, for ordering assertions in tests.
        self.history: list[Any] = []

    def enqueue(
        self,
        proc: Callable[..., Any],
        args: tuple = (),
        *,
        cost: int = usec(50),
        key: Any = None,
    ):
        """Add a procedure to the serialization context (generator)."""
        yield from self.queue.put(WorkItem(proc, args, cost=cost, key=key))

    def proc(self) -> Any:
        """The serializer thread body: call procedures in arrival order."""
        while True:
            item = yield from self.queue.get()
            yield from self._run(item)

    def _run(self, item: WorkItem):
        if item.cost:
            yield Compute(item.cost)
        result = item.proc(*item.args)
        if hasattr(result, "send"):
            yield from result
        self.processed += 1
        self.history.append(item.key if item.key is not None else item.proc)


class CoalescingSerializer(MBQueue):
    """An MBQueue variation: adjacent items with equal keys coalesce.

    When the thread dequeues an item it also drains the queue and drops
    earlier items superseded by later ones with the same key, processing
    only the survivors — a serializer crossed with a slack process's
    merge step, the sort of hybrid the paper found in window repaint
    paths.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.coalesced = 0

    def proc(self) -> Any:
        while True:
            first = yield from self.queue.get()
            rest = yield from self.queue.get_all()
            batch = [first, *rest]
            survivors: dict[Any, WorkItem] = {}
            unkeyed: list[WorkItem] = []
            for item in batch:
                if item.key is None:
                    unkeyed.append(item)
                else:
                    if item.key in survivors:
                        self.coalesced += 1
                    survivors[item.key] = item
            for item in unkeyed + list(survivors.values()):
                yield from self._run(item)
