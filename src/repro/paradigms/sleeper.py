"""Sleepers (Section 4.3): threads that wait for a trigger, run briefly,
and wait again.

"Sleepers are processes that repeatedly wait for a triggering event and
then execute ...  Often the triggering event is a timeout."  Examples the
paper lists: call this procedure in K seconds, blink the cursor, check
network timeouts, cache aging, the page-cleaning daemon.

Two implementations, matching Section 5.1's cost discussion:

* :class:`Sleeper` — one forked thread per sleeper.  Simple, but "100
  kilobytes for each of hundreds of sleepers' stacks is just too
  expensive";
* :class:`PeriodicalProcess` — one thread multiplexing many timed
  closures, "using closures to maintain the little bit of state necessary
  between activations".  This is the PeriodicalProcess module the paper
  says replaced FORKed sleepers.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.kernel.primitives import Compute, GetTime, Pause
from repro.kernel.simtime import usec


class Sleeper:
    """A dedicated sleeper thread: Pause(period); work; repeat.

    ``work`` may be a plain callable (charged ``work_cost`` of CPU) or a
    generator function for work that itself uses kernel services.
    """

    def __init__(
        self,
        name: str,
        period: int,
        work: Callable[[], Any],
        *,
        work_cost: int = usec(100),
    ) -> None:
        if period < 0:
            raise ValueError("period must be >= 0")
        self.name = name
        self.period = period
        self.work = work
        self.work_cost = work_cost
        self.activations = 0

    def proc(self):
        while True:
            yield Pause(self.period)
            self.activations += 1
            yield from _run_work(self.work, self.work_cost)


class PeriodicalProcess:
    """Many logical sleepers multiplexed on one thread (one stack).

    Register closures with :meth:`add`; each runs every ``period``
    microseconds (first due one period after registration).  The single
    service thread sleeps until the earliest due closure — saving
    ``(n - 1) * stack_reservation`` bytes versus n forked sleepers, the
    §5.1 economy measured by the sleeper-stacks bench.
    """

    def __init__(self, name: str = "PeriodicalProcess") -> None:
        self.name = name
        self._schedule: list[tuple[int, int, dict]] = []
        self._counter = itertools.count()
        self.activations = 0

    def add(
        self,
        name: str,
        period: int,
        work: Callable[[], Any],
        *,
        work_cost: int = usec(100),
        start_at: int = 0,
    ) -> None:
        """Register a closure.  Must be called before the thread starts
        (or from inside one of its closures)."""
        if period <= 0:
            raise ValueError("period must be positive")
        entry = {
            "name": name,
            "period": period,
            "work": work,
            "work_cost": work_cost,
            "runs": 0,
        }
        heapq.heappush(
            self._schedule, (start_at + period, next(self._counter), entry)
        )

    @property
    def registered(self) -> int:
        return len(self._schedule)

    def proc(self):
        """Service thread body: sleep until the nearest due closure."""
        while self._schedule:
            due, _seq, entry = self._schedule[0]
            now = yield GetTime()
            if due > now:
                yield Pause(due - now)
                now = yield GetTime()
            heapq.heappop(self._schedule)
            self.activations += 1
            entry["runs"] += 1
            yield from _run_work(entry["work"], entry["work_cost"])
            heapq.heappush(
                self._schedule, (now + entry["period"], next(self._counter), entry)
            )


def _run_work(work: Callable[[], Any], work_cost: int):
    """Run a sleeper's work item: generator functions compose, plain
    callables are charged a flat CPU cost."""
    if work_cost:
        yield Compute(work_cost)
    result = work()
    if hasattr(result, "send"):  # a generator: run it on this thread
        yield from result
