"""Pumps (Section 4.2): pipeline components.

"Pumps are components of pipelines.  They pick up input from one place,
possibly transform it in some way and produce it as output someplace
else."  The paper found them "most commonly used ... as a programming
convenience" — structuring, not multiprocessor parallelism.

A :class:`Pump` connects a *source* to a *sink*.  Sources and sinks may be
bounded buffers, unbounded queues, or device channels — "bounded buffers
and external devices are two common sources and sinks" — plus anything
else exposing the small endpoint protocol below.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.kernel.channel import Channel
from repro.kernel.primitives import Channelreceive, Compute
from repro.kernel.simtime import usec
from repro.sync.queues import BoundedBuffer, UnboundedQueue


def read_endpoint(endpoint: Any):
    """Blocking-get from any supported pipeline endpoint (generator)."""
    if isinstance(endpoint, Channel):
        item = yield Channelreceive(endpoint)
        return item
    if isinstance(endpoint, (BoundedBuffer, UnboundedQueue)):
        item = yield from endpoint.get()
        return item
    getter = getattr(endpoint, "get", None)
    if getter is not None:
        item = yield from getter()
        return item
    raise TypeError(f"cannot read from pipeline endpoint {endpoint!r}")


def write_endpoint(endpoint: Any, item: Any):
    """Blocking-put to any supported pipeline endpoint (generator)."""
    if isinstance(endpoint, (BoundedBuffer, UnboundedQueue)):
        yield from endpoint.put(item)
        return
    putter = getattr(endpoint, "put", None)
    if putter is not None:
        yield from putter(item)
        return
    raise TypeError(f"cannot write to pipeline endpoint {endpoint!r}")


class Pump:
    """One pipeline stage: get, transform, put — forever.

    ``transform`` maps an input item to an output item, a list of output
    items (fan-out), or ``None`` (drop).  ``cost_per_item`` is the CPU
    burned per item; pipelines in the echo path use tens of microseconds.
    """

    def __init__(
        self,
        name: str,
        source: Any,
        sink: Any,
        *,
        transform: Callable[[Any], Any] | None = None,
        cost_per_item: int = usec(50),
        carry: dict | None = None,
    ) -> None:
        self.name = name
        self.source = source
        self.sink = sink
        self.transform = transform
        self.cost_per_item = cost_per_item
        self.items_pumped = 0
        #: Optional custody ledger, keyed by ``item.rid``: records each
        #: item the instant it leaves the source, cleared once the sink
        #: holds it — so a pump killed mid-transfer leaves an audit
        #: trail instead of a silent loss.  None costs nothing.
        self.carry = carry

    def proc(self):
        """The pump's thread body."""
        while True:
            item = yield from read_endpoint(self.source)
            if self.carry is not None:
                self.carry[item.rid] = item
            if self.cost_per_item:
                yield Compute(self.cost_per_item)
            output = item if self.transform is None else self.transform(item)
            self.items_pumped += 1
            if output is None:
                if self.carry is not None:
                    self.carry.pop(item.rid, None)
                continue
            if isinstance(output, list):
                for produced in output:
                    yield from write_endpoint(self.sink, produced)
            else:
                yield from write_endpoint(self.sink, output)
            if self.carry is not None:
                self.carry.pop(item.rid, None)


def connect_pipeline(
    world: Any,
    stages: list[Pump],
    *,
    priority: int = 4,
) -> list[Any]:
    """Fork one thread per pump, in order; returns the thread handles.

    ``world`` is a :class:`repro.runtime.pcr.World` (or anything with
    ``add_eternal``); pipeline threads are eternal by nature.
    """
    return [
        world.add_eternal(stage.proc, name=stage.name, priority=priority)
        for stage in stages
    ]
