"""Task rejuvenation (Section 4.5): when a thread gets into a bad state,
fork a fresh copy.

"Sometimes threads get into bad states, such as arise from uncaught
exceptions or stack overflow, from which recovery is impossible within the
thread itself.  In many cases, however, cleanup and recovery is possible
if a new 'task rejuvenation' thread is forked.  (This thread is in
trouble.  Ok let's make two of them!)"

Two shapes:

* :func:`rejuvenating` wraps any service proc: an uncaught exception forks
  a replacement copy (up to ``max_restarts``) instead of killing the
  service;
* :class:`RejuvenatingDispatcher` is the paper's concrete example — an
  input-event dispatcher that makes *unforked* callbacks for speed
  ("this code is on the critical path for user-visible performance") and
  relies on rejuvenation to survive client errors.

The paper calls the paradigm "controversial" — "Its ability to mask
underlying design problems suggests that it be used with caution" — so
every restart is counted and reported, never silent.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.kernel.primitives import Channelreceive, Compute, Fork, ThreadProc
from repro.kernel.simtime import usec


class RejuvenationLog:
    """Shared restart accounting for a rejuvenating service."""

    def __init__(self) -> None:
        self.restarts = 0
        self.errors: list[BaseException] = []

    def record(self, error: BaseException) -> None:
        self.restarts += 1
        self.errors.append(error)


def rejuvenating(
    proc_factory: Callable[[], ThreadProc],
    *,
    name: str = "service",
    max_restarts: int = 10,
    log: RejuvenationLog | None = None,
) -> tuple[ThreadProc, RejuvenationLog]:
    """Wrap a service so uncaught errors fork a fresh copy.

    ``proc_factory`` builds a new body generator per incarnation (state
    from the dead incarnation is deliberately not carried over — it was
    in a bad state).  Returns ``(proc, log)``; fork ``proc`` to start the
    first incarnation.
    """
    restart_log = log if log is not None else RejuvenationLog()

    def incarnation():
        try:
            yield from proc_factory()()
        except Exception as error:  # noqa: BLE001 - rejuvenation boundary
            restart_log.record(error)
            if restart_log.restarts <= max_restarts:
                # "an exception handler may simply fork a new copy of the
                # service."
                yield Fork(incarnation, name=f"{name}.rejuvenated", detached=True)
            else:
                raise

    return incarnation, restart_log


class RejuvenatingDispatcher:
    """The Cedar input-event dispatcher with a task-rejuvenating FORK.

    "The dispatcher makes unforked callbacks to client procedures because
    (a) this code is on the critical path for user-visible performance and
    (b) most callbacks are very short ... But not forking makes the
    dispatcher vulnerable to uncaught runtime errors that occur in the
    callbacks.  Using task rejuvenation, the new copy of the dispatcher
    keeps running."
    """

    def __init__(
        self,
        device: Any,
        *,
        dispatch_cost: int = usec(20),
        max_restarts: int = 100,
    ) -> None:
        self.device = device
        self.dispatch_cost = dispatch_cost
        self.max_restarts = max_restarts
        self.callbacks: list[Callable[[Any], Any]] = []
        self.dispatched = 0
        self.log = RejuvenationLog()

    def register(self, callback: Callable[[Any], Any]) -> None:
        """Register an *unforked* callback (experts only, per §4.8)."""
        self.callbacks.append(callback)

    def proc(self):
        """Dispatcher body; fork this (detached) to start dispatching."""
        try:
            while True:
                event = yield Channelreceive(self.device)
                yield Compute(self.dispatch_cost)
                for callback in self.callbacks:
                    result = callback(event)  # unforked: fast but exposed
                    if hasattr(result, "send"):
                        yield from result
                self.dispatched += 1
        except Exception as error:  # noqa: BLE001 - rejuvenation boundary
            self.log.record(error)
            if self.log.restarts <= self.max_restarts:
                yield Fork(self.proc, name="dispatcher.rejuvenated", detached=True)
            else:
                raise
