"""Slack processes (Sections 4.2 and 5.2): latency-adding, work-saving pumps.

"A slack process explicitly adds latency to a pipeline in the hope of
reducing the total amount of work done, either by merging input or
replacing earlier data with later data before placing it on its output.
Slack processes are useful when the downstream consumer of the data incurs
high per-transaction costs."

The canonical instance is the X-server buffer thread of Section 5.2: it
accumulates paint requests, merges overlapping ones, and sends them to the
server only occasionally.  The hard part — the subject of the whole case
study — is *how the slack process cedes the CPU* so producers can fill its
queue:

* ``"yield"`` — plain YIELD.  Broken when the slack process outranks its
  producers: the scheduler hands the CPU straight back, nothing batches.
* ``"ybntm"`` — YieldButNotToMe, the paper's fix: the producer gets the
  rest of the timeslice and batching works (~3x improvement).
* ``"sleep"`` — wait out a timeout instead.  Works *only* when the
  scheduler quantum is short enough, because "the smallest sleep interval
  is the remainder of the scheduler quantum" (Section 6.3).
* ``"none"`` — no slack at all: forward each item as it arrives
  (the baseline a slack process is supposed to beat).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.kernel.primitives import Compute, Pause, Yield, YieldButNotToMe
from repro.kernel.simtime import usec
from repro.sync.queues import UnboundedQueue

GATHER_YIELD = "yield"
GATHER_YBNTM = "ybntm"
GATHER_SLEEP = "sleep"
GATHER_NONE = "none"

_STRATEGIES = (GATHER_YIELD, GATHER_YBNTM, GATHER_SLEEP, GATHER_NONE)


def merge_keep_latest(items: list[Any]) -> list[Any]:
    """Replace earlier data with later data, keyed by ``item.key`` when
    present (falling back to identity-less pass-through)."""
    merged: dict[Any, Any] = {}
    passthrough: list[Any] = []
    for item in items:
        key = getattr(item, "key", None)
        if key is None:
            passthrough.append(item)
        else:
            merged[key] = item
    return passthrough + list(merged.values())


class SlackProcess:
    """A batching/merging pump stage.

    ``queue``       — the upstream :class:`UnboundedQueue` producers fill;
    ``deliver``     — generator function called as
                      ``yield from deliver(batch)`` to push the merged
                      batch downstream (e.g. an X-server submit);
    ``merge``       — batch reducer (default: keep-latest per key);
    ``strategy``    — how to cede the CPU while gathering (see module doc);
    ``gather_rounds`` — how many cede-and-collect rounds per batch;
    ``sleep_interval`` — Pause length for the ``"sleep"`` strategy;
    ``cost_per_batch`` — local CPU burned preparing each delivery.
    """

    def __init__(
        self,
        name: str,
        queue: UnboundedQueue,
        deliver: Callable[[list[Any]], Any],
        *,
        merge: Callable[[list[Any]], list[Any]] = merge_keep_latest,
        strategy: str = GATHER_YBNTM,
        gather_rounds: int = 1,
        sleep_interval: int = 0,
        cost_per_batch: int = usec(100),
    ) -> None:
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown gather strategy {strategy!r}")
        self.name = name
        self.queue = queue
        self.deliver = deliver
        self.merge = merge
        self.strategy = strategy
        self.gather_rounds = gather_rounds
        self.sleep_interval = sleep_interval
        self.cost_per_batch = cost_per_batch
        self.items_in = 0
        self.items_out = 0
        self.batches_sent = 0

    @property
    def merge_ratio(self) -> float:
        """Input items per delivered item — >1 means merging is working."""
        if self.items_out == 0:
            return 0.0
        return self.items_in / self.items_out

    def proc(self):
        """The slack process's thread body."""
        while True:
            first = yield from self.queue.get()
            if first is None:
                # A queue with a default get timeout returns None when the
                # wait expires empty (e.g. a lost NOTIFY under fault
                # injection): poll again rather than batching a phantom.
                continue
            batch = [first]
            if self.strategy != GATHER_NONE:
                for _ in range(self.gather_rounds):
                    yield from self._cede()
                    more = yield from self.queue.get_all()
                    batch.extend(more)
            self.items_in += len(batch)
            merged = self.merge(batch)
            if self.cost_per_batch:
                yield Compute(self.cost_per_batch)
            self.items_out += len(merged)
            self.batches_sent += 1
            yield from self.deliver(merged)

    def _cede(self):
        """Give producers a chance to add to the queue."""
        if self.strategy == GATHER_YIELD:
            yield Yield()
        elif self.strategy == GATHER_YBNTM:
            yield YieldButNotToMe()
        elif self.strategy == GATHER_SLEEP:
            yield Pause(self.sleep_interval)
        # GATHER_NONE never reaches here.


def drain_iterable(items: Iterable[Any]) -> list[Any]:
    """Tiny helper for deliver functions that just collect batches."""
    return list(items)
