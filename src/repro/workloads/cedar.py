"""The synthetic Cedar world (paper Section 3, Tables 1-3).

Population, straight from the paper's description:

* "an idle Cedar system has about 35 eternal threads running in it and
  forks a transient thread once a second on average" (the idle forker
  pair: a root roughly every 2 s, "each forked thread, in turn, forks
  another transient thread");
* the Notifier at priority 7 ("keeping the system responsive"), the
  SystemDaemon and the garbage-collection daemon at priority 6, and the
  core of long-lived threads "relatively evenly distributed over the four
  'standard' priority values of 1 to 4"; level 5 is the unused level;
* eternal threads are mostly CV sleepers (Table 3 idle: 22 distinct CVs)
  plus device watchers and Pause-based helpers that never touch a CV;
* keyboard activity forks a transient per keystroke from the command
  shell; mouse motion and scrolling fork (almost) nothing but stimulate
  eternal threads; document formatting forks 3.6/s with second-generation
  children; Make and Compile barely fork but sweep enormous numbers of
  monitors (Table 3: 1296 and 2900 distinct).

Every rate constant below is pinned by a Table 1-3 target; the measured
values are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.kernel.config import KernelConfig
from repro.kernel.primitives import Channelreceive, Compute, Fork, Pause
from repro.kernel.rng import DeterministicRng
from repro.kernel.simtime import msec, sec, usec
from repro.runtime.pcr import World
from repro.sync.queues import UnboundedQueue
from repro.workloads.base import CvSleeper, LibraryPool, StageSet


@dataclass
class CedarContext:
    """Everything an activity needs to hook into the Cedar world."""

    rng: DeterministicRng
    pools: dict[str, LibraryPool] = field(default_factory=dict)
    sleepers: list[CvSleeper] = field(default_factory=list)
    keyboard: Any = None
    mouse: Any = None
    command_queue: UnboundedQueue | None = None
    #: Handlers activities register for device events: event -> generator.
    key_handlers: list[Any] = field(default_factory=list)
    mouse_handlers: list[Any] = field(default_factory=list)
    #: Activity-specific CV populations (Table 3's distinct-CV deltas).
    stage_sets: dict[str, Any] = field(default_factory=dict)
    #: Stages the per-keystroke transient briefly waits on, if typing.
    keystroke_stages: Any = None
    #: The background transient forker; activities adjust its period.
    idle_forker: Any = None


# -- population constants (each pinned by a paper number) -------------------

#: Table 3 idle: 554 distinct MLs entered while idle.
SYSTEM_POOL_SIZE = 520
#: Extra pools activities bring in (Table 3 deltas vs idle).
TEXT_POOL_SIZE = 380
GRAPHICS_POOL_SIZE = 380
FILESYSTEM_POOL_SIZE = 754
COMPILER_POOL_SIZE = 2500

#: Table 3 idle: 22 distinct CVs waited on.
CV_SLEEPER_COUNT = 20
#: 35 eternal threads total in an idle world.
PAUSE_HELPER_COUNT = 9

#: Table 2 idle: 121 waits/sec across the CV population.
SLEEPER_PERIODS = [msec(100), msec(130), msec(165), msec(260), msec(450)]
#: Table 2 idle: 82% of waits time out — the rest are peer notifications.
PEER_STIMULATION_PROB = 0.18
#: Activity-specific monitor populations (Table 3 deltas vs idle's 554).
CURSOR_POOL_SIZE = 185
SCROLL_POOL_SIZE = 245


def build_cedar_world(config: KernelConfig) -> tuple[World, CedarContext]:
    """An idle Cedar world: 35 eternal threads, idle forker, daemons."""
    world = World(config)
    rng = DeterministicRng(config.seed).fork("cedar-world")
    context = CedarContext(rng=rng)

    context.pools["system"] = LibraryPool("system", SYSTEM_POOL_SIZE, rng.fork("system"))
    context.pools["text"] = LibraryPool("text", TEXT_POOL_SIZE, rng.fork("text"))
    context.pools["graphics"] = LibraryPool(
        "graphics", GRAPHICS_POOL_SIZE, rng.fork("graphics")
    )
    context.pools["filesystem"] = LibraryPool(
        "filesystem", FILESYSTEM_POOL_SIZE, rng.fork("fs")
    )
    context.pools["compiler"] = LibraryPool(
        "compiler", COMPILER_POOL_SIZE, rng.fork("compiler")
    )
    context.pools["cursor"] = LibraryPool(
        "cursor", CURSOR_POOL_SIZE, rng.fork("cursor")
    )
    context.pools["scroll"] = LibraryPool(
        "scroll", SCROLL_POOL_SIZE, rng.fork("scroll")
    )

    system_pool = context.pools["system"]

    # -- the CV-sleeper core, spread over priorities 1..4 (F4) -----------
    for index in range(CV_SLEEPER_COUNT):
        period = SLEEPER_PERIODS[index % len(SLEEPER_PERIODS)]
        sleeper = CvSleeper(
            f"sleeper-{index}",
            period=period,
            pool=system_pool,
            touches=1 + index % 3,  # Table 2 idle: ~414 ML-enters/sec
            # every 4th sleeper is a slow cache manager whose activation
            # runs ~7 ms — the 5-45 ms middle of the interval histogram
            # (paper: ~75% of Cedar intervals are 0-5 ms, not ~100%).
            work=msec(6) if index % 4 == 3 else usec(150 + 50 * (index % 4)),
            peers=context.sleepers,
            stimulate_peer_prob=PEER_STIMULATION_PROB,
            rng=rng.fork(f"sleeper-{index}"),
        )
        context.sleepers.append(sleeper)
        world.add_eternal(
            sleeper.proc, name=sleeper.name, priority=1 + index % 4
        )

    # -- Pause-based helpers: eternal but CV-less (Table 3 caps CVs) -----
    for index in range(PAUSE_HELPER_COUNT):
        world.add_eternal(
            _pause_helper,
            (msec(450 + 150 * (index % 3)), system_pool, 1 + index % 2),
            name=f"helper-{index}",
            priority=1 + index % 4,
        )

    # -- devices and their watchers --------------------------------------
    # "all user input is filtered through a pipeline thread that
    # preprocesses events" — keyboard and mouse merge into one stream.
    context._merged_channel = world.add_device("input")
    context.keyboard = context._merged_channel
    context.mouse = context._merged_channel
    context.command_queue = UnboundedQueue("command-shell", get_timeout=msec(250))

    world.add_eternal(
        _notifier_proc,
        (context,),
        name="Notifier",
        priority=7,  # "Cedar uses level 7 for interrupt handling"
    )
    world.add_eternal(
        _command_shell_proc,
        (context,),
        name="CommandShell",
        priority=4,
    )

    # -- daemons -----------------------------------------------------------
    gc_daemon = CvSleeper(
        "GCDaemon",
        period=msec(400),
        pool=system_pool,
        touches=4,
        work=msec(1),
    )
    context.sleepers.append(gc_daemon)
    world.add_eternal(gc_daemon.proc, name="GCDaemon", priority=6)
    world.install_daemon(period=msec(500))  # SystemDaemon, priority 6

    # -- the idle forker ----------------------------------------------------
    # "An idle Cedar system forks a transient thread about once every 2
    # seconds.  Each forked thread, in turn, forks another transient
    # thread."  Activities that keep the user busy suppress it — that is
    # how "thread-forking activity [decreases] by more than a factor of
    # 3" under compute-intensive load.
    context.idle_forker = IdleForker(context)
    world.add_eternal(
        context.idle_forker.proc, name="IdleForker", priority=1
    )

    # -- the scavenger ------------------------------------------------------
    # Background work chunked at roughly the quantum: the source of the
    # second execution-interval peak "around 45 milliseconds" and of the
    # "20% to 50% of the total execution time ... accumulated by threads
    # running for periods of 45 to 50 milliseconds" (Section 3).
    # Priority 4: equal-priority wakes do not preempt, so the 46 ms
    # sweep usually completes as one unbroken execution interval.
    world.add_eternal(_scavenger_proc, (context,), name="Scavenger", priority=4)

    return world, context


def _scavenger_proc(context: "CedarContext"):
    while True:
        yield Pause(msec(400))
        yield Compute(msec(46))
        yield from context.pools["system"].touch(3)


class IdleForker:
    """The background transient-forking loop; period is adjustable so an
    activity can model the user not being idle at the shell."""

    def __init__(self, context: "CedarContext", period: int = sec(2)) -> None:
        self.context = context
        self.period = period

    def proc(self):
        while True:
            yield Pause(self.period)
            yield Fork(
                _idle_transient, (self.context,), name="idle-transient",
                priority=2, detached=True,
            )


def _pause_helper(period: int, pool: LibraryPool, touches: int):
    """A CV-less eternal helper (page cleaner, stat poller, ...)."""
    while True:
        yield Pause(period)
        yield Compute(usec(120))
        yield from pool.touch(touches)


def _notifier_proc(context: CedarContext):
    """The keyboard-and-mouse watching process: "a critical, high
    priority thread" that defers almost everything.

    Activities post ``("key", event)`` / ``("mouse", event)`` tuples onto
    the merged input device.
    """
    while True:
        source, event = yield Channelreceive(context._merged_channel)
        yield Compute(usec(30))  # notice what work needs to be done
        handlers = (
            context.key_handlers if source == "key" else context.mouse_handlers
        )
        for handler in handlers:
            yield from handler(event)
        if source == "key":
            # Cooked keystrokes go to the command shell's serializer.
            yield from context.command_queue.put(event)


def _command_shell_proc(context: CedarContext):
    """The command shell: waits on its queue, forks a transient per
    keystroke ("Keyboard activity causes a transient thread to be forked
    by the command-shell thread for every keystroke")."""
    while True:
        event = yield from context.command_queue.get()
        if event is None:
            continue  # timeout: nothing typed
        yield Compute(usec(80))
        yield Fork(
            _keystroke_transient,
            args=(context, event),
            name="key-transient",
            priority=4,
            detached=True,
        )


def _keystroke_transient(context: CedarContext, event: Any):
    """Per-keystroke transient work: echo bookkeeping across the text and
    system libraries (Table 2 keyboard: ~2550 ML-enters/sec)."""
    yield Compute(usec(400))
    yield from context.pools["text"].touch(380)
    yield from context.pools["system"].touch(80)
    if context.keystroke_stages is not None:
        yield from context.keystroke_stages.visit_next()
        yield from context.keystroke_stages.visit_next()


def _idle_transient(context: CedarContext):
    yield Compute(usec(500))
    yield from context.pools["system"].touch(5)
    yield Fork(
        _idle_transient_child, (context,), name="idle-transient-child",
        priority=2, detached=True,
    )


def _idle_transient_child(context: CedarContext):
    yield Compute(usec(300))
    yield from context.pools["system"].touch(3)


# ---------------------------------------------------------------------------
# Activities (the Table 1-3 benchmark rows)
# ---------------------------------------------------------------------------


def _stimulate_some(context: CedarContext, count: int):
    """Wake ``count`` randomly chosen eternal sleepers ("both keyboard
    activity and mouse motion cause significant increases in activity by
    eternal threads")."""
    for _ in range(count):
        sleeper = context.rng.choice(context.sleepers)
        yield from sleeper.stimulate()


def install_keyboard(world: World, context: CedarContext, *, keys_per_sec: float = 4.0) -> None:
    """Typing: a keystroke every 1/keys_per_sec seconds.

    Targets (Tables 1-3): 5.0 forks/s, 269 switches/s, 185 waits/s at 48%
    timeouts, 2557 ML-enters/s, 32 CVs, 918 MLs.
    """
    stages = StageSet("echo", 10, wait_timeout=msec(25))
    context.stage_sets["echo"] = stages

    def handler(event):
        yield Compute(usec(100))
        yield from context.pools["text"].touch(30)
        yield from _stimulate_some(context, 24)

    context.key_handlers.append(handler)
    context.keystroke_stages = stages
    period = round(sec(1) / keys_per_sec)
    world.kernel.post_every(
        period, lambda k: context._merged_channel.post(("key", "keystroke"))
    )


def install_mouse(world: World, context: CedarContext, *, moves_per_sec: float = 40.0) -> None:
    """Mouse motion: no forks, but eternal-thread activity rises.

    Targets: 1.0 forks/s (just the idle forker), 191 switches/s, 163
    waits/s at 58% timeouts, 1025 ML-enters/s, 26 CVs, 734 MLs.
    """
    stages = StageSet("cursor", 4, wait_timeout=msec(25))
    context.stage_sets["cursor"] = stages
    moves = [0]

    def handler(event):
        moves[0] += 1
        yield Compute(usec(60))
        yield from context.pools["cursor"].touch(12)
        yield from _stimulate_some(context, 2 if moves[0] % 3 == 0 else 1)
        if moves[0] % 10 == 0:
            yield from stages.visit_next()

    context.mouse_handlers.append(handler)
    period = round(sec(1) / moves_per_sec)
    world.kernel.post_every(
        period, lambda k: context._merged_channel.post(("mouse", "motion"))
    )


def install_scrolling(world: World, context: CedarContext, *, scrolls_per_sec: float = 2.0) -> None:
    """Window scrolling: heavy repaint monitor traffic, 0.3 transients
    per scroll ("Scrolling a text window 10 times causes 3 transient
    threads to be forked, one of which is the child of one of the other
    transients").  The user is busy, so idle forking is suppressed.

    Targets: 0.7 forks/s, 172 switches/s, 115 waits/s at 69% timeouts,
    2032 ML-enters/s, 30 CVs, 797 MLs.
    """
    context.idle_forker.period = sec(20)
    stages = StageSet("scroll", 8, wait_timeout=msec(25))
    context.stage_sets["scroll"] = stages
    scroll_count = [0]

    def handler(event):
        scroll_count[0] += 1
        yield Compute(msec(2))  # repaint work
        yield from context.pools["scroll"].touch(700)
        yield from _stimulate_some(context, 5)
        yield from stages.visit_next()
        yield from stages.visit_next()
        if scroll_count[0] % 5 == 0:
            # every 5th scroll forks a repaint transient...
            grandchild = scroll_count[0] % 10 == 0
            yield Fork(
                _scroll_transient, (context, grandchild),
                name="scroll-transient", priority=3, detached=True,
            )

    context.mouse_handlers.append(handler)
    period = round(sec(1) / scrolls_per_sec)
    world.kernel.post_every(
        period, lambda k: context._merged_channel.post(("mouse", "scroll-click"))
    )


def _scroll_transient(context: CedarContext, fork_child: bool):
    yield Compute(msec(1))
    yield from context.pools["scroll"].touch(10)
    if fork_child:
        yield Fork(
            _scroll_child, (context,), name="scroll-child",
            priority=3, detached=True,
        )


def _scroll_child(context: CedarContext):
    yield Compute(usec(500))
    yield from context.pools["scroll"].touch(5)


def install_formatting(world: World, context: CedarContext) -> None:
    """Document formatting: a worker forking transients (3.6/s total)
    with second-generation children and heavy text-library traffic.

    Targets: 3.6 forks/s, 171 switches/s, 130 waits/s at 72% timeouts,
    2739 ML-enters/s, 46 CVs, 1060 MLs.
    """
    context.idle_forker.period = sec(8)
    stages = StageSet("format", 24, wait_timeout=msec(30))
    context.stage_sets["format"] = stages

    def formatter():
        rng = context.rng.fork("formatter")
        while True:
            # Format one page: a long compute chunk (the 45-50 ms
            # execution-interval peak) plus monitor traffic.
            yield Compute(msec(30))
            yield from context.pools["text"].touch(400)
            yield from context.pools["cursor"].touch(20)  # fonts/metrics
            yield from _stimulate_some(context, 3)
            yield from stages.visit_next()
            # first-generation transients fork second-generation children
            # ("third generation forked threads do not occur").
            if rng.chance(0.3):
                yield Fork(
                    _formatting_transient, (context, rng.randint(1, 2)),
                    name="fmt-transient", priority=3, detached=True,
                )
            yield Pause(msec(100))

    world.add_worker(formatter, name="formatter-worker", priority=3)


def _formatting_transient(context: CedarContext, children: int):
    yield Compute(msec(2))
    yield from context.pools["text"].touch(15)
    for _ in range(children):
        yield Fork(
            _formatting_child, (context,), name="fmt-child",
            priority=3, detached=True,
        )


def _formatting_child(context: CedarContext):
    yield Compute(msec(1))
    yield from context.pools["text"].touch(8)


def install_previewing(world: World, context: CedarContext) -> None:
    """Document previewing: moderate transient forking, graphics-heavy;
    "the previewer's transient threads simply run to completion".

    Targets: 1.6 forks/s, 222 switches/s, 157 waits/s at 56% timeouts,
    1335 ML-enters/s, 32 CVs, 938 MLs.
    """
    context.idle_forker.period = sec(8)
    stages = StageSet("preview", 10, wait_timeout=msec(25))
    context.stage_sets["preview"] = stages

    def previewer():
        rng = context.rng.fork("previewer")
        while True:
            yield Compute(msec(15))
            yield from context.pools["graphics"].touch(170)
            yield from _stimulate_some(context, 8)
            yield from stages.visit_next()
            if rng.chance(0.3):
                yield Fork(
                    _preview_transient, (context,),
                    name="preview-transient", priority=3, detached=True,
                )
            yield Pause(msec(150))

    world.add_worker(previewer, name="previewer-worker", priority=3)


def _preview_transient(context: CedarContext):
    yield Compute(msec(2))
    yield from context.pools["graphics"].touch(12)


def install_make(world: World, context: CedarContext) -> None:
    """Make: "the command-shell thread gets used as the main worker
    thread" — no forks except GC/finalization transients; sweeps the
    filesystem library checking timestamps.

    Targets: 0.3 forks/s, 170 switches/s, 158 waits/s at 61% timeouts,
    2218 ML-enters/s, 24 CVs, 1296 MLs.
    """
    context.idle_forker.period = sec(20)
    stages = StageSet("make", 2, wait_timeout=msec(25))
    context.stage_sets["make"] = stages
    cycles = [0]

    def make_worker():
        rng = context.rng.fork("make")
        while True:
            cycles[0] += 1
            yield Compute(msec(8))
            yield from context.pools["filesystem"].touch(240)
            yield from context.pools["system"].touch(20)
            yield from _stimulate_some(context, 6)
            if cycles[0] % 2 == 0:
                yield from stages.visit_next()
            if rng.chance(0.02):  # occasional finalization transient
                yield Fork(
                    _finalization_transient, (context,),
                    name="finalizer-transient", priority=2, detached=True,
                )
            yield Pause(msec(100))

    world.add_worker(make_worker, name="make-worker", priority=4)


def _finalization_transient(context: CedarContext):
    yield Compute(msec(1))
    yield from context.pools["system"].touch(6)


def install_compile(world: World, context: CedarContext) -> None:
    """Compile: long compute bursts, a sweep over the compiler library's
    per-module monitors, almost no forking, and the most timeout-driven
    waiting of any activity.

    Targets: 0.3 forks/s, 135 switches/s, 119 waits/s at 82% timeouts,
    1365 ML-enters/s, 36 CVs, 2900 MLs.
    """
    context.idle_forker.period = sec(20)
    stages = StageSet("compile", 14, wait_timeout=msec(30))
    context.stage_sets["compile"] = stages

    def compile_worker():
        rng = context.rng.fork("compile")
        while True:
            yield Compute(msec(45))  # the 45-50 ms interval peak
            yield from context.pools["compiler"].touch(160)
            yield from context.pools["system"].touch(10)
            yield from stages.visit_next()
            if rng.chance(0.02):
                yield Fork(
                    _finalization_transient, (context,),
                    name="finalizer-transient", priority=2, detached=True,
                )
            yield Pause(msec(50))

    world.add_worker(compile_worker, name="compile-worker", priority=2)


# ---------------------------------------------------------------------------
# Registry used by the analysis layer and benches
# ---------------------------------------------------------------------------

CEDAR_ACTIVITIES: dict[str, Any] = {
    "idle": None,
    "keyboard": install_keyboard,
    "mouse": install_mouse,
    "scrolling": install_scrolling,
    "formatting": install_formatting,
    "previewing": install_previewing,
    "make": install_make,
    "compile": install_compile,
}
