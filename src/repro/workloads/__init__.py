"""Synthetic Cedar and GVX worlds (paper Section 3).

The dynamic data in Tables 1-3 came from running benchmark activities on
the real systems.  Here each world is rebuilt from the paper's own
description of its thread population — how many eternal threads, what
they sleep on, who forks transients, which priorities are used — with
rate parameters calibrated so the measured statistics land in the
reported ranges.  ``repro.analysis.dynamic`` turns a run into the
tables' rows.
"""

from repro.workloads.base import ActivityResult, LibraryPool, run_activity
from repro.workloads.cedar import CEDAR_ACTIVITIES, build_cedar_world
from repro.workloads.gvx import GVX_ACTIVITIES, build_gvx_world

__all__ = [
    "ActivityResult",
    "CEDAR_ACTIVITIES",
    "GVX_ACTIVITIES",
    "LibraryPool",
    "build_cedar_world",
    "build_gvx_world",
    "run_activity",
]
