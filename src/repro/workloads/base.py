"""Workload building blocks shared by the Cedar and GVX worlds.

The synthetic worlds are assembled from three reusable pieces:

* :class:`LibraryPool` — a named population of monitors standing in for a
  subsystem's monitored modules ("reflecting their use to protect data
  structures (especially in reusable library packages)").  Threads
  ``touch`` a few random monitors per activation; the pool size bounds
  the distinct-monitor counts of Table 3.
* :class:`CvSleeper` — an eternal thread that WAITs on its own CV with a
  timeout, runs briefly, and waits again — the paper's dominant eternal-
  thread shape.  Other threads ``stimulate`` it to wake it early, which
  is what converts timeouts into notifications when the user gets active
  (the Table 2 timeout-fraction shifts).
* :func:`run_activity` — the measurement harness: build the world, warm
  it up, measure a window, return the per-activity numbers the tables
  need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.kernel.config import KernelConfig
from repro.kernel.primitives import Compute, Enter, Exit, Notify, Wait
from repro.kernel.rng import DeterministicRng
from repro.kernel.simtime import sec, usec
from repro.runtime.pcr import World
from repro.sync.condition import ConditionVariable
from repro.sync.monitor import Monitor


class LibraryPool:
    """A population of monitors modelling one subsystem's modules."""

    def __init__(self, name: str, size: int, rng: DeterministicRng) -> None:
        if size < 1:
            raise ValueError("pool needs at least one monitor")
        self.name = name
        self.monitors = [Monitor(f"{name}.m{i}") for i in range(size)]
        self._rng = rng

    def touch(self, count: int, *, work_each: int = usec(2)):
        """Enter/exit ``count`` randomly chosen monitors (generator).

        Each visit does a tiny amount of work under the lock, like the
        short monitored procedures the paper saw everywhere.
        """
        for _ in range(count):
            monitor = self._rng.choice(self.monitors)
            yield Enter(monitor)
            try:
                if work_each:
                    yield Compute(work_each)
            finally:
                yield Exit(monitor)


class CvSleeper:
    """An eternal thread: WAIT on a CV with timeout, run briefly, repeat.

    "There were eternal threads that repeatedly waited on a condition
    variable and then ran briefly before waiting again."  Activations
    touch ``touches`` monitors in ``pool`` and burn ``work`` CPU; the
    wait times out after ``period`` unless someone stimulates the thread.
    """

    def __init__(
        self,
        name: str,
        *,
        period: int,
        pool: LibraryPool,
        touches: int = 3,
        work: int = usec(200),
        peers: "list[CvSleeper] | None" = None,
        stimulate_peer_prob: float = 0.0,
        rng: DeterministicRng | None = None,
    ) -> None:
        self.name = name
        self.monitor = Monitor(f"{name}.lock")
        self.cv = ConditionVariable(self.monitor, f"{name}.cv", timeout=period)
        self.pool = pool
        self.touches = touches
        self.work = work
        self.activations = 0
        self.pending_stimuli = 0
        #: Idle worlds still notify: finalization callbacks, cache pokes,
        #: pipeline nudges between eternal threads (the reason only ~82%
        #: of idle Cedar waits time out, not 100%).
        self.peers = peers if peers is not None else []
        self.stimulate_peer_prob = stimulate_peer_prob
        self._rng = rng

    def proc(self):
        while True:
            yield Enter(self.monitor)
            try:
                yield Wait(self.cv)  # timeout or stimulation, either wakes
                if self.pending_stimuli > 0:
                    self.pending_stimuli -= 1
            finally:
                yield Exit(self.monitor)
            self.activations += 1
            if self.work:
                yield Compute(self.work)
            if self.touches:
                yield from self.pool.touch(self.touches)
            if (
                self.peers
                and self._rng is not None
                and self._rng.chance(self.stimulate_peer_prob)
            ):
                peer = self._rng.choice(self.peers)
                if peer is not self:
                    yield from peer.stimulate()

    def stimulate(self):
        """Wake the sleeper early (generator, run on the waking thread)."""
        yield Enter(self.monitor)
        try:
            self.pending_stimuli += 1
            yield Notify(self.cv)
        finally:
            yield Exit(self.monitor)


class StageSet:
    """A fixed population of monitor+CV pipeline stages.

    Activities bring their own condition variables with them — formatting
    waits on 46 distinct CVs where idle Cedar waits on 22 (Table 3).  A
    StageSet models those activity-specific CVs: worker code ``visit``\\ s
    a stage, briefly waiting on its CV (usually timing out, sometimes
    notified by a peer), which is enough to register the CV as used and
    contribute its share of wait traffic.
    """

    def __init__(self, name: str, count: int, *, wait_timeout: int) -> None:
        self.name = name
        self.stages = []
        for index in range(count):
            monitor = Monitor(f"{name}.stage{index}.lock")
            cv = ConditionVariable(
                monitor, f"{name}.stage{index}.cv", timeout=wait_timeout
            )
            self.stages.append((monitor, cv))
        self._next = 0

    def visit_next(self):
        """Wait once on the next stage round-robin (generator)."""
        monitor, cv = self.stages[self._next % len(self.stages)]
        self._next += 1
        yield Enter(monitor)
        try:
            yield Wait(cv)
        finally:
            yield Exit(monitor)

    def signal(self, index: int):
        """Notify one stage (generator) — a peer finished its part."""
        monitor, cv = self.stages[index % len(self.stages)]
        yield Enter(monitor)
        try:
            yield Notify(cv)
        finally:
            yield Exit(monitor)


@dataclass
class ActivityResult:
    """One Table-1/2/3 row, measured."""

    system: str
    activity: str
    duration: int
    forks_per_sec: float = 0.0
    switches_per_sec: float = 0.0
    waits_per_sec: float = 0.0
    timeout_fraction: float = 0.0
    ml_enters_per_sec: float = 0.0
    contention_fraction: float = 0.0
    distinct_cvs: int = 0
    distinct_mls: int = 0
    max_live_threads: int = 0
    extras: dict[str, Any] = field(default_factory=dict)


#: An activity: installs its drivers into a built world.
ActivityBuilder = Callable[[World, Any], None]


def run_activity(
    *,
    system: str,
    activity: str,
    build_world: Callable[[KernelConfig], tuple[World, Any]],
    install: ActivityBuilder | None,
    warmup: int = sec(3),
    window: int = sec(10),
    seed: int = 0,
) -> ActivityResult:
    """Build a world, install an activity, measure a window.

    ``build_world`` returns ``(world, context)`` where context carries the
    world's pools/devices for the activity to hook into.  ``install`` may
    be None for the idle rows.
    """
    world, context = build_world(KernelConfig(seed=seed))
    if install is not None:
        install(world, context)
    world.run_for(warmup)
    world.begin_measurement()
    world.run_for(window)
    stats = world.end_measurement()
    kernel_stats = world.kernel.stats
    result = ActivityResult(
        system=system,
        activity=activity,
        duration=stats.duration,
        forks_per_sec=stats.rate("forks"),
        switches_per_sec=stats.rate("switches"),
        waits_per_sec=stats.rate("cv_waits"),
        timeout_fraction=stats.fraction("cv_timeouts", "cv_waits"),
        ml_enters_per_sec=stats.rate("ml_enters"),
        contention_fraction=stats.fraction("ml_contended", "ml_enters"),
        distinct_cvs=stats.counts["cvs_used"],
        distinct_mls=stats.counts["monitors_used"],
        max_live_threads=kernel_stats.max_live_threads,
    )
    # Keep the interval samples for the F1/F2 analyses before teardown.
    result.extras["exec_intervals"] = list(kernel_stats.exec_intervals)
    result.extras["cpu_by_priority"] = dict(kernel_stats.cpu_by_priority)
    result.extras["thread_log"] = list(kernel_stats.thread_log)
    result.extras["lifetimes"] = list(kernel_stats.lifetimes)
    world.shutdown()
    return result
