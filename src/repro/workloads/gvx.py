"""The synthetic GVX world (paper Section 3, Tables 1-3).

GVX is the product system and behaves "noticeably different" from Cedar:

* "An idle GVX world contains 22 eternal threads and forks no additional
  threads.  In fact, no additional threads are forked for any user
  interface activity, be it keyboard, mouse, or windowing activity."
* "GVX sets almost all of its threads to priority level 3, using the
  lower two priority levels only for a few background helper tasks.  Two
  of the five low-priority threads in fact never ran during our
  experiments."  GVX uses level 5 (not 7) for its input watcher and
  level 6 for the system daemon.
* Only ~5 distinct CVs are waited on when idle (Table 3): GVX organises
  its eternal threads into worker *pools* sharing a CV each, rather than
  Cedar's one-CV-per-sleeper style.
* Thread switching is far lower than Cedar (33-60/sec): input is polled
  and batch-drained rather than pipelined per event.
* Monitor contention is *higher* than Cedar (0.2-0.4% vs 0.01-0.1%):
  GVX handlers do real work while holding a central display monitor, so
  an input-thread preemption regularly lands mid-critical-section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.kernel.channel import Channel
from repro.kernel.config import KernelConfig
from repro.kernel.primitives import (
    Channelreceive,
    Compute,
    Enter,
    Exit,
    Notify,
    Pause,
    Wait,
)
from repro.kernel.rng import DeterministicRng
from repro.kernel.simtime import msec, sec, usec
from repro.runtime.pcr import World
from repro.sync.condition import ConditionVariable
from repro.sync.monitor import Monitor
from repro.workloads.base import LibraryPool, StageSet


#: Table 3 GVX idle: 48 distinct MLs.
CORE_POOL_SIZE = 40
#: Keyboard brings the text machinery in (Table 3: 204 MLs).
TEXT_POOL_SIZE = 165
#: Scrolling brings the display machinery in (Table 3: 209 MLs).
DISPLAY_POOL_SIZE = 170

#: The input watcher polls and batch-drains its device (low switch rates).
INPUT_POLL_PERIOD = msec(250)


class WorkerPool:
    """N eternal threads sharing one work queue and one CV.

    The GVX shape: many threads, few condition variables.  Idle workers
    wake by timeout, do a little housekeeping, and wait again (Table 2
    GVX idle: 99% of waits time out).
    """

    def __init__(
        self,
        name: str,
        *,
        workers: int,
        timeout: int,
        pool: LibraryPool,
        housekeeping_touches: int,
        work_touches: int,
        work_compute: int = usec(300),
        hold_lock: Monitor | None = None,
        hold_time: int = 0,
    ) -> None:
        self.name = name
        self.monitor = Monitor(f"{name}.lock")
        self.cv = ConditionVariable(self.monitor, f"{name}.cv", timeout=timeout)
        self.worker_count = workers
        self.pool = pool
        self.housekeeping_touches = housekeeping_touches
        self.work_touches = work_touches
        self.work_compute = work_compute
        #: Optional long critical section taken while processing marked
        #: items — GVX repaints hold the display lock for tens of
        #: milliseconds, which is where its 0.2-0.4% contention (Table 2
        #: text) comes from: the hold spans a quantum rotation and a peer
        #: worker blocks on the lock.
        self.hold_lock = hold_lock
        self.hold_time = hold_time
        self.items: list[Any] = []
        self.processed = 0

    def post(self, item: Any):
        """Queue one work item and wake a worker (generator)."""
        yield Enter(self.monitor)
        try:
            self.items.append(item)
            yield Notify(self.cv)
        finally:
            yield Exit(self.monitor)

    def worker_proc(self):
        while True:
            item = None
            yield Enter(self.monitor)
            try:
                yield Wait(self.cv)  # timeout or a posted item
                if self.items:
                    item = self.items.pop(0)
            finally:
                yield Exit(self.monitor)
            if item is None:
                # Idle housekeeping: age caches, poll state.  Every other
                # activation does a longer sweep — GVX's 0-5 ms interval
                # share is 50-70%, lower than Cedar's.
                self._hk_flip = not getattr(self, "_hk_flip", False)
                yield Compute(msec(8) if self._hk_flip else usec(100))
                yield from self.pool.touch(self.housekeeping_touches)
            else:
                kind = item[0] if isinstance(item, tuple) else item
                if self.hold_lock is not None and kind in ("key", "echo", "repair"):
                    yield Enter(self.hold_lock)
                    try:
                        yield Compute(self.hold_time)
                        yield from self.pool.touch(self.work_touches)
                    finally:
                        yield Exit(self.hold_lock)
                else:
                    yield Compute(self.work_compute)
                    yield from self.pool.touch(self.work_touches)
                self.processed += 1


@dataclass
class GvxContext:
    rng: DeterministicRng
    pools: dict[str, LibraryPool] = field(default_factory=dict)
    worker_pools: dict[str, WorkerPool] = field(default_factory=dict)
    input_channel: Channel | None = None
    display_lock: Monitor | None = None
    #: event -> generator handlers, keyed by event kind.
    handlers: dict[str, Any] = field(default_factory=dict)


def build_gvx_world(config: KernelConfig) -> tuple[World, GvxContext]:
    """An idle GVX world: 22 eternal threads, no forking, ever."""
    world = World(config)
    rng = DeterministicRng(config.seed).fork("gvx-world")
    context = GvxContext(rng=rng)
    context.pools["core"] = LibraryPool("gvx-core", CORE_POOL_SIZE, rng.fork("core"))
    context.pools["text"] = LibraryPool("gvx-text", TEXT_POOL_SIZE, rng.fork("text"))
    context.pools["display"] = LibraryPool(
        "gvx-display", DISPLAY_POOL_SIZE, rng.fork("display")
    )
    context.display_lock = Monitor("gvx-display-lock")
    context.input_channel = world.add_device("gvx-input")

    core = context.pools["core"]
    # Three worker pools, one CV each + two private sleepers = the 5
    # distinct idle CVs of Table 3.   14 pool workers in all.
    pool_specs = [
        ("paint", 5, msec(450), 12),
        ("layout", 5, msec(500), 11),
        ("io", 4, msec(550), 13),
    ]
    for name, workers, timeout, touches in pool_specs:
        wp = WorkerPool(
            name,
            workers=workers,
            timeout=timeout,
            pool=core,
            housekeeping_touches=touches,
            work_touches=55,
        )
        context.worker_pools[name] = wp
        for index in range(workers):
            world.add_eternal(
                wp.worker_proc, name=f"{name}-worker-{index}", priority=3
            )

    # Two private CV sleepers (cursor blink, cache ager).
    for index, period in enumerate((msec(400), msec(600))):
        sleeper = _PrivateSleeper(f"gvx-sleeper-{index}", period, core)
        world.add_eternal(sleeper.proc, name=sleeper.name, priority=3)

    # The input watcher at priority 5 ("GVX does the opposite" of Cedar's
    # level-7 choice).
    world.add_eternal(
        _input_watcher_proc, (context,), name="gvx-input-watcher", priority=5
    )

    # Four low-priority background helpers; two are parked on channels
    # that never see traffic ("in fact never ran during our experiments").
    for index in range(2):
        world.add_eternal(
            _background_helper, (core, msec(800 + 200 * index) if index else msec(700)),
            name=f"gvx-helper-{index}", priority=1 + index,
        )
    for index in range(2):
        never = world.add_device(f"gvx-never-{index}")
        world.add_eternal(
            _parked_helper, (never,), name=f"gvx-parked-{index}",
            priority=1 + index,
        )

    # The system daemon at level 6 — thread #22.
    world.install_daemon(period=msec(500))
    return world, context


class _PrivateSleeper:
    """A GVX eternal with its own CV (cursor blinker style)."""

    def __init__(self, name: str, period: int, pool: LibraryPool) -> None:
        self.name = name
        self.monitor = Monitor(f"{name}.lock")
        self.cv = ConditionVariable(self.monitor, f"{name}.cv", timeout=period)
        self.pool = pool

    def proc(self):
        while True:
            yield Enter(self.monitor)
            try:
                yield Wait(self.cv)
            finally:
                yield Exit(self.monitor)
            yield Compute(usec(80))
            yield from self.pool.touch(2)


def _background_helper(pool: LibraryPool, period: int):
    """One helper sweeps in ~46 ms chunks (the GVX share of execution
    time in 45-50 ms intervals is 30-80%, Section 3); the other does
    small housekeeping."""
    sweep = period <= msec(800)
    while True:
        yield Pause(period)
        if sweep:
            yield Compute(msec(46))
        else:
            yield Compute(usec(100))
        yield from pool.touch(2)


def _parked_helper(channel: Channel):
    """Blocked forever on a device that never produces (never runs)."""
    while True:
        yield Channelreceive(channel)


def _input_watcher_proc(context: GvxContext):
    """GVX input handling: poll the device, batch-drain, handle inline.

    Draining in batches (rather than waking per event) is what keeps the
    GVX switch rates so low (Table 1: 33-60/sec).
    """
    channel = context.input_channel
    while True:
        yield Pause(INPUT_POLL_PERIOD)
        # Atomic drain: thread code runs to the next yield without
        # interleaving, so reading the channel's buffer directly is safe.
        batch = list(channel.items)
        channel.items.clear()
        for kind, event in batch:
            handler = context.handlers.get(kind)
            if handler is not None:
                yield from handler(event)


# ---------------------------------------------------------------------------
# Activities
# ---------------------------------------------------------------------------


def install_keyboard(world: World, context: GvxContext, *, keys_per_sec: float = 4.0) -> None:
    """Typing on GVX: handled by eternal threads, zero forks."""

    context.worker_pools["paint"].hold_lock = context.display_lock
    context.worker_pools["paint"].hold_time = msec(52)
    stages = StageSet("gvx-echo", 2, wait_timeout=msec(25))
    keys = [0]

    def handle_key(event):
        keys[0] += 1
        if keys[0] % 2 == 0:
            yield from stages.visit_next()
        yield Compute(usec(150))
        # Echo path: hold the display lock while updating the glyph —
        # the critical section behind GVX's higher contention numbers.
        yield Enter(context.display_lock)
        try:
            yield Compute(msec(2))
            yield from context.pools["text"].touch(35)
        finally:
            yield Exit(context.display_lock)
        # Fan work out to the pools (notified wakes: Table 2's timeout
        # fraction drops from 99% to ~42% while typing).
        yield from context.worker_pools["paint"].post(("key", event))
        yield from context.worker_pools["paint"].post(("echo", event))
        yield from context.worker_pools["layout"].post(("key", event))
        yield from context.worker_pools["layout"].post(("reflow", event))
        yield from context.worker_pools["io"].post(("typescript", event))

    def work_touch_text():
        return context.pools["text"]

    # Typed keys go straight at the pools' text machinery.
    for wp in context.worker_pools.values():
        wp.pool = context.pools["text"]
    context.handlers["key"] = handle_key
    period = round(sec(1) / keys_per_sec)
    world.kernel.post_every(
        period, lambda k: context.input_channel.post(("key", "keystroke"))
    )


def install_mouse(world: World, context: GvxContext, *, moves_per_sec: float = 40.0) -> None:
    """Mouse motion on GVX: polled, coalesced, handled inline."""
    moves = [0]

    def handle_motion(event):
        moves[0] += 1
        yield Compute(usec(40))
        yield from context.pools["core"].touch(1)
        if moves[0] % 30 == 0:
            # The occasional cursor-shape change wakes a paint worker.
            yield from context.worker_pools["paint"].post(("cursor", event))

    context.handlers["mouse"] = handle_motion
    period = round(sec(1) / moves_per_sec)
    world.kernel.post_every(
        period, lambda k: context.input_channel.post(("mouse", "motion"))
    )


def install_scrolling(world: World, context: GvxContext, *, scrolls_per_sec: float = 2.0) -> None:
    """Scrolling on GVX: long repaints under the display lock."""

    context.worker_pools["paint"].hold_lock = context.display_lock
    context.worker_pools["paint"].hold_time = msec(52)
    stages = StageSet("gvx-scroll", 1, wait_timeout=msec(25))
    scrolls = [0]

    def handle_scroll(event):
        scrolls[0] += 1
        if scrolls[0] % 2 == 0:
            yield from stages.visit_next()
        yield Compute(usec(200))
        yield Enter(context.display_lock)
        try:
            yield Compute(msec(4))  # bitblt under the lock
            yield from context.pools["display"].touch(130)
        finally:
            yield Exit(context.display_lock)
        for _ in range(2):
            yield from context.worker_pools["paint"].post(("repair", event))
        for _ in range(3):
            yield from context.worker_pools["layout"].post(("relayout", event))

    for wp in context.worker_pools.values():
        wp.pool = context.pools["display"]
        wp.work_touches = 20
    context.handlers["scroll"] = handle_scroll
    period = round(sec(1) / scrolls_per_sec)
    world.kernel.post_every(
        period, lambda k: context.input_channel.post(("scroll", "click"))
    )


GVX_ACTIVITIES: dict[str, Any] = {
    "idle": None,
    "keyboard": install_keyboard,
    "mouse": install_mouse,
    "scrolling": install_scrolling,
}
