"""Counterexample minimization: shrink a failing schedule to its core.

A failing :class:`DecisionTrace` from a random walk is long and mostly
noise — hundreds of decisions, of which perhaps one actually matters.
Minimization replays the scenario with ever-smaller forced prefixes
(everything past the prefix falls to choice 0, the baseline):

1. **Prefix binary search** — find the shortest forced prefix that still
   fails.  Failing is monotone in practice (forcing more of a failing
   schedule keeps it failing), which is what makes bisection sound; the
   final greedy pass does not depend on monotonicity.
2. **Greedy sparsification** — try zeroing each remaining non-baseline
   decision (deepest first); keep the zero whenever the schedule still
   fails.
3. **Trim** — trailing baseline decisions force nothing; drop them.

The result is the minimal forced-choice list plus a determinism proof:
two fresh replays of the final trace must produce byte-identical run
fingerprints (trace hash and stats hash).  Because fault decisions
default to per-decision forked streams (not a shared sequential
stream), forcing a prefix cannot shift any unforced decision — replays
are stable under shrinking by construction; the double replay verifies
it end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.explore.driver import ScheduleOutcome, run_schedule
from repro.explore.scenarios import ExploreScenario
from repro.explore.trace import TAIL_BASELINE, ScheduleController


@dataclass
class MinimizedCounterexample:
    scenario: str
    seed: int
    #: The minimal forced-choice list (positional, baseline tail).
    choices: list
    #: Outcome of replaying exactly ``choices``.
    outcome: ScheduleOutcome
    #: The violation message the minimal schedule produces.
    violation: str = ""
    #: Run fingerprint of the minimal schedule's replay.
    replay_hash: dict = field(default_factory=dict)
    #: True iff two independent replays fingerprint identically.
    deterministic: bool = False
    #: Replays spent minimizing (budget accounting).
    replays: int = 0

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "choices": list(self.choices),
            "violation": self.violation,
            "replay_hash": dict(self.replay_hash),
            "deterministic": self.deterministic,
            "replays": self.replays,
        }

    def render(self) -> str:
        """Human-readable interleaving of the minimal schedule."""
        header = (
            f"minimal counterexample for {self.scenario!r} "
            f"(seed {self.seed}, {len(self.choices)} forced decisions, "
            f"{'deterministic' if self.deterministic else 'UNSTABLE'})\n"
            f"violation: {self.violation}\n"
        )
        return header + self.outcome.trace.render()


def replay(
    scenario: ExploreScenario, choices, *, seed: int = 0
) -> ScheduleOutcome:
    """Run ``scenario`` forcing ``choices`` positionally, baseline tail."""
    controller = ScheduleController(force=list(choices), tail=TAIL_BASELINE)
    return run_schedule(scenario, controller, seed=seed)


def minimize(
    scenario: ExploreScenario,
    failing: ScheduleOutcome,
    *,
    max_replays: int = 500,
    progress: "Callable[[str], None] | None" = None,
) -> "MinimizedCounterexample | None":
    """Shrink ``failing``'s trace to a minimal forced schedule.

    Returns None when the full recorded trace does not reproduce the
    violation under forced replay (a recorder/replayer divergence —
    itself a bug, surfaced rather than masked).
    """
    say = progress or (lambda line: None)
    seed = failing.seed
    replays = 0

    def fails(choices) -> "ScheduleOutcome | None":
        nonlocal replays
        if replays >= max_replays:
            return None
        replays += 1
        outcome = replay(scenario, choices, seed=seed)
        return outcome if outcome.violation is not None else None

    full = failing.trace.choices
    baseline = fails(full)
    if baseline is None:
        say(f"minimize: full trace ({len(full)} decisions) does not replay")
        return None

    # 1. Shortest failing prefix, by bisection.
    lo, hi = 0, len(full)
    while lo < hi:
        mid = (lo + hi) // 2
        if fails(full[:mid]) is not None:
            hi = mid
        else:
            lo = mid + 1
    choices = list(full[:hi])

    # 2. Greedy sparsification: zero surviving non-baseline decisions.
    for position in range(len(choices) - 1, -1, -1):
        if choices[position] == 0:
            continue
        candidate = choices[:position] + [0] + choices[position + 1:]
        if fails(candidate) is not None:
            choices = candidate

    # 3. Trailing zeros force nothing.
    while choices and choices[-1] == 0:
        choices.pop()

    # Determinism proof: two fresh replays, identical fingerprints.
    first = replay(scenario, choices, seed=seed)
    second = replay(scenario, choices, seed=seed)
    replays += 2
    deterministic = (
        first.violation is not None
        and first.violation == second.violation
        and first.fingerprint == second.fingerprint
    )
    say(
        f"minimize: {len(full)} -> {len(choices)} decisions "
        f"({sum(1 for c in choices if c)} non-baseline) in {replays} replays"
    )
    return MinimizedCounterexample(
        scenario=scenario.name,
        seed=seed,
        choices=choices,
        outcome=first,
        violation=first.violation or "",
        replay_hash=first.fingerprint,
        deterministic=deterministic,
        replays=replays,
    )
