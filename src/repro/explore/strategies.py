"""Exploration strategies: who answers the decision points.

Each strategy produces one :class:`ScheduleController` per schedule and
observes the resulting trace, so stateful strategies (the exhaustive
enumerator, PCT's length estimate) can steer the next schedule.  All
are pure functions of their seed — an exploration run is as replayable
as a single schedule.

* :class:`RandomWalkStrategy` — every decision uniform over its
  alternatives, an independent stream per schedule.  The workhorse:
  fault sites fire ~50% per opportunity regardless of plan rates, so
  rare interleavings are dense in its sample space.
* :class:`PctStrategy` — probabilistic concurrency testing (Burckhardt
  et al.): each schedule assigns random exploration priorities to
  threads, always picks the highest-priority candidate at scheduler
  sites, and demotes the running choice at ``d`` random change points.
  Bugs of "depth" d are found with probability >= 1/(n * k^d).  Fault
  sites fall through to the plan's own (per-decision-forked) sampling.
* :class:`SeedSweepStrategy` — the pre-exploration baseline: default
  decisions, a different kernel seed per schedule.
* :class:`ExhaustivePrefixStrategy` — complete lexicographic DFS over
  the decision tree up to ``horizon`` decisions: run the all-baseline
  schedule, then repeatedly increment the deepest incrementable
  decision and reset the tail to baseline.  Visits every schedule of
  the bounded tree exactly once; ``exhausted`` flips when done.
"""

from __future__ import annotations

from typing import Any

from repro.kernel.rng import DeterministicRng
from repro.explore.trace import (
    TAIL_BASELINE,
    TAIL_DEFAULT,
    DecisionPoint,
    DecisionTrace,
    ScheduleController,
)


class Strategy:
    """Base: one controller per schedule index, plus feedback."""

    name = "strategy"
    #: Set by enumerating strategies when the space is fully explored.
    exhausted = False

    def controller(self, index: int) -> ScheduleController:
        raise NotImplementedError

    def observe(self, trace: DecisionTrace) -> None:
        """Called after each schedule with its recorded trace."""

    def kernel_seed(self, index: int, base_seed: int) -> int:
        """The kernel seed for schedule ``index`` (default: fixed)."""
        return base_seed


class RandomWalkStrategy(Strategy):
    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def controller(self, index: int) -> ScheduleController:
        rng = DeterministicRng(self._seed).fork(f"walk:{index}")

        def chooser(point: DecisionPoint) -> int:
            return rng.randint(0, point.n - 1)

        return ScheduleController(chooser=chooser, tail=TAIL_DEFAULT)


class PctStrategy(Strategy):
    name = "pct"

    def __init__(self, seed: int = 0, depth: int = 3) -> None:
        self._seed = seed
        self.depth = depth
        #: Rolling estimate of schedule length (decision count) used to
        #: place change points; refined from each observed trace.
        self._length_estimate = 32

    def controller(self, index: int) -> ScheduleController:
        rng = DeterministicRng(self._seed).fork(f"pct:{index}")
        priorities: dict[str, float] = {}
        span = max(self._length_estimate, self.depth, 1)
        change_points = {rng.randint(0, span - 1) for _ in range(self.depth)}
        state = {"sched_decisions": 0, "demotions": 0}

        def priority_of(label: str) -> float:
            if label not in priorities:
                priorities[label] = rng.uniform()
            return priorities[label]

        def chooser(point: DecisionPoint) -> "int | None":
            # Scheduler picks and store-buffer drains are both "which
            # thread steps next" choices; faults follow the plan's own
            # (per-decision-forked) sampling.
            if not (point.site.startswith("sched.") or point.site == "mem.drain"):
                return None
            if not point.labels:
                return None
            best = max(range(point.n), key=lambda i: priority_of(point.labels[i]))
            if state["sched_decisions"] in change_points:
                # A change point: the chosen thread falls to the bottom
                # of the exploration order from here on.
                state["demotions"] += 1
                priorities[point.labels[best]] = -float(state["demotions"])
            state["sched_decisions"] += 1
            return best

        return ScheduleController(chooser=chooser, tail=TAIL_DEFAULT)

    def observe(self, trace: DecisionTrace) -> None:
        if len(trace):
            self._length_estimate = max(len(trace), 1)


class SeedSweepStrategy(Strategy):
    name = "seeds"

    def controller(self, index: int) -> ScheduleController:
        return ScheduleController(tail=TAIL_DEFAULT)

    def kernel_seed(self, index: int, base_seed: int) -> int:
        return base_seed + index


class ExhaustivePrefixStrategy(Strategy):
    name = "exhaustive"

    def __init__(self, horizon: int = 64) -> None:
        self.horizon = horizon
        self._next_prefix: "list[int] | None" = []

    def controller(self, index: int) -> ScheduleController:
        if self._next_prefix is None:
            raise RuntimeError("exploration space exhausted")
        return ScheduleController(force=self._next_prefix, tail=TAIL_BASELINE)

    def observe(self, trace: DecisionTrace) -> None:
        choices = trace.choices
        ns = [d.n for d in trace.decisions]
        # Lexicographic successor with baseline tails: bump the deepest
        # incrementable decision (within the horizon), drop everything
        # after it.  When nothing can be bumped, the bounded tree is
        # fully visited.
        for j in range(min(len(choices), self.horizon) - 1, -1, -1):
            if choices[j] + 1 < ns[j]:
                self._next_prefix = choices[:j] + [choices[j] + 1]
                return
        self._next_prefix = None
        self.exhausted = True


#: CLI registry.
STRATEGIES: dict[str, Any] = {
    "random": RandomWalkStrategy,
    "pct": PctStrategy,
    "seeds": SeedSweepStrategy,
    "exhaustive": ExhaustivePrefixStrategy,
}


def make_strategy(name: str, *, seed: int = 0, **kwargs: Any) -> Strategy:
    """Instantiate a strategy by CLI name (seed passed where taken)."""
    if name == "random":
        return RandomWalkStrategy(seed=seed)
    if name == "pct":
        return PctStrategy(seed=seed, **kwargs)
    if name == "seeds":
        return SeedSweepStrategy()
    if name == "exhaustive":
        return ExhaustivePrefixStrategy(**kwargs)
    raise ValueError(f"unknown strategy: {name!r}")
