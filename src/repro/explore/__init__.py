"""Systematic schedule exploration over the kernel's decision points.

The kernel is deterministic in its seed, which makes single runs
reproducible but leaves every *other* legal schedule unexamined.  This
package turns each nondeterministic choice the kernel (or its fault
injector) makes into a recorded, forcible decision, then searches the
space of schedules for invariant violations and shrinks what it finds
to a minimal, replayable counterexample.

Layers:

* :mod:`repro.explore.trace` — :class:`DecisionTrace` (the record) and
  :class:`ScheduleController` (the seam the kernel consults);
* :mod:`repro.explore.strategies` — random walk, PCT, seed sweep,
  exhaustive bounded enumeration;
* :mod:`repro.explore.scenarios` — what to explore and what counts as
  a violation;
* :mod:`repro.explore.driver` — the per-schedule invariant harness and
  the exploration loop;
* :mod:`repro.explore.minimize` — prefix bisection + greedy
  sparsification down to a minimal forced schedule.

Entry point: ``python -m repro explore`` (see ``docs/EXPLORATION.md``).
"""

from repro.explore.driver import (
    ExploreResult,
    ScheduleOutcome,
    all_waiting,
    explore,
    run_schedule,
)
from repro.explore.minimize import MinimizedCounterexample, minimize, replay
from repro.explore.scenarios import CLEAN, DIRECTED, SCENARIOS, ExploreScenario, resolve
from repro.explore.strategies import (
    STRATEGIES,
    ExhaustivePrefixStrategy,
    PctStrategy,
    RandomWalkStrategy,
    SeedSweepStrategy,
    Strategy,
    make_strategy,
)
from repro.explore.trace import (
    TAIL_BASELINE,
    TAIL_DEFAULT,
    Decision,
    DecisionPoint,
    DecisionTrace,
    ScheduleController,
)

__all__ = [
    "CLEAN",
    "DIRECTED",
    "Decision",
    "DecisionPoint",
    "DecisionTrace",
    "ExhaustivePrefixStrategy",
    "ExploreResult",
    "ExploreScenario",
    "MinimizedCounterexample",
    "PctStrategy",
    "RandomWalkStrategy",
    "SCENARIOS",
    "STRATEGIES",
    "ScheduleController",
    "ScheduleOutcome",
    "SeedSweepStrategy",
    "Strategy",
    "TAIL_BASELINE",
    "TAIL_DEFAULT",
    "all_waiting",
    "explore",
    "make_strategy",
    "minimize",
    "replay",
    "resolve",
    "run_schedule",
]
