"""Decision traces and the schedule-controller seam.

A kernel run is nondeterministic at a small, enumerable set of *decision
sites*: the pick among equal-best ready threads, the fair-share lottery
draw, the donation target when several candidates tie, the optional
extra wake of an at-least-one NOTIFY, and every fault-plan sample
(steal this NOTIFY?  wake which waiter spuriously?  kill whom?).  The
:class:`ScheduleController` sits at all of them via
``KernelConfig.schedule_controller`` and turns a run into a pure
function of ``(config, seed, decisions)``:

* **record** — no chooser, no forced choices: every site takes its
  *default* (exactly what the uncontrolled kernel would have done) and
  is appended to the trace.  A recorded run is byte-identical to an
  uncontrolled one; the golden record/replay property test pins this.
* **drive** — a ``chooser`` callback (an exploration strategy) answers
  each :class:`DecisionPoint`, or returns None to take the default.
* **replay** — ``force`` pins the first ``len(force)`` decisions, in
  global order, to recorded choices; later sites fall back to the
  default or, under ``tail="baseline"``, to choice 0.

Choice 0 is by convention the *quietest* option at every site: FIFO
head at pick sites, no injection at fault sites.  That makes the
all-zero schedule the canonical baseline, which is what counterexample
minimization (:mod:`repro.explore.minimize`) shrinks toward — a minimal
trace is just its non-zero decisions.

Defaults never perturb unrelated RNG streams: scheduler-owned sites
(lottery, extra wake) draw from the same legacy stream an uncontrolled
run uses, and fault sites derive a fresh stream per decision
(``fork(f"{kind}:{seq}")``), so forcing any prefix leaves every later
default exactly where it was — the property that makes a minimized
trace replay its fault sequence byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

#: Unforced, unchosen sites take the legacy default (what an
#: uncontrolled kernel would do, same RNG streams and all).
TAIL_DEFAULT = "default"
#: Unforced, unchosen sites take choice 0 (FIFO pick, no fault).  Used
#: by minimization so a shrunk prefix runs against a quiet tail.
TAIL_BASELINE = "baseline"

#: Decision sites, for reference and for strategies that filter by kind.
SITE_PICK = "sched.pick"
SITE_LOTTERY = "sched.lottery"
SITE_DONEE = "sched.donee"
SITE_NOTIFY_EXTRA = "sched.notify_extra"
SITE_DROP_NOTIFY = "fault.drop_notify"
SITE_SPURIOUS = "fault.spurious"
SITE_SPURIOUS_VICTIM = "fault.spurious_victim"
SITE_KILL = "fault.kill"
SITE_KILL_VICTIM = "fault.kill_victim"
SITE_FORK_FAIL = "fault.fork_fail"
SITE_TIMER_JITTER = "fault.timer_jitter"
#: Store-buffer drain offer under the tso/pso memory models: choice 0
#: holds every buffer (the baseline and recorded default); choice k
#: commits the k-th offered store.  Labels name the owning thread and
#: variable ("writer drains flag"), so rendered traces read as
#: interleavings of commits.
SITE_MEM_DRAIN = "mem.drain"


@dataclass(frozen=True)
class DecisionPoint:
    """What a chooser sees: a site about to decide, without the answer."""

    site: str
    #: Per-site sequence number (the seq-th time this site fired).
    seq: int
    #: Global decision index within the run.
    index: int
    #: Number of alternatives; choices are integers in ``[0, n)``.
    n: int
    #: Simulated time of the decision.
    time: int
    #: Human-readable alternative names (thread names at pick sites;
    #: may be empty for boolean sites).
    labels: tuple[str, ...] = ()


@dataclass(frozen=True)
class Decision:
    """One resolved choice point."""

    site: str
    seq: int
    n: int
    choice: int
    #: True when the choice came from a forced trace, not the default
    #: or a chooser.
    forced: bool
    time: int
    labels: tuple[str, ...] = ()

    def describe(self) -> str:
        # Labels map 1:1 onto choices only at pick-style sites; boolean
        # fire?-sites carry candidate names as context, not as options.
        if len(self.labels) == self.n:
            picked = self.labels[self.choice]
        elif self.n == 2:
            picked = "yes" if self.choice else "no"
        else:
            picked = str(self.choice)
        extra = ""
        if len(self.labels) > 1 and len(self.labels) == self.n:
            extra = f"  (of: {', '.join(self.labels)})"
        elif self.labels and len(self.labels) != self.n:
            extra = f"  (candidates: {', '.join(self.labels)})"
        mark = "  [forced]" if self.forced else ""
        return (
            f"t={self.time:>9}us  {self.site}#{self.seq}"
            f" -> {picked}{extra}{mark}"
        )


@dataclass
class DecisionTrace:
    """The ordered decisions of one run, JSON round-trippable."""

    decisions: list[Decision] = field(default_factory=list)
    #: Free-form provenance: scenario, strategy, seed, violation...
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.decisions)

    @property
    def choices(self) -> list[int]:
        """The positional choice list — all a replay needs to force."""
        return [d.choice for d in self.decisions]

    def non_baseline(self) -> list[Decision]:
        """The decisions that differ from the all-zero baseline — the
        essence of a minimized counterexample."""
        return [d for d in self.decisions if d.choice != 0]

    def render(self, *, only_non_baseline: bool = False) -> str:
        """Human-readable interleaving, one line per decision."""
        shown = self.non_baseline() if only_non_baseline else self.decisions
        lines = [d.describe() for d in shown]
        if only_non_baseline:
            quiet = len(self.decisions) - len(shown)
            if quiet:
                lines.append(f"({quiet} baseline decisions elided)")
        return "\n".join(lines) if lines else "(no decisions)"

    def to_dict(self) -> dict:
        return {
            "meta": self.meta,
            "choices": self.choices,
            "decisions": [
                {
                    "site": d.site,
                    "seq": d.seq,
                    "n": d.n,
                    "choice": d.choice,
                    "forced": d.forced,
                    "time": d.time,
                    "labels": list(d.labels),
                }
                for d in self.decisions
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionTrace":
        decisions = [
            Decision(
                site=d["site"],
                seq=d["seq"],
                n=d["n"],
                choice=d["choice"],
                forced=d.get("forced", False),
                time=d.get("time", 0),
                labels=tuple(d.get("labels", ())),
            )
            for d in data.get("decisions", [])
        ]
        return cls(decisions=decisions, meta=dict(data.get("meta", {})))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "DecisionTrace":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


#: A chooser answers a DecisionPoint with a choice, or None for default.
Chooser = Callable[[DecisionPoint], "int | None"]


class ScheduleController:
    """The seam the kernel consults at every decision site.

    Attach via ``KernelConfig.schedule_controller``.  Thread-unsafe by
    design (the kernel is single-threaded); one controller per run.

    ``decide(site, n, default, labels)`` resolves one choice point:
    forced choices (positional, from a prior trace) win, then the
    chooser, then the tail policy (``default(seq)`` or baseline 0).
    Every resolution is recorded.  Sites with ``n <= 1`` are not
    decisions and are neither consulted nor recorded — a disarmed seam
    stays free, mirroring the ``chance(p <= 0)`` contract.
    """

    def __init__(
        self,
        *,
        chooser: Chooser | None = None,
        force: "Sequence[int] | DecisionTrace | None" = None,
        tail: str = TAIL_DEFAULT,
        meta: dict | None = None,
    ) -> None:
        if tail not in (TAIL_DEFAULT, TAIL_BASELINE):
            raise ValueError(f"bad tail policy: {tail!r}")
        if isinstance(force, DecisionTrace):
            force = force.choices
        self.chooser = chooser
        self.force: list[int] | None = (
            list(force) if force is not None else None
        )
        self.tail = tail
        self.trace = DecisionTrace(meta=dict(meta or {}))
        #: Forced or chosen values that fell outside ``[0, n)`` and were
        #: clamped — a replay diverging from its recording shows up here.
        self.divergences = 0
        self._kernel: Any = None
        self._site_seq: dict[str, int] = {}

    def attach(self, kernel: Any) -> None:
        """Called by the kernel during construction (for timestamps)."""
        self._kernel = kernel

    def decide(
        self,
        site: str,
        n: int,
        default: Callable[[int], int],
        labels: Iterable[str] = (),
    ) -> int:
        """Resolve one choice point; returns a choice in ``[0, n)``."""
        if n <= 1:
            return 0
        index = len(self.trace.decisions)
        seq = self._site_seq.get(site, 0)
        self._site_seq[site] = seq + 1
        now = self._kernel.now if self._kernel is not None else 0
        forced = False
        choice: int | None = None
        if self.force is not None and index < len(self.force):
            choice = self.force[index]
            forced = True
        elif self.chooser is not None:
            choice = self.chooser(
                DecisionPoint(site, seq, index, n, now, tuple(labels))
            )
        if choice is None:
            choice = 0 if self.tail == TAIL_BASELINE else default(seq)
        choice = int(choice)
        if not 0 <= choice < n:
            self.divergences += 1
            choice = max(0, min(choice, n - 1))
        self.trace.decisions.append(
            Decision(site, seq, n, choice, forced, now, tuple(labels))
        )
        return choice
