"""The exploration loop: schedules in, verdicts and counterexamples out.

One *schedule* = one deterministic kernel run of a scenario with a
:class:`ScheduleController` answering every decision point.  Each
schedule runs under the full invariant harness (the chaos checks plus a
race-detector sweep), so exploration is not just hunting the scenario's
expected bug — any schedule that leaks a monitor hold, loses a waits-for
cycle, or fails to reconcile stats is itself a finding.

Dead schedules terminate early two ways:

* the waits-for watchdog confirms a cycle (``stop_when`` fires on the
  very sweep that found it), and
* the all-waiting check: no thread is ready or running, no event or
  timeout is pending, and every live thread is blocked in a state only
  another thread could release — the schedule can never make progress
  again, so there is no point grinding fault ticks to the horizon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.chaos import check_invariants
from repro.analysis.golden import fingerprint
from repro.explore.scenarios import ExploreScenario
from repro.explore.strategies import Strategy
from repro.explore.trace import DecisionTrace, ScheduleController
from repro.kernel import Kernel, KernelConfig
from repro.kernel.thread import ThreadState


def all_waiting(kernel: Kernel) -> bool:
    """True when no live thread can ever run again.

    Conservative: any thread that could be woken by a pending event, a
    timeout, a fault tick (spurious wake of a CV waiter), or the fork
    release sweep keeps the schedule alive.
    """
    sched = kernel.scheduler
    if sched.ready_count() != 0:
        return False
    if any(cpu.current is not None for cpu in sched.cpus):
        return False
    if kernel.events.next_time() is not None:
        return False
    plan = kernel.config.fault_plan
    spurious_possible = plan is not None and plan.spurious_wakeup_prob > 0.0
    live = [t for t in kernel.threads.values() if t.alive]
    if not live:
        return False
    for thread in live:
        if thread.state in (ThreadState.BLOCKED_MONITOR, ThreadState.JOINING):
            continue
        untimed = thread.timed_epoch != thread.wait_epoch
        if thread.state is ThreadState.WAITING_CV and untimed:
            if spurious_possible:
                return False  # a fault tick could still wake it
            continue
        if thread.state is ThreadState.RECEIVING and untimed:
            continue  # nothing left to post to the channel
        return False
    return True


@dataclass
class ScheduleOutcome:
    """Everything one explored schedule produced."""

    index: int
    seed: int
    trace: DecisionTrace
    #: The scenario's expected failure, when its check tripped.
    violation: "str | None" = None
    #: Generic invariant-harness failures (never acceptable).
    harness_failures: list = field(default_factory=list)
    #: Full-run fingerprint (trace + stats hashes) for replay checks.
    fingerprint: dict = field(default_factory=dict)
    #: Clock value when the run ended (< horizon means early stop).
    stopped_at: int = 0

    @property
    def failed(self) -> bool:
        return self.violation is not None or bool(self.harness_failures)


def run_schedule(
    scenario: ExploreScenario,
    controller: ScheduleController,
    *,
    seed: int = 0,
    index: int = 0,
) -> ScheduleOutcome:
    """One controlled run of ``scenario`` under ``controller``."""
    config = KernelConfig(
        seed=seed,
        fault_plan=scenario.plan,
        watchdog=True,
        race_detection=scenario.race_detection,
        schedule_controller=controller,
    )
    kernel, shutdown = scenario.build(config)
    outcome = ScheduleOutcome(index=index, seed=seed, trace=controller.trace)

    def stop_when(k: Kernel) -> bool:
        if k.watchdog is not None and k.watchdog.deadlocks:
            return True
        return all_waiting(k)

    try:
        try:
            kernel.run_until(
                scenario.horizon, raise_on_deadlock=False, stop_when=stop_when
            )
        except Exception as error:  # noqa: BLE001 - a forced schedule
            # surfaced a workload bug; report it, don't crash the sweep.
            outcome.harness_failures.append(f"run aborted: {error!r}")
        outcome.stopped_at = kernel.now
        if kernel.watchdog is not None:
            kernel.watchdog.check(kernel.now)  # final sweep before verdicts
        outcome.violation = scenario.check(kernel)
        outcome.harness_failures.extend(
            check_invariants(kernel, expect_deadlock=False)
        )
        if kernel.race_detector is not None and kernel.race_detector.races:
            outcome.harness_failures.extend(
                f"data race: {race}" for race in kernel.race_detector.races
            )
        outcome.fingerprint = fingerprint(kernel)
    finally:
        shutdown()
    stats = kernel.stats
    if stats.live_threads != 0:
        outcome.harness_failures.append(
            f"after shutdown: live_threads={stats.live_threads}"
        )
    if stats.stack_bytes != 0:
        outcome.harness_failures.append(
            f"after shutdown: stack_bytes={stats.stack_bytes}"
        )
    return outcome


@dataclass
class ExploreResult:
    """Verdict of exploring one scenario under one strategy."""

    scenario: str
    strategy: str
    budget: int
    schedules_run: int = 0
    exhausted: bool = False
    #: The first schedule whose expected violation tripped, if any.
    found: "ScheduleOutcome | None" = None
    #: Shrunk counterexample (:class:`MinimizedCounterexample`), if found.
    minimized: object = None
    #: Schedules that broke the generic harness (always a failure).
    harness_failures: list = field(default_factory=list)
    #: A clean scenario's violation, if one tripped (always a failure).
    unexpected: "ScheduleOutcome | None" = None

    #: Set by :func:`explore` once the verdict is known.
    _ok: bool = True

    @property
    def ok(self) -> bool:
        if self.harness_failures or self.unexpected is not None:
            return False
        return self._ok

    def to_dict(self) -> dict:
        out = {
            "scenario": self.scenario,
            "strategy": self.strategy,
            "budget": self.budget,
            "schedules_run": self.schedules_run,
            "exhausted": self.exhausted,
            "ok": self.ok,
            "harness_failures": list(self.harness_failures),
        }
        if self.found is not None:
            out["found_at"] = self.found.index
            out["violation"] = self.found.violation
            out["stopped_at"] = self.found.stopped_at
        if self.unexpected is not None:
            out["unexpected_at"] = self.unexpected.index
            out["unexpected"] = self.unexpected.violation
        if self.minimized is not None:
            out["minimized"] = self.minimized.to_dict()
        return out


def explore(
    scenario: ExploreScenario,
    strategy: Strategy,
    *,
    budget: int = 200,
    seed: int = 0,
    progress: "Callable[[str], None] | None" = None,
) -> ExploreResult:
    """Drive ``strategy`` over ``scenario`` for up to ``budget`` schedules.

    Directed scenarios stop (successfully) at the first schedule whose
    expected violation trips, then shrink it; clean scenarios run the
    whole budget and fail on *any* violation.  Harness failures fail
    either kind immediately.
    """
    from repro.explore.minimize import minimize

    say = progress or (lambda line: None)
    result = ExploreResult(
        scenario=scenario.name, strategy=strategy.name, budget=budget
    )
    for index in range(budget):
        if strategy.exhausted:
            result.exhausted = True
            break
        controller = strategy.controller(index)
        outcome = run_schedule(
            scenario,
            controller,
            seed=strategy.kernel_seed(index, seed),
            index=index,
        )
        result.schedules_run += 1
        strategy.observe(outcome.trace)
        if outcome.harness_failures:
            result.harness_failures.append(
                {"index": index, "failures": list(outcome.harness_failures)}
            )
            say(f"{scenario.name}[{index}]: HARNESS {outcome.harness_failures}")
            result._ok = False
            return result
        if outcome.violation is not None:
            if scenario.expect_violation:
                say(f"{scenario.name}[{index}]: found: {outcome.violation}")
                result.found = outcome
                result.minimized = minimize(scenario, outcome, progress=say)
                result._ok = (
                    result.minimized is not None
                    and result.minimized.deterministic
                )
                return result
            say(f"{scenario.name}[{index}]: UNEXPECTED {outcome.violation}")
            result.unexpected = outcome
            result._ok = False
            return result
    if scenario.expect_violation:
        say(f"{scenario.name}: budget exhausted, violation NOT found")
        result._ok = False
    else:
        say(f"{scenario.name}: {result.schedules_run} schedules clean")
        result._ok = True
    return result
