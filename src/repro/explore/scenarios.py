"""What to explore and what counts as a violation.

Directed scenarios carry a known schedule-dependent bug and the
explorer must *find* it (and then shrink it); clean scenarios use the
paper's correct idioms and the explorer must sweep its budget without
tripping any invariant.  Builders are shared with the chaos harness
where possible so the two tools agree on what the bugs look like.

Violation checks are separate from the generic invariant harness
(:func:`repro.analysis.chaos.check_invariants`, reused per schedule):
a check names the scenario's *expected* failure — a watchdog-reported
deadlock, a consumer that never consumed — while the harness names
failures that are never acceptable (leaked monitor holds, undetected
cycles, unreconciled stats, data races).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.analysis.chaos import _abba_deadlock, _producer_consumer, _wait_if_deadlock
from repro.analysis.faults import FaultPlan
from repro.kernel import Kernel, KernelConfig, msec, sec, usec
from repro.kernel.primitives import Enter, Exit, Notify, Pause
from repro.sync.condition import ConditionVariable, await_condition_if_broken
from repro.sync.monitor import Monitor
from repro.workloads import build_cedar_world
from repro.workloads.cedar import CEDAR_ACTIVITIES


def _deadlock_check(kernel: Kernel) -> "str | None":
    """Violation = the watchdog confirmed a waits-for cycle."""
    if kernel.watchdog is not None and kernel.watchdog.deadlocks:
        first = kernel.watchdog.deadlocks[0]
        chain = " -> ".join(first.cycle + (first.cycle[0],))
        return f"partial deadlock at t={first.time}us: {chain}"
    return None


def _no_violation(kernel: Kernel) -> "str | None":
    return None


def _make_stolen_notify():
    """A single NOTIFY against an IF-guarded untimed WAIT (§4.2).

    One fault decision exists in the whole run: steal that NOTIFY or
    not.  Stolen, the consumer sleeps forever on an unowned monitor —
    invisible to the waits-for watchdog (no cycle), caught only by the
    progress check.  The exhaustive strategy finds it on schedule #1
    and the minimal counterexample is exactly one forced decision.
    """
    state: dict[str, int] = {}

    def build(config: KernelConfig):
        state.clear()
        state.update(ready=0, consumed=0)
        kernel = Kernel(config)
        lock = Monitor("explore.lock")
        ready_cv = ConditionVariable(lock, "explore.ready")

        def consumer():
            yield Enter(lock)
            try:
                # Anti-pattern: IF + untimed WAIT; one stolen NOTIFY is fatal.
                yield from await_condition_if_broken(
                    ready_cv, lambda: state["ready"] > 0
                )
                state["consumed"] += 1
            finally:
                yield Exit(lock)

        def producer():
            yield Pause(msec(5))
            yield Enter(lock)
            try:
                state["ready"] += 1
                yield Notify(ready_cv)
            finally:
                yield Exit(lock)

        kernel.fork_root(consumer, name="consumer", priority=5)
        kernel.fork_root(producer, name="producer", priority=4)
        return kernel, kernel.shutdown

    def check(kernel: Kernel) -> "str | None":
        producers_done = all(
            not t.alive for t in kernel.threads.values() if t.name == "producer"
        )
        if producers_done and state.get("consumed", 0) == 0:
            return (
                "lost wakeup: the NOTIFY was stolen and the IF-guarded "
                "consumer never consumed"
            )
        return None

    return build, check


_STOLEN_NOTIFY_BUILD, _STOLEN_NOTIFY_CHECK = _make_stolen_notify()


def _make_cluster_failover():
    """Failover under forced schedules: promotion must never lose work.

    The smallest cluster that can fail over — one replicated shard, a
    fast quantum so the health probe trips inside the horizon, and a
    deterministic train of 40 arrivals (no Poisson events, so every
    decision the explorer forces is a *scheduling* decision).  A posted
    event kills the whole primary at ``msec(30)``, mid-train.  Whatever
    interleaving the explorer picks around the kill, the balancer must
    promote the replica and the custody audit must find no vanished
    request — the tentpole invariant, checked against adversarial
    schedules instead of just the default one.
    """
    state: dict[str, Any] = {}

    def build(config: KernelConfig):
        from repro.cluster.replication import install_primary_kill
        from repro.cluster.world import build_cluster_world
        from repro.server.model import TenantSpec

        config.ncpus = 2
        config.quantum = msec(10)
        # Closed mode with zero clients registers the tenant (stats,
        # WFQ weight) without forking any traffic threads — arrivals
        # are the posted events below, nothing else.
        probe = TenantSpec(
            name="probe",
            mode="closed",
            clients=0,
            cost=usec(400),
            cost_jitter=0.0,
            deadline=msec(100),
            max_retries=1,
        )
        world, balancer = build_cluster_world(
            config,
            shards=1,
            tenants=(probe,),
            replicas=True,
            standby=False,
        )
        state["balancer"] = balancer
        minted: list = []
        original = balancer.factory.make

        def make(*args, **kwargs):
            req = original(*args, **kwargs)
            minted.append(req)
            return req

        balancer.factory.make = make
        state["minted"] = minted

        def arrive(k: Any) -> None:
            req = balancer.make_request(probe, k.now)
            balancer.stats.bump(probe.name, "offered")
            balancer.net.post(req)

        for index in range(40):
            world.kernel.post_at(msec(1) + index * usec(1500), arrive)
        install_primary_kill(world, balancer, 0, msec(30))
        return world.kernel, world.shutdown

    def check(kernel: Kernel) -> "str | None":
        from repro.cluster.replication import lost_requests

        balancer = state.get("balancer")
        if balancer is None:
            return "failover: balancer never built"
        if balancer.promotions < 1:
            return "failover: the dead primary was never promoted"
        lost = lost_requests(balancer, state["minted"])
        for _ in range(3):
            if not lost:
                break
            # Transiently unheld (a reroute one-shot mid-fork) is not
            # lost; give the cluster short settle windows to converge.
            kernel.run_for(msec(40), raise_on_deadlock=False)
            lost = lost_requests(balancer, state["minted"])
        if lost:
            rids = ", ".join(req.rid for req in lost[:5])
            return f"failover: {len(lost)} request(s) vanished ({rids})"
        return None

    return build, check


_CLUSTER_FAILOVER_BUILD, _CLUSTER_FAILOVER_CHECK = _make_cluster_failover()


def _cedar_idle(config: KernelConfig):
    world, context = build_cedar_world(config)
    install = CEDAR_ACTIVITIES["idle"]
    if install is not None:
        install(world, context)
    return world.kernel, world.shutdown


@dataclass(frozen=True)
class ExploreScenario:
    name: str
    build: Callable[[KernelConfig], tuple]
    #: Simulated horizon per schedule (early termination usually stops
    #: a violating schedule well before it).
    horizon: int
    #: Fault seams to open as decision sites (None = scheduling only).
    plan: "FaultPlan | None"
    #: Directed scenarios expect the explorer to find a violation (and
    #: fail if it cannot); clean scenarios expect a quiet budget.
    expect_violation: bool
    #: Scenario-specific violation predicate over the finished kernel.
    check: Callable[[Kernel], "str | None"]
    #: Run the dynamic race detector per schedule (micro-scenarios
    #: only; the worlds are too hot for per-schedule race checking).
    race_detection: bool = False
    description: str = ""


SCENARIOS: dict[str, ExploreScenario] = {
    "wait-if": ExploreScenario(
        name="wait-if",
        build=_wait_if_deadlock,
        horizon=sec(1),
        plan=FaultPlan(spurious_wakeup_prob=0.5),
        expect_violation=True,
        check=_deadlock_check,
        race_detection=True,
        description="§5.3 WAIT-in-IF sprung into an ABBA cycle by a "
                    "spurious wake landing inside the partner's window",
    ),
    "abba": ExploreScenario(
        name="abba",
        build=_abba_deadlock,
        horizon=sec(1),
        plan=None,
        expect_violation=True,
        check=_deadlock_check,
        race_detection=True,
        description="plain ABBA lock cycle; deadlocks on every schedule, "
                    "so the minimal counterexample is zero forced decisions",
    ),
    "stolen-notify": ExploreScenario(
        name="stolen-notify",
        build=_STOLEN_NOTIFY_BUILD,
        horizon=sec(1),
        plan=FaultPlan(drop_notify_prob=0.5),
        expect_violation=True,
        check=_STOLEN_NOTIFY_CHECK,
        race_detection=True,
        description="one stolen NOTIFY against an IF-guarded untimed WAIT; "
                    "no waits-for cycle, caught by the progress check",
    ),
    "producer-consumer": ExploreScenario(
        name="producer-consumer",
        build=_producer_consumer,
        horizon=sec(1),
        plan=FaultPlan(drop_notify_prob=0.5, spurious_wakeup_prob=0.5),
        expect_violation=False,
        check=_no_violation,
        race_detection=True,
        description="the correct WAIT-in-a-loop idiom with timeouts; must "
                    "survive every explored steal/spurious combination",
    ),
    "cedar-idle": ExploreScenario(
        name="cedar-idle",
        build=_cedar_idle,
        horizon=msec(500),
        plan=None,
        expect_violation=False,
        check=_no_violation,
        description="the Cedar world's background activity under forced "
                    "scheduler picks; invariants must hold on every order",
    ),
    "cluster-failover": ExploreScenario(
        name="cluster-failover",
        build=_CLUSTER_FAILOVER_BUILD,
        horizon=msec(300),
        plan=None,
        expect_violation=False,
        check=_CLUSTER_FAILOVER_CHECK,
        description="a replicated one-shard cluster killed mid-train; "
                    "promotion must lose zero requests on every explored "
                    "schedule (heavyweight: select by name)",
    ),
}

#: The scenarios with a known bug the explorer must find and shrink.
DIRECTED = ("wait-if", "abba", "stolen-notify")
#: The scenarios that must stay quiet for the whole budget.
CLEAN = ("producer-consumer", "cedar-idle")


def resolve(selector: str) -> "list[ExploreScenario]":
    """Map a CLI selector to scenarios: a name, a comma list, or one of
    the groups ``directed`` / ``clean`` / ``all``.  ``all`` is the
    directed and clean groups — heavyweight scenarios (the replicated
    cluster) run only when selected by name, so the default sweep's
    budget stays spent on the micro-scenarios."""
    if selector == "all":
        names: "tuple[str, ...] | list[str]" = list(DIRECTED) + list(CLEAN)
    elif selector == "directed":
        names = DIRECTED
    elif selector == "clean":
        names = CLEAN
    else:
        names = [part.strip() for part in selector.split(",") if part.strip()]
    missing = [name for name in names if name not in SCENARIOS]
    if missing:
        raise KeyError(
            f"unknown scenario(s) {missing}; known: {sorted(SCENARIOS)} "
            "plus the groups 'directed', 'clean', 'all'"
        )
    return [SCENARIOS[name] for name in names]


# Litmus-test scenarios (litmus-sb-tso, litmus-mp-pso, ...) register in
# SCENARIOS so a saved witness trace replays through the generic
# --replay path; like the replicated cluster they are select-by-name
# only and stay out of the 'all' sweep.  Imported at module bottom:
# litmus.py needs ExploreScenario (defined above) at call time.
from repro.memmodel.litmus import explore_scenarios as _litmus_scenarios

for _litmus in _litmus_scenarios():
    SCENARIOS[_litmus.name] = _litmus
del _litmus
