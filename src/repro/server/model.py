"""Data model of the server world: tenants, requests, statistics.

A *tenant* is one traffic class sharing the server — its own arrival
process (open-loop Poisson events or a closed-loop client population),
its own cost/deadline envelope, and its own RNG stream forked from the
kernel seed so adding a tenant never perturbs another tenant's arrival
sequence.  *Competitive Parallelism: Getting Your Priorities Right*
frames the tension this models: tenants compete for workers, and the
scheduler policy decides whose tail latency pays for whose throughput.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.kernel.simtime import msec, usec
from repro.server.latency import LatencyHistogram

#: Request terminal states.
DONE = "done"
SHED = "shed"
FAILED = "failed"
PENDING = "pending"


@dataclass(frozen=True)
class TenantSpec:
    """One traffic class and its service-level envelope."""

    name: str
    #: "open" (Poisson arrival events) or "closed" (client threads).
    mode: str = "open"
    #: Open-loop offered load, requests per simulated second.
    rate_per_sec: float = 100.0
    #: Closed-loop client population and think time between requests.
    clients: int = 0
    think_time: int = msec(100)
    #: CPU burned per request, +- jitter fraction drawn per request.
    cost: int = usec(500)
    cost_jitter: float = 0.25
    #: Per-attempt deadline (enqueue -> dispatch) and retry budget.
    deadline: int = msec(400)
    max_retries: int = 2
    backoff: int = msec(50)
    #: Ordered tenants flow through a dedicated serializer thread.
    ordered: bool = False
    #: Write tenants' requests carry coalesce keys and ride the batcher.
    writes: bool = False
    write_keys: int = 8
    #: Admission patience: 0 sheds immediately, >0 waits (backpressure).
    admission_timeout: int = 0
    #: Priority of this tenant's closed-loop client threads.
    priority: int = 5
    #: Weighted-fair-queueing weight (WFQ admission serves tenants in
    #: proportion to their weights whenever they are backlogged).
    weight: int = 1
    #: Token-bucket rate limit at the balancer, requests per simulated
    #: second; 0 disables the bucket for this tenant.
    rate_limit_per_sec: float = 0.0
    #: Token-bucket burst allowance (ignored when the bucket is off).
    burst: int = 16
    #: Coordinated-omission-aware accounting: resubmitted requests keep
    #: the original intended send time, so the latency a closed-loop
    #: client recorded includes every shed-backoff wait before the
    #: request finally got in.  Off reproduces the PR-4 accounting that
    #: silently omitted those waits.
    co_aware: bool = True
    #: SLO latency target in µs for attainment reporting; 0 means "use
    #: the per-attempt deadline as the target".
    slo: int = 0
    #: Heavy-tailed service-time model: with probability
    #: ``cost_tail_prob`` the minted cost is further multiplied by a
    #: bounded-Pareto factor ``(1/u)**(1/alpha)`` capped at
    #: ``cost_tail_cap``.  0 disables the model *and* the RNG draws, so
    #: existing tenants' cost streams are byte-identical.
    cost_tail_prob: float = 0.0
    cost_tail_alpha: float = 1.5
    cost_tail_cap: float = 50.0
    #: Cache tier (see :mod:`repro.cluster.cache`): cached tenants' reads
    #: carry a cache key and are answered by the cache process; misses
    #: fan through to the backend as fetches.
    cached: bool = False
    cache_keys: int = 16
    #: Probability a read lands on the single hot key (key 0); the rest
    #: spread uniformly over the remaining keys.
    cache_hot_frac: float = 0.0
    #: Fill freshness lifetime: entries expire this long after the fill.
    cache_ttl: int = msec(500)

    @property
    def slo_us(self) -> int:
        """The effective SLO latency target."""
        return self.slo if self.slo > 0 else self.deadline


class Request:
    """One RPC through the system, across retries."""

    __slots__ = (
        "rid", "tenant", "submitted", "intended", "expires_at", "cost",
        "attempt", "key", "reply_to", "started_at", "completed_at",
        "status", "reroutes", "replays",
    )

    def __init__(
        self,
        rid: str,
        tenant: TenantSpec,
        submitted: int,
        cost: int,
        *,
        key: object = None,
        reply_to: object = None,
        intended: int | None = None,
    ) -> None:
        self.rid = rid
        self.tenant = tenant
        #: This submission's time — per-attempt deadlines run from here.
        self.submitted = submitted
        #: Intended send time: when the caller *meant* to issue the
        #: operation.  Defaults to ``submitted``; a closed-loop client
        #: resubmitting after a shed passes the original intended time
        #: through, so recorded latency includes the wait to get in
        #: (coordinated-omission awareness).
        self.intended = submitted if intended is None else intended
        self.expires_at = submitted + tenant.deadline
        self.cost = cost
        self.attempt = 0
        self.key = key
        self.reply_to = reply_to
        self.started_at: int | None = None
        self.completed_at: int | None = None
        self.status = PENDING
        #: Times a balancer pulled this request off a wedged shard and
        #: re-dispatched it (bounded; see repro.cluster.balancer).
        self.reroutes = 0
        #: Times a replica re-executed this request after a promotion
        #: (idempotent by rid; see repro.cluster.replication).
        self.replays = 0

    def rearm(self, now: int) -> None:
        """Start a fresh attempt: new per-attempt deadline."""
        self.attempt += 1
        self.expires_at = now + self.tenant.deadline
        self.status = PENDING

    def renew(self, now: int) -> None:
        """Fresh deadline *without* charging the retry budget.

        Reroutes and replica replays are the cluster's fault, not the
        request's: the tenant's ``max_retries`` envelope must not shrink
        because a shard wedged under it.
        """
        self.expires_at = now + self.tenant.deadline
        self.status = PENDING

    def __repr__(self) -> str:
        return f"<Request {self.rid} {self.status} attempt={self.attempt}>"


class RequestFactory:
    """Mints deterministic requests for one ingress point.

    The RPC server and the cluster load balancer both fabricate requests
    (jittered cost, write key, sequential rid) from RNG streams forked
    off the kernel seed.  Each ingress point gets its own factory, keyed
    by its name, so a shard's cost jitter never perturbs the balancer's
    and vice versa.
    """

    def __init__(self, seed: int, name: str) -> None:
        from repro.kernel.rng import DeterministicRng

        base = DeterministicRng(seed)
        self.cost_rng = base.fork(f"{name}:cost")
        self.retry_rng = base.fork(f"{name}:retry")
        self.key_rng = base.fork(f"{name}:key")
        self._rid_seq: dict[str, int] = {}

    def make(
        self,
        tenant: TenantSpec,
        now: int,
        *,
        reply_to: object = None,
        intended: int | None = None,
    ) -> Request:
        """Mint a request: deterministic rid, jittered cost, write key."""
        seq = self._rid_seq.get(tenant.name, 0)
        self._rid_seq[tenant.name] = seq + 1
        spread = 2.0 * self.cost_rng.uniform() - 1.0
        cost = max(1, round(tenant.cost * (1.0 + tenant.cost_jitter * spread)))
        if tenant.cost_tail_prob > 0.0 and self.cost_rng.chance(
            tenant.cost_tail_prob
        ):
            # Bounded Pareto: most draws near 1x, the occasional
            # cap-bounded monster — the heavy tail §service-time models
            # need, gated so zero-prob tenants draw nothing extra.
            u = max(self.cost_rng.uniform(), 1e-12)
            mult = min(
                tenant.cost_tail_cap,
                (1.0 / u) ** (1.0 / tenant.cost_tail_alpha),
            )
            cost = max(1, round(cost * mult))
        key = None
        if tenant.writes:
            key = f"{tenant.name}:k{self.key_rng.randint(0, tenant.write_keys - 1)}"
        return Request(
            f"{tenant.name}-{seq}",
            tenant,
            now,
            cost,
            key=key,
            reply_to=reply_to,
            intended=intended,
        )


class ServerStats:
    """Counters and the latency histogram, global and per tenant."""

    #: The counter kinds every tenant row carries, in report order.
    KINDS = (
        "offered", "admitted", "shed", "completed", "coalesced",
        "timeouts", "retries", "rerouted", "failed", "client_retries",
        "give_ups",
    )

    def __init__(self) -> None:
        self.latency = LatencyHistogram()
        self.per_tenant: dict[str, dict[str, int]] = {}
        self.tenant_latency: dict[str, LatencyHistogram] = {}
        #: (sim_time, admission_depth, shed_so_far) sampled by the
        #: deadline sleeper — queue depth over time for the SLO report.
        self.depth_samples: list[tuple[int, int, int]] = []
        self.batches = 0

    def bump(self, tenant: str, kind: str, amount: int = 1) -> None:
        row = self.per_tenant.setdefault(tenant, dict.fromkeys(self.KINDS, 0))
        row[kind] += amount

    def note_latency(self, tenant: str, latency_us: int) -> None:
        self.latency.record(latency_us)
        self.tenant_latency.setdefault(tenant, LatencyHistogram()).record(
            latency_us
        )

    def total(self, kind: str) -> int:
        return sum(row[kind] for row in self.per_tenant.values())

    # -- reporting ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "latency": self.latency.to_dict(),
            "tenants": {
                name: {
                    **row,
                    "latency": self.tenant_latency[name].to_dict()
                    if name in self.tenant_latency else None,
                }
                for name, row in sorted(self.per_tenant.items())
            },
            "totals": {kind: self.total(kind) for kind in self.KINDS},
            "batches": self.batches,
            "depth_samples": self.depth_samples,
            "max_depth_sampled": max(
                (d for _, d, _ in self.depth_samples), default=0
            ),
        }

    def digest(self) -> str:
        """SHA-256 of the canonical stats — the CLI's determinism hash."""
        return hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode()
        ).hexdigest()


def scenario_tenants(scenario: str) -> tuple[TenantSpec, ...]:
    """The pinned tenant mixes.

    ``steady``  — offered load ~45% of one simulated CPU: queues stay
    shallow, deadlines are met, shedding is the exception.

    ``overload`` — the open-loop "api" tenant alone offers ~2x one CPU:
    admission control must shed instead of letting the queue grow
    without bound, and the tail shows it.
    """
    base = (
        TenantSpec(
            name="ordered",
            mode="open",
            rate_per_sec=120.0,
            cost=usec(500),
            deadline=msec(400),
            ordered=True,
        ),
        TenantSpec(
            name="writes",
            mode="open",
            rate_per_sec=150.0,
            cost=usec(250),
            deadline=msec(600),
            writes=True,
            write_keys=6,
            max_retries=1,
        ),
        TenantSpec(
            name="interactive",
            mode="closed",
            clients=6,
            think_time=msec(100),
            cost=usec(400),
            deadline=msec(300),
            priority=5,
        ),
    )
    if scenario == "steady":
        api = TenantSpec(
            name="api", mode="open", rate_per_sec=400.0,
            cost=usec(600), deadline=msec(400),
        )
    elif scenario == "overload":
        api = TenantSpec(
            name="api", mode="open", rate_per_sec=2600.0,
            cost=usec(600), deadline=msec(400),
        )
    else:
        raise ValueError(f"unknown server scenario {scenario!r}")
    return (api, *base)


SCENARIO_NAMES = ("steady", "overload")
