"""Traffic generators: open-loop arrival events, closed-loop client threads.

Open-loop tenants model the outside world: Poisson arrivals run as timed
kernel events (not threads) and post into the server's network channel,
exactly how devices inject work everywhere else in this simulation.  An
open-loop source does not slow down when the server is slow — that is
the property that makes the overload scenario an overload.

Closed-loop tenants are client *threads*: submit, wait for the reply,
think, repeat.  Their offered load self-limits with server latency, and
they own the retry-on-shed policy (jittered exponential backoff, bounded
attempts) because a shed verdict is advice to the caller, not the server.

Each tenant's arrival randomness is an independent stream forked from
the kernel seed, so changing one tenant's rate never perturbs another
tenant's arrival sequence.

**Coordinated omission.**  A closed-loop client that is stalled by the
server (shed, backing off, resubmitting) is *not sending* — naive
accounting measures each attempt from its own submission time and so
silently omits exactly the waits the server caused.  With
``TenantSpec.co_aware`` (the default) every resubmission carries the
original *intended* send time, so the recorded latency of the eventually
successful attempt covers the whole stall.  This is an accounting-only
change: the schedule of kernel events is identical either way, only the
timestamps folded into the histogram differ.

Both generators target any *frontend* exposing the small ingress
protocol (``net``/``ingress``, ``make_request``, ``stats``, ``poll``,
``world``/``kernel``, ``name``): a single :class:`RpcServer` or a
cluster :class:`~repro.cluster.balancer.LoadBalancer`.
"""

from __future__ import annotations

from typing import Any

from repro.kernel.primitives import GetTime, Pause
from repro.kernel.rng import DeterministicRng
from repro.kernel.simtime import msec
from repro.server.model import DONE, FAILED, SHED, TenantSpec
from repro.sync.queues import UnboundedQueue

#: How many shed verdicts a closed-loop client absorbs before giving up.
CLIENT_RETRY_BUDGET = 3


def install_open_loop(server: Any, tenant: TenantSpec) -> None:
    """Schedule the tenant's Poisson arrival process as kernel events."""
    if tenant.mode != "open":
        raise ValueError(f"tenant {tenant.name!r} is not open-loop")
    kernel = server.kernel
    rng = DeterministicRng(kernel.config.seed).fork(
        f"{server.name}:arrivals:{tenant.name}"
    )
    rate_per_usec = tenant.rate_per_sec / 1_000_000.0

    def arrive(k: Any) -> None:
        req = server.make_request(tenant, k.now)
        server.stats.bump(tenant.name, "offered")
        server.net.post(req)
        k.post_at(k.now + rng.expovariate(rate_per_usec), arrive)

    kernel.post_at(
        kernel.now + rng.expovariate(rate_per_usec), arrive
    )


def install_closed_loop(server: Any, tenant: TenantSpec) -> None:
    """Fork the tenant's client thread population."""
    if tenant.mode != "closed":
        raise ValueError(f"tenant {tenant.name!r} is not closed-loop")
    for cid in range(tenant.clients):
        rng = DeterministicRng(server.kernel.config.seed).fork(
            f"{server.name}:client:{tenant.name}:{cid}"
        )
        server.world.add_eternal(
            client_proc,
            (server, tenant, cid, rng),
            name=f"client.{tenant.name}.{cid}",
            priority=tenant.priority,
        )


def client_proc(
    server: Any,
    tenant: TenantSpec,
    cid: int,
    rng: DeterministicRng,
):
    """One closed-loop client: think, submit, await verdict, repeat."""
    reply_q = UnboundedQueue(
        f"client.{tenant.name}.{cid}.reply", get_timeout=server.poll
    )
    think_rate = 1.0 / max(1, tenant.think_time)
    # A reply should arrive within the full retry envelope; past that the
    # client stops waiting and moves on (a give-up, not a server fault).
    patience = tenant.deadline * (tenant.max_retries + 2) + msec(500)
    while True:
        yield Pause(rng.expovariate(think_rate))
        now = yield GetTime()
        req = server.make_request(tenant, now, reply_to=reply_q)
        #: The operation's intended send time.  CO-aware resubmits carry
        #: it forward so the stall the server caused stays on the books.
        intended = req.intended
        shed_count = 0
        while True:
            server.stats.bump(tenant.name, "offered")
            yield from server.ingress.put(req)
            verdict = yield from _await_reply(reply_q, req, patience)
            if verdict == SHED and shed_count < CLIENT_RETRY_BUDGET:
                shed_count += 1
                server.stats.bump(tenant.name, "client_retries")
                backoff = tenant.backoff * (2 ** shed_count)
                yield Pause(backoff + rng.randint(0, tenant.backoff))
                now = yield GetTime()
                req = server.make_request(
                    tenant,
                    now,
                    reply_to=reply_q,
                    intended=intended if tenant.co_aware else None,
                )
                continue
            if verdict is None or verdict == SHED:
                server.stats.bump(tenant.name, "give_ups")
            # DONE and FAILED are terminal: latency/failure was already
            # accounted server-side.
            break


def _await_reply(queue: UnboundedQueue, req: Any, patience: int):
    """Timed-get until this request's verdict arrives or patience runs
    out; stale verdicts for abandoned requests are discarded."""
    start = yield GetTime()
    while True:
        msg = yield from queue.get()
        if msg is not None:
            verdict, reply = msg
            if reply.rid == req.rid:
                return verdict
            continue  # a stale reply for a request we gave up on
        now = yield GetTime()
        if now - start >= patience:
            return None
