"""The RPC server proper: pump -> admission queue -> worker pool.

Every moving part is one of the paper's paradigms doing its day job:

* a listener :class:`~repro.paradigms.pump.Pump` moves arrivals from the
  network channel into the ingress queue (devices feed channels, threads
  drain queues — the Section 4.2 pipeline shape);
* an admission **router** thread applies backpressure policy at the
  mouth of a :class:`~repro.sync.queues.BoundedQueue` — full means shed,
  not grow (the queue says no so the tail latency doesn't have to);
* a pool of **worker** threads drains the admission queue with *timed*
  gets, so a stolen NOTIFY under fault injection degrades to a one-tick
  stall instead of a wedged pool;
* **ordered** tenants route to a per-tenant serializer thread (Section
  4.3's serializer: concurrency traded away for order, per tenant, not
  globally);
* **write** requests ride a :class:`~repro.paradigms.slack.SlackProcess`
  that merges same-key writes before paying the per-batch cost (Section
  5.2's X-server buffer thread, recast as a write-behind batcher);
* a deadline **sleeper** sweeps expired requests out of the queues every
  scheduler tick and forks one-shot retry threads with jittered
  exponential backoff (Section 4.3 sleepers + one-shots).
"""

from __future__ import annotations

from typing import Any

from repro.kernel.primitives import Compute, Enter, Exit, Fork, GetTime, Pause
from repro.kernel.simtime import usec
from repro.paradigms.pump import Pump
from repro.paradigms.slack import SlackProcess
from repro.paradigms.sleeper import Sleeper
from repro.server.model import (
    DONE,
    FAILED,
    PENDING,
    SHED,
    Request,
    RequestFactory,
    ServerStats,
    TenantSpec,
)
from repro.sync.monitor import Monitor
from repro.sync.queues import BoundedQueue, UnboundedQueue

#: Bookkeeping costs, deliberately small next to request service costs.
ROUTE_COST = usec(20)
LISTEN_COST = usec(10)
TOUCH_COST = usec(15)
BATCH_BASE_COST = usec(120)
BATCH_ITEM_COST = usec(60)
SERIAL_QUEUE_CAPACITY = 16

#: Thread priorities: ingress above the pool so arrivals keep flowing
#: under load, everything >= 4 so round-robin keeps the watchdog's
#: starvation monitor quiet.
PRIO_LISTENER = 6
PRIO_ROUTER = 6
PRIO_SLEEPER = 5
PRIO_POOL = 4


class RpcServer:
    """A multi-tenant RPC server wired onto a :class:`~repro.runtime.pcr.World`.

    Construction builds the queues; :meth:`start` forks the thread
    population.  Open-loop generators post :class:`Request` objects into
    :attr:`net`; closed-loop clients put directly into :attr:`ingress`.
    """

    def __init__(
        self,
        world: Any,
        tenants: tuple[TenantSpec, ...],
        *,
        workers: int = 4,
        admission_capacity: int = 32,
        name: str = "server",
        admission_policy: str = "drop_tail",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if admission_policy not in ("drop_tail", "wfq"):
            raise ValueError(f"unknown admission policy {admission_policy!r}")
        self.world = world
        self.kernel = world.kernel
        self.tenants = {t.name: t for t in tenants}
        self.workers = workers
        self.name = name
        self.admission_policy = admission_policy
        self.stats = ServerStats()
        #: Timed-get interval: one scheduler quantum, the kernel's
        #: timeout granularity — anything shorter rounds up to it anyway.
        self.poll = self.kernel.config.quantum

        self.net = world.add_device(f"{name}.net")
        self.ingress = UnboundedQueue(f"{name}.ingress")
        if admission_policy == "wfq":
            from repro.cluster.admission import WfqQueue

            self.admission = WfqQueue(
                f"{name}.admission",
                max(1, admission_capacity // max(1, len(tenants))),
                {t.name: t.weight for t in tenants},
            )
        else:
            self.admission = BoundedQueue(
                f"{name}.admission", admission_capacity
            )
        self.serial_queues: dict[str, BoundedQueue] = {
            t.name: BoundedQueue(
                f"{name}.serial.{t.name}", SERIAL_QUEUE_CAPACITY
            )
            for t in tenants
            if t.ordered
        }
        self.batch_queue = UnboundedQueue(
            f"{name}.batch", get_timeout=self.poll
        )
        #: Shared application state workers touch under a monitor, so the
        #: server exercises real lock contention (and the race detector).
        self.table_mon = Monitor(f"{name}.table")
        self.table: dict[str, int] = {}
        #: Requests merged away by the batcher, drained per delivery.
        self._superseded: list[Request] = []
        #: Optional generator-function hook run after every terminal
        #: outcome (complete/shed/fail), passed the request.  The cluster
        #: balancer installs its credit-release notification here; None
        #: costs nothing and leaves the single-server schedule untouched.
        self.on_outcome: Any = None
        #: Optional generator-function hook ``(kind, req)`` shipping op-log
        #: records ("admit" / "dispatch" / "complete") to a replica — see
        #: :mod:`repro.cluster.replication`.  None costs nothing.
        self.on_oplog: Any = None
        #: Requests currently in a worker/serializer/batcher's hands or
        #: parked in a retry one-shot — custody that no queue scan can
        #: see.  Keyed by rid; terminal outcomes remove.  Pure-dict
        #: bookkeeping: never yields, never perturbs schedules.
        self.executing: dict[str, Request] = {}
        #: Threads forked by :meth:`start` (fault injection targets).
        self.threads: list[Any] = []

        #: Derived RNG streams: request jitter and retry backoff jitter
        #: are forked per concern so neither perturbs arrival sequences.
        self.factory = RequestFactory(self.kernel.config.seed, name)
        self.retry_rng = self.factory.retry_rng

        self.listener = Pump(
            f"{name}.listener",
            self.net,
            self.ingress,
            cost_per_item=LISTEN_COST,
        )
        # Slack: sleep out one quantum so same-key writes pile up before
        # the per-batch cost is paid (latency added, work saved — §5.2).
        self.batcher = SlackProcess(
            f"{name}.batcher",
            self.batch_queue,
            self._deliver_batch,
            merge=self._merge_writes,
            strategy="sleep",
            sleep_interval=self.poll,
            cost_per_batch=BATCH_BASE_COST,
        )
        self.sweeper = Sleeper(
            f"{name}.deadlines", self.poll, self._sweep, work_cost=usec(30)
        )

    # -- population --------------------------------------------------------

    def start(self) -> None:
        """Fork the server's thread population."""
        add = self.threads.append
        add(self.world.add_eternal(
            self.listener.proc, name=self.listener.name, priority=PRIO_LISTENER
        ))
        add(self.world.add_eternal(
            self._router_proc, name=f"{self.name}.router", priority=PRIO_ROUTER
        ))
        add(self.world.add_eternal(
            self.sweeper.proc, name=self.sweeper.name, priority=PRIO_SLEEPER
        ))
        for wid in range(self.workers):
            add(self.world.add_eternal(
                self._worker_proc,
                (wid,),
                name=f"{self.name}.worker.{wid}",
                priority=PRIO_POOL,
            ))
        for name in self.serial_queues:
            add(self.world.add_eternal(
                self._serializer_proc,
                (name,),
                name=f"{self.name}.serial.{name}",
                priority=PRIO_POOL,
            ))
        add(self.world.add_eternal(
            self.batcher.proc, name=self.batcher.name, priority=PRIO_POOL
        ))

    # -- request fabrication ----------------------------------------------

    def make_request(
        self,
        tenant: TenantSpec,
        now: int,
        *,
        reply_to: Any = None,
        intended: int | None = None,
    ) -> Request:
        """Mint a request: deterministic rid, jittered cost, write key."""
        return self.factory.make(
            tenant, now, reply_to=reply_to, intended=intended
        )

    # -- thread bodies -----------------------------------------------------

    def _router_proc(self):
        """Admission control: ingress -> bounded queue, or shed."""
        while True:
            req = yield from self.ingress.get(timeout=self.poll)
            if req is None:
                continue
            yield Compute(ROUTE_COST)
            tenant = req.tenant
            if tenant.ordered:
                ok = yield from self.serial_queues[tenant.name].try_put(req)
            else:
                ok = yield from self.admission.put(
                    req, timeout=tenant.admission_timeout
                )
            if ok:
                self.stats.bump(tenant.name, "admitted")
                if self.on_oplog is not None:
                    yield from self.on_oplog("admit", req)
            else:
                yield from self._shed(req)

    def _worker_proc(self, wid: int):
        """Pool worker: timed get, deadline check, execute, complete."""
        del wid  # identity lives in the thread name
        while True:
            req = yield from self.admission.get(timeout=self.poll)
            if req is None:
                continue
            yield from self._dispatch(req)

    def _serializer_proc(self, tenant_name: str):
        """Ordered tenant's serializer: same loop, private queue, so the
        tenant's requests complete in submission order."""
        queue = self.serial_queues[tenant_name]
        while True:
            req = yield from queue.get(timeout=self.poll)
            if req is None:
                continue
            yield from self._dispatch(req)

    def _dispatch(self, req: Request):
        """Run one admitted request on the calling thread."""
        self.executing[req.rid] = req
        now = yield GetTime()
        if now >= req.expires_at:
            yield from self._expire(req)
            return
        if self.on_oplog is not None:
            yield from self.on_oplog("dispatch", req)
        if req.tenant.writes:
            # Write-behind: hand to the batcher rather than paying the
            # full per-request cost here.
            yield from self.batch_queue.put(req)
            return
        req.started_at = now
        yield Enter(self.table_mon)
        try:
            yield Compute(TOUCH_COST)
            self.table[req.tenant.name] = self.table.get(req.tenant.name, 0) + 1
        finally:
            yield Exit(self.table_mon)
        yield Compute(req.cost)
        yield from self._complete(req)

    # -- batching ----------------------------------------------------------

    def _merge_writes(self, items: list[Request]) -> list[Request]:
        """Keep the latest write per key; stash the superseded ones so
        the delivery step can complete (and count) them too."""
        merged: dict[Any, Request] = {}
        for req in items:
            prev = merged.get(req.key)
            if prev is not None:
                self._superseded.append(prev)
            merged[req.key] = req
        return list(merged.values())

    def _deliver_batch(self, batch: list[Request]):
        """SlackProcess delivery: one batch cost, then everyone completes."""
        superseded, self._superseded = self._superseded, []
        yield Compute(BATCH_BASE_COST + BATCH_ITEM_COST * len(batch))
        self.stats.batches += 1
        now = yield GetTime()
        for req in batch:
            if now >= req.expires_at:
                yield from self._expire(req)
            else:
                yield from self._complete(req)
        for req in superseded:
            self.stats.bump(req.tenant.name, "coalesced")
            yield from self._complete(req)

    # -- outcomes ----------------------------------------------------------

    def _complete(self, req: Request):
        now = yield GetTime()
        req.completed_at = now
        req.status = DONE
        self.executing.pop(req.rid, None)
        self.stats.bump(req.tenant.name, "completed")
        # Latency runs from the *intended* send time (== submitted unless
        # a CO-aware client carried an earlier intent through resubmits).
        self.stats.note_latency(req.tenant.name, now - req.intended)
        if req.reply_to is not None:
            yield from req.reply_to.put((DONE, req))
        if self.on_oplog is not None:
            yield from self.on_oplog("complete", req)
        if self.on_outcome is not None:
            yield from self.on_outcome(req)

    def _shed(self, req: Request):
        """Admission refused: final for open-loop, a retryable verdict
        for closed-loop clients."""
        req.status = SHED
        self.executing.pop(req.rid, None)
        self.stats.bump(req.tenant.name, "shed")
        if req.reply_to is not None:
            yield from req.reply_to.put((SHED, req))
        if self.on_oplog is not None:
            yield from self.on_oplog("complete", req)
        if self.on_outcome is not None:
            yield from self.on_outcome(req)

    def _expire(self, req: Request):
        """Deadline passed before service: retry with jittered backoff
        (a one-shot thread) until the tenant's budget runs out."""
        tenant = req.tenant
        self.stats.bump(tenant.name, "timeouts")
        if req.attempt < tenant.max_retries:
            self.stats.bump(tenant.name, "retries")
            self.executing[req.rid] = req
            delay = tenant.backoff * (2 ** req.attempt)
            delay += self.retry_rng.randint(0, tenant.backoff)
            yield Fork(
                self._retry_proc,
                (req, delay),
                name=f"{self.name}.retry.{req.rid}.{req.attempt}",
                priority=PRIO_SLEEPER,
                detached=True,
            )
        else:
            req.status = FAILED
            self.executing.pop(req.rid, None)
            self.stats.bump(tenant.name, "failed")
            if req.reply_to is not None:
                yield from req.reply_to.put((FAILED, req))
            if self.on_oplog is not None:
                yield from self.on_oplog("complete", req)
            if self.on_outcome is not None:
                yield from self.on_outcome(req)

    def _retry_proc(self, req: Request, delay: int):
        """One-shot: sleep out the backoff, then resubmit via ingress."""
        yield Pause(delay)
        now = yield GetTime()
        req.rearm(now)
        yield from self.ingress.put(req)

    # -- the deadline sleeper ---------------------------------------------

    def _sweep(self):
        """Per-tick sweep: sample queue depth, prune expired requests."""
        now = yield GetTime()
        self.stats.depth_samples.append(
            (now, len(self.admission), self.stats.total("shed"))
        )
        cut = lambda r: r.expires_at <= now and r.status == PENDING
        expired = yield from self.admission.prune(cut)
        for queue in self.serial_queues.values():
            expired += yield from queue.prune(cut)
        for req in expired:
            yield from self._expire(req)
