"""Log-bucketed latency histograms: the server world's SLO instrument.

End-to-end request latencies span four orders of magnitude (a hit on an
idle worker completes in hundreds of microseconds; a retried request in
an overloaded queue takes most of a second), so linear buckets would
either blur the tail or waste thousands of slots.  Power-of-two buckets
give constant relative resolution: bucket ``i`` counts latencies whose
microsecond value has bit length ``i``, i.e. the interval
``[2**(i-1), 2**i)``, with bucket 0 reserved for zero.

Percentile queries return the *upper bound* of the bucket containing the
requested rank (clamped to the observed maximum), so reported p99s are
conservative and — critically for the determinism guarantee — a pure
function of the recorded counts.  Everything here is integer arithmetic:
identical runs produce identical histograms, identical digests.
"""

from __future__ import annotations

import hashlib
import json

#: Enough buckets for latencies up to ~2**39 µs (~6 days of sim time).
BUCKET_COUNT = 40

#: The quantile set every report carries, in report order.
QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
    ("p999", 0.999),
)


class LatencyHistogram:
    """A fixed-size log2 histogram over non-negative integer microseconds."""

    __slots__ = ("counts", "total", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * BUCKET_COUNT
        self.total = 0
        self.sum = 0
        self.min: int | None = None
        self.max: int | None = None

    # -- recording ---------------------------------------------------------

    def record(self, latency_us: int) -> None:
        if latency_us < 0:
            raise ValueError(f"negative latency {latency_us}")
        index = min(latency_us.bit_length(), BUCKET_COUNT - 1)
        self.counts[index] += 1
        self.total += 1
        self.sum += latency_us
        if self.min is None or latency_us < self.min:
            self.min = latency_us
        if self.max is None or latency_us > self.max:
            self.max = latency_us

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram in (per-tenant -> global rollups)."""
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum += other.sum
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)

    # -- queries -----------------------------------------------------------

    def percentile(self, fraction: float) -> int:
        """The latency at the given rank fraction (0 < fraction <= 1).

        Returns the upper bound of the bucket holding that rank, clamped
        to the observed maximum; 0 for an empty histogram.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside (0, 1]")
        if self.total == 0:
            return 0
        # Rank of the target observation: ceil(total * fraction), 1-based.
        scaled = self.total * fraction
        target = int(scaled)
        if target < scaled:
            target += 1
        target = max(1, min(self.total, target))
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= target:
                upper = 0 if index == 0 else (1 << index) - 1
                return min(upper, self.max if self.max is not None else upper)
        return self.max or 0  # pragma: no cover - counts always sum to total

    def quantiles(self) -> dict[str, int]:
        return {name: self.percentile(q) for name, q in QUANTILES}

    def attainment(self, slo_us: int) -> float:
        """Fraction of recorded latencies at or below ``slo_us``.

        Computed from the bucket counts, so it is conservative: a bucket
        counts as "within SLO" only when its *upper* bound fits, except
        that an SLO at or above the observed maximum is 1.0 exactly.
        An empty histogram attains trivially (1.0).
        """
        if slo_us < 0:
            raise ValueError(f"negative SLO target {slo_us}")
        if self.total == 0:
            return 1.0
        if self.max is not None and slo_us >= self.max:
            return 1.0
        within = 0
        for index, count in enumerate(self.counts):
            upper = 0 if index == 0 else (1 << index) - 1
            if upper > slo_us:
                break
            within += count
        return within / self.total

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON-ready form (sparse counts keyed by bucket)."""
        return {
            "buckets": {
                str(i): c for i, c in enumerate(self.counts) if c
            },
            "total": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            **self.quantiles(),
        }

    def digest(self) -> str:
        """SHA-256 over the canonical form — the determinism check."""
        return hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode()
        ).hexdigest()

    def bucket_rows(self) -> list[tuple[str, int]]:
        """(label, count) per non-empty bucket, for rendering."""
        return [
            (bucket_label(index), count)
            for index, count in enumerate(self.counts)
            if count
        ]

    def __repr__(self) -> str:
        qs = self.quantiles()
        return (
            f"<LatencyHistogram n={self.total} p50={qs['p50']} "
            f"p99={qs['p99']} max={self.max}>"
        )


def attainment_from_dict(latency: dict | None, slo_us: int) -> float:
    """:meth:`LatencyHistogram.attainment` over a serialized histogram.

    Reports carry histograms in :meth:`LatencyHistogram.to_dict` form;
    the SLO-feedback loop reads attainment straight from those dicts
    without rebuilding the histogram object.
    """
    if not latency or not latency.get("total"):
        return 1.0
    maximum = latency.get("max")
    if maximum is not None and slo_us >= maximum:
        return 1.0
    within = 0
    for bucket, count in latency["buckets"].items():
        index = int(bucket)
        upper = 0 if index == 0 else (1 << index) - 1
        if upper <= slo_us:
            within += count
    return within / latency["total"]


def bucket_label(index: int) -> str:
    """Human-readable range of bucket ``index`` ("512us..1ms")."""
    if index == 0:
        return "0us"
    low, high = 1 << (index - 1), (1 << index) - 1
    return f"{_fmt_us(low)}..{_fmt_us(high)}"


def _fmt_us(value: int) -> str:
    """Compact microsecond label: 512us, 8ms, 2s."""
    if value >= 1_000_000 and value % 1_000_000 == 0:
        return f"{value // 1_000_000}s"
    if value >= 1_000 and value % 1_000 == 0:
        return f"{value // 1_000}ms"
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}s"
    if value >= 1_000:
        return f"{value / 1_000:.1f}ms"
    return f"{value}us"
