"""Assembling and running the server world.

:func:`build_server_world` wires an :class:`RpcServer` plus its traffic
generators onto a :class:`~repro.runtime.pcr.World`; :func:`run_server`
is the one-call entry point used by the CLI, the benchmarks, the golden
scenarios and the chaos sweep — build, run for a fixed sim-time, fold
the statistics into a :class:`ServerReport` whose ``digest`` is the
determinism witness (identical seed and knobs => identical digest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.kernel.config import KernelConfig
from repro.kernel.simtime import sec
from repro.runtime.pcr import World
from repro.server.clients import install_closed_loop, install_open_loop
from repro.server.model import TenantSpec, scenario_tenants
from repro.server.server import RpcServer

#: Default simulated run length: long enough for thousands of requests,
#: many quanta, timeouts, retries and batches; short enough to stay fast.
DEFAULT_DURATION = sec(2)


@dataclass
class ServerReport:
    """One server run, folded down to its SLO story."""

    scenario: str
    seed: int
    policy: str
    workers: int
    admission_capacity: int
    duration: int
    stats: dict = field(default_factory=dict)
    digest: str = ""

    @property
    def completed(self) -> int:
        return self.stats["totals"]["completed"]

    @property
    def throughput_per_sec(self) -> float:
        seconds = self.duration / 1_000_000
        return self.completed / seconds if seconds else 0.0

    @property
    def quantiles(self) -> dict[str, int]:
        latency = self.stats["latency"]
        return {name: latency[name] for name in ("p50", "p95", "p99", "p999")}

    @property
    def shed_fraction(self) -> float:
        offered = self.stats["totals"]["offered"]
        return self.stats["totals"]["shed"] / offered if offered else 0.0

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "policy": self.policy,
            "workers": self.workers,
            "admission_capacity": self.admission_capacity,
            "duration_us": self.duration,
            "throughput_per_sec": round(self.throughput_per_sec, 3),
            "shed_fraction": round(self.shed_fraction, 6),
            "digest": self.digest,
            "stats": self.stats,
        }


def build_server_world(
    config: KernelConfig | None = None,
    *,
    scenario: str = "steady",
    workers: int = 4,
    admission_capacity: int = 32,
    tenants: tuple[TenantSpec, ...] | None = None,
) -> tuple[World, RpcServer]:
    """Build the world: server threads forked, generators installed."""
    world = World(config)
    mix = tenants if tenants is not None else scenario_tenants(scenario)
    server = RpcServer(
        world, mix, workers=workers, admission_capacity=admission_capacity
    )
    server.start()
    for tenant in mix:
        if tenant.mode == "open":
            install_open_loop(server, tenant)
        else:
            install_closed_loop(server, tenant)
    return world, server


def run_server(
    *,
    seed: int = 0,
    scenario: str = "steady",
    workers: int = 4,
    policy: str = "strict",
    admission_capacity: int = 32,
    duration: int = DEFAULT_DURATION,
    config_overrides: dict | None = None,
    raise_on_deadlock: bool = True,
    keep_world: bool = False,
) -> ServerReport | tuple[ServerReport, World, RpcServer]:
    """Run one server experiment and fold it into a report.

    ``keep_world`` hands back the live world and server (caller owns
    shutdown) — tests use it to inspect queues and histograms directly.
    """
    base = dict(seed=seed, scheduler_policy=policy)
    if config_overrides:
        base.update(config_overrides)
    config = KernelConfig(**base)
    world, server = build_server_world(
        config,
        scenario=scenario,
        workers=workers,
        admission_capacity=admission_capacity,
    )
    world.run_for(duration, raise_on_deadlock=raise_on_deadlock)
    report = ServerReport(
        scenario=scenario,
        seed=seed,
        policy=policy,
        workers=workers,
        admission_capacity=admission_capacity,
        duration=duration,
        stats=server.stats.to_dict(),
        digest=server.stats.digest(),
    )
    if keep_world:
        return report, world, server
    world.shutdown()
    return report
