"""The simulated multi-tenant RPC server world.

The paper's thread paradigms — pumps, serializers, slack processes,
sleepers, one-shots (Section 4, Table 4) — are exactly the building
blocks of a request-serving system.  This package composes the paradigm
library into a server running on the simulated kernel: listener pumps,
a bounded admission queue with load shedding, a worker pool, per-tenant
serializers for ordered traffic, a slack-process write batcher, and a
sleeper-driven deadline/retry path — instrumented end to end with a
log-bucketed latency histogram (p50/p95/p99/p999).

See docs/SERVER.md for the architecture and knobs.
"""

from repro.server.latency import LatencyHistogram
from repro.server.model import Request, ServerStats, TenantSpec, scenario_tenants
from repro.server.server import RpcServer
from repro.server.world import ServerReport, build_server_world, run_server

__all__ = [
    "LatencyHistogram",
    "Request",
    "RpcServer",
    "ServerReport",
    "ServerStats",
    "TenantSpec",
    "build_server_world",
    "run_server",
    "scenario_tenants",
]
