"""Event tracing: the "instrumented PCR" of Section 3.

The paper's dynamic analysis came from "microsecond-resolution information
gathered about thread events and scheduling events": forks, yields,
scheduler switches, monitor lock entries and condition variable waits.
``Tracer`` records exactly those event kinds, each stamped with the
simulated microsecond clock.

Tracing is off by default (aggregate statistics are always collected by
``GlobalStats``); turn it on via ``KernelConfig(trace=True)`` when a test
or case study needs to inspect the microsecond spacing of events — e.g.
the spurious-lock-conflict study reads the exact switch sequence around a
NOTIFY.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

# Event categories (values appear in traces and in config.trace_categories).
CAT_SWITCH = "switch"
CAT_FORK = "fork"
CAT_END = "end"
CAT_MONITOR = "monitor"
CAT_CV = "cv"
CAT_YIELD = "yield"
CAT_TICK = "tick"
CAT_SLEEP = "sleep"
CAT_CHANNEL = "channel"
CAT_ANNOTATE = "annotate"
CAT_RACE = "race"
CAT_FAULT = "fault"
CAT_WATCHDOG = "watchdog"

ALL_CATEGORIES = frozenset(
    {
        CAT_SWITCH,
        CAT_FORK,
        CAT_END,
        CAT_MONITOR,
        CAT_CV,
        CAT_YIELD,
        CAT_TICK,
        CAT_SLEEP,
        CAT_CHANNEL,
        CAT_ANNOTATE,
        CAT_RACE,
        CAT_FAULT,
        CAT_WATCHDOG,
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped kernel event."""

    time: int
    category: str
    kind: str
    thread: str
    detail: Any = None

    def __str__(self) -> str:
        extra = f" {self.detail}" if self.detail is not None else ""
        return f"[{self.time:>12d}us] {self.category}/{self.kind} {self.thread}{extra}"


class Tracer:
    """Collects :class:`TraceEvent` records for enabled categories."""

    def __init__(self, enabled: bool, categories: frozenset[str]) -> None:
        self._events: list[TraceEvent] = []
        self.enabled = enabled
        # Empty set means "all categories".
        self._categories = categories or ALL_CATEGORIES
        unknown = self._categories - ALL_CATEGORIES
        if unknown:
            raise ValueError(f"unknown trace categories: {sorted(unknown)}")

    def record(
        self, time: int, category: str, kind: str, thread: str, detail: Any = None
    ) -> None:
        if not self.enabled or category not in self._categories:
            return
        self._events.append(TraceEvent(time, category, kind, thread, detail))

    def wants(self, category: str) -> bool:
        """Whether ``record`` would keep events of this category.

        The kernel precomputes one flag per hot category at construction
        so disabled-trace runs never build ``record`` arguments on the
        dispatch/offcpu/enter/exit/tick paths.
        """
        return self.enabled and category in self._categories

    @property
    def events(self) -> list[TraceEvent]:
        return self._events

    def clear(self) -> None:
        self._events.clear()

    def by_category(self, category: str) -> Iterator[TraceEvent]:
        return (e for e in self._events if e.category == category)

    def by_thread(self, thread_name: str) -> Iterator[TraceEvent]:
        return (e for e in self._events if e.thread == thread_name)

    def between(self, start: int, end: int) -> Iterator[TraceEvent]:
        """Events with start <= time < end (a "100 millisecond event
        history" window, as the paper's conclusion puts it)."""
        return (e for e in self._events if start <= e.time < end)

    def format(self, limit: int | None = None) -> str:
        events = self._events if limit is None else self._events[:limit]
        return "\n".join(str(e) for e in events)
