"""SimThread: the kernel's per-thread state.

A thread wraps a Python generator (the running body) plus everything the
scheduler and the instrumentation need: state, priority, what it is blocked
on, accumulated CPU, execution intervals, fork genealogy.

The genealogy fields (``parent``, ``generation``, ``forked_children``)
exist because Section 3 of the paper analyses forking patterns — "none of
our benchmarks exhibited forking generations greater than 2" — and the F3
figure bench reproduces that analysis.

Lifetime classes (eternal / worker / transient) are assigned by the
analysis layer from observed lifetime and behaviour, mirroring the paper's
dynamic classification; the ``role`` field lets workloads also declare the
intended class so the two can be compared.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Generator, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sync.monitor import Monitor


class ThreadState(enum.Enum):
    """Scheduler-visible thread states."""

    NEW = "new"                  # created, not yet first dispatched
    READY = "ready"              # on a ready queue
    RUNNING = "running"          # on a CPU
    BLOCKED_MONITOR = "blocked-monitor"  # queued on a monitor mutex
    WAITING_CV = "waiting-cv"    # on a condition variable's wait queue
    SLEEPING = "sleeping"        # in Pause()
    JOINING = "joining"          # in Join() on an unfinished thread
    RECEIVING = "receiving"      # in Channelreceive() on an empty channel
    FORK_WAIT = "fork-wait"      # blocked in FORK for thread resources
    DONE = "done"                # terminated

class ThreadStats:
    """Per-thread accounting, updated by the kernel as events happen."""

    __slots__ = (
        "cpu_time",
        "dispatches",
        "preemptions",
        "yields",
        "monitor_enters",
        "monitor_blocks",
        "cv_waits",
        "cv_timeouts",
        "cv_notifies_received",
        "forks_issued",
        "run_intervals",
    )

    def __init__(self) -> None:
        self.cpu_time = 0
        self.dispatches = 0
        self.preemptions = 0
        self.yields = 0
        self.monitor_enters = 0
        self.monitor_blocks = 0
        self.cv_waits = 0
        self.cv_timeouts = 0
        self.cv_notifies_received = 0
        self.forks_issued = 0
        #: Durations of completed execution intervals (time between being
        #: dispatched and being descheduled), for the F1/F2 histograms.
        self.run_intervals: list[int] = []


class SimThread:
    """One simulated thread.

    Created by the kernel; user code receives instances from ``Fork`` and
    passes them to ``Join`` / ``Detach`` / ``DirectedYield``.
    """

    def __init__(
        self,
        tid: int,
        name: str,
        body: Generator[Any, Any, Any],
        priority: int,
        created_at: int,
        parent: "SimThread | None" = None,
        role: str | None = None,
    ) -> None:
        self.tid = tid
        self.name = name
        self.body = body
        self.priority = priority
        self.initial_priority = priority
        self.created_at = created_at
        self.ended_at: int | None = None
        self.parent = parent
        #: Fork generation: 0 for threads forked from outside the simulated
        #: world (eternal/worker roots), parent.generation + 1 otherwise.
        self.generation = 0 if parent is None else parent.generation + 1
        self.forked_children: list[int] = []
        #: Declared role, e.g. "eternal", "worker" — used by workloads.
        self.role = role

        self.state = ThreadState.NEW
        self.detached = False
        self.joined = False
        self.result: Any = None
        self.error: BaseException | None = None
        #: Thread waiting in Join() on us (at most one, enforced).
        self.joiner: "SimThread | None" = None

        #: Monitors currently held, innermost last (for diagnostics and
        #: deadlock reporting).
        self.held_monitors: list["Monitor"] = []
        #: What the thread is blocked on (Monitor/CV/Channel/SimThread).
        self.blocked_on: Any = None
        #: Remaining CPU of an in-progress Compute, if preempted mid-burn.
        self.pending_compute = 0
        #: Value to send into the generator at next resume.
        self.pending_send: Any = None
        #: Exception to throw into the generator at next resume.
        self.pending_throw: BaseException | None = None
        #: Sim time of the last dispatch (start of current run interval).
        self.last_dispatched: int | None = None
        #: Set when a CV wait ended by notification rather than timeout.
        self.wake_was_notify = False
        #: Bumped on every blocking wait; lazily invalidates stale timeout
        #: entries in the kernel's timed-waiter heap.
        self.wait_epoch = 0
        #: ``wait_epoch`` value at the most recent ``_arm_timed`` — the
        #: current block has a live timeout iff ``timed_epoch ==
        #: wait_epoch``.  The waits-for watchdog uses this to exclude
        #: self-waking (timed) waits from deadlock cycles.
        self.timed_epoch = -1
        #: Deferred continuation to run when next dispatched, e.g.
        #: ("reacquire", monitor, was_notify) after a CV wake.
        self.resume_action: tuple | None = None

        self.stats = ThreadStats()

    # -- predicates ------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state is not ThreadState.DONE

    @property
    def lifetime(self) -> int | None:
        """Thread lifetime in µs, or None while still alive."""
        if self.ended_at is None:
            return None
        return self.ended_at - self.created_at

    def ancestry(self) -> Iterator["SimThread"]:
        """Yield parent, grandparent, ... up to a generation-0 root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def describe_block(self) -> str:
        """A one-line diagnosis of what this thread is waiting for."""
        if self.state in (ThreadState.READY, ThreadState.RUNNING):
            return f"{self.name}: runnable"
        target = getattr(self.blocked_on, "name", self.blocked_on)
        return f"{self.name}: {self.state.value} on {target!r}"

    def __repr__(self) -> str:
        return (
            f"<SimThread {self.tid} {self.name!r} prio={self.priority} "
            f"{self.state.value}>"
        )
