"""The simulated PCR kernel: event loop and trap handlers.

This module implements the thread model of Section 2 of the paper as a
deterministic discrete-event simulation:

* threads are Python generators; they yield :mod:`repro.kernel.primitives`
  traps and the kernel resumes them with results;
* time is an integer microsecond clock that advances only between events,
  so every scheduling decision is exactly reproducible;
* the scheduler is strict-priority with round-robin at each level, a
  configurable timeslice (PCR: 50 ms), and preemption "even if [the
  running thread] holds monitor locks";
* CV timeouts and sleeps wake at scheduler ticks, giving them the
  timeslice granularity Section 6.3 analyses;
* NOTIFY follows either the paper's deferred-rescheduling fix or the
  original immediate behaviour that produced spurious lock conflicts
  (Section 6.1), selected by ``KernelConfig.notify_semantics``.

On a uniprocessor run (``ncpus=1``, the default and the configuration the
paper studies most) the simulation is sequentially consistent by
construction; ``ncpus > 1`` models a multiprocessor at event granularity.
"""

from __future__ import annotations

import enum
import heapq
import inspect
import itertools
import weakref
from typing import Any, Callable

from repro.kernel import instrumentation as instr
from repro.kernel.channel import Channel
from repro.kernel.config import (
    DEFAULT_PRIORITY,
    FORK_FAILURE_RAISE,
    MAX_PRIORITY,
    MIN_PRIORITY,
    NOTIFY_DEFERRED,
    WAKES_AT_LEAST_ONE,
    KernelConfig,
)
from repro.kernel.errors import (
    Deadlock,
    ForkFailed,
    JoinProtocolError,
    KernelUsageError,
    MonitorProtocolError,
    ThreadKilled,
    UncaughtThreadError,
)
from repro.kernel.events import EventHeap
from repro.kernel.instrumentation import Tracer
from repro.kernel.memory import SimVar, create_memory_model
from repro.kernel.primitives import (
    Annotate,
    Broadcast,
    Channelreceive,
    Compute,
    Detach,
    DirectedYield,
    Enter,
    Exit,
    Fence,
    Fork,
    GetSelf,
    GetTime,
    Join,
    MemRead,
    MemWrite,
    Notify,
    Pause,
    SetPriority,
    Trap,
    Wait,
    Yield,
    YieldButNotToMe,
)
from repro.kernel.scheduler import Cpu, Scheduler
from repro.kernel.stats import GlobalStats, ThreadRecord
from repro.kernel.rng import DeterministicRng
from repro.kernel.thread import SimThread, ThreadState


class _Outcome(enum.Enum):
    """What a trap handler did with the running thread."""

    CONTINUE = "continue"  # handled instantly; keep resuming the generator
    BURN = "burn"          # thread has pending_compute to burn on the CPU
    SUSPEND = "suspend"    # thread left the CPU (blocked/yielded/finished)


#: Guard against zero-cost scheduling livelock (e.g. a thread that yields
#: in a tight loop with switch_cost=0): maximum dispatches at one instant.
_MAX_DISPATCHES_PER_INSTANT = 100_000

#: Every live Kernel, so test harnesses can shut down abandoned ones
#: (closing thread generators cleanly) without tracking them by hand.
_LIVE_KERNELS: "weakref.WeakSet" = weakref.WeakSet()


def shutdown_all_kernels() -> None:
    """Shut down every kernel still alive (test-teardown hook)."""
    for kernel in list(_LIVE_KERNELS):
        kernel.shutdown()


def _close_all_bodies(threads: dict) -> None:
    """GC-time fallback for kernels never explicitly shut down."""
    for thread in threads.values():
        if thread.state is not ThreadState.DONE:
            _drain_close(thread.body)


def _drain_close(body: Any) -> None:
    """Force-close a suspended thread generator.

    Thread bodies legitimately yield Exit traps from ``finally`` blocks;
    during ``close()`` those yields surface as "generator ignored
    GeneratorExit".  We resume the generator with None (the trap's normal
    result) and retry until the frame unwinds.
    """
    for _ in range(64):
        try:
            body.close()
            return
        except RuntimeError:
            try:
                body.send(None)
            except BaseException:  # noqa: BLE001 - teardown of dead sim
                return
    raise RuntimeError("thread generator would not unwind during shutdown")


class Kernel:
    """A simulated machine: scheduler, clock, threads, devices."""

    def __init__(self, config: KernelConfig | None = None) -> None:
        self.config = config or KernelConfig()
        self.now = 0
        self.rng = DeterministicRng(self.config.seed)
        #: Schedule-exploration seam (repro.explore), or None.  Attached
        #: before the scheduler and fault injector so both route their
        #: nondeterministic choice points through it.
        self.controller = self.config.schedule_controller
        if self.controller is not None:
            self.controller.attach(self)
        self.scheduler = Scheduler(
            self.config.ncpus,
            policy=self.config.scheduler_policy,
            rng=self.rng.fork("scheduler"),
        )
        self.scheduler.controller = self.controller
        self.events = EventHeap()
        self.tracer = Tracer(self.config.trace, self.config.trace_categories)
        # Per-category trace flags, precomputed so hot paths skip even
        # argument construction when a category is off (the common case:
        # tracing disabled entirely).  The golden-schedule tests pin that
        # traced runs still record the identical event stream.
        tracer = self.tracer
        self._trace_switch = tracer.wants(instr.CAT_SWITCH)
        self._trace_tick = tracer.wants(instr.CAT_TICK)
        self._trace_monitor = tracer.wants(instr.CAT_MONITOR)
        self._trace_cv = tracer.wants(instr.CAT_CV)
        self._trace_yield = tracer.wants(instr.CAT_YIELD)
        self._trace_sleep = tracer.wants(instr.CAT_SLEEP)
        self._trace_channel = tracer.wants(instr.CAT_CHANNEL)
        self._trace_fork = tracer.wants(instr.CAT_FORK)
        self._trace_end = tracer.wants(instr.CAT_END)
        self._trace_fault = tracer.wants(instr.CAT_FAULT)
        self._trace_watchdog = tracer.wants(instr.CAT_WATCHDOG)
        self.stats = GlobalStats()
        self.threads: dict[int, SimThread] = {}
        self._tid_counter = itertools.count(1)
        #: Timed waiters: (deadline, seq, thread, epoch, kind); woken lazily
        #: at scheduler ticks (timeouts have timeslice granularity).
        self._timed: list[tuple[int, int, SimThread, int, str]] = []
        self._timed_seq = itertools.count()
        #: Threads blocked in FORK awaiting thread resources (§5.4 "wait").
        self._fork_waiters: list[tuple[SimThread, Fork]] = []
        #: Uncaught errors of threads nobody joined.
        self.pending_thread_errors: list[UncaughtThreadError] = []
        self._dispatches_this_instant = 0
        self._instant = -1

        self._handlers: dict[type, Callable[[Cpu, SimThread, Any], _Outcome]] = {
            Compute: self._h_compute,
            Fork: self._h_fork,
            Join: self._h_join,
            Detach: self._h_detach,
            Yield: self._h_yield,
            YieldButNotToMe: self._h_yield_but_not_to_me,
            DirectedYield: self._h_directed_yield,
            Pause: self._h_pause,
            GetSelf: self._h_get_self,
            GetTime: self._h_get_time,
            SetPriority: self._h_set_priority,
            Enter: self._h_enter,
            Exit: self._h_exit,
            Wait: self._h_wait,
            Notify: self._h_notify,
            Broadcast: self._h_broadcast,
            Channelreceive: self._h_channel_receive,
            Annotate: self._h_annotate,
            MemWrite: self._h_mem_write,
            MemRead: self._h_mem_read,
            Fence: self._h_fence,
        }
        self.memory = create_memory_model(self.config, self.rng.fork("memory"))
        #: Every SimVar touched through traps, so fences can drain buffers.
        self._vars_seen: dict[int, SimVar] = {}
        #: Passive race detector (Eraser lockset + happens-before), or
        #: None.  Imported lazily: analysis depends on the kernel, not
        #: vice versa, except through this optional observer.
        self.race_detector = None
        if self.config.race_detection:
            from repro.analysis.races import RaceDetector

            self.race_detector = RaceDetector(self)
        #: Seeded fault injector (repro.analysis.faults), or None.  Draws
        #: from a forked RNG stream, so a plan with all rates at zero is
        #: schedule-identical to no plan at all.
        self.faults = None
        if self.config.fault_plan is not None:
            from repro.analysis.faults import FaultInjector

            self.faults = FaultInjector(
                self, self.config.fault_plan, self.rng.fork("faults")
            )
        #: Passive waits-for watchdog (repro.analysis.watchdog), or None.
        self.watchdog = None
        if self.config.watchdog:
            from repro.analysis.watchdog import Watchdog

            self.watchdog = Watchdog(self)
        _LIVE_KERNELS.add(self)
        # If the kernel is garbage-collected without shutdown(), close the
        # thread generators cleanly so their monitor-releasing `finally`
        # blocks do not surface as "ignored GeneratorExit" noise.
        self._finalizer = weakref.finalize(
            self, _close_all_bodies, self.threads
        )

    # ------------------------------------------------------------------
    # Public host API
    # ------------------------------------------------------------------

    def fork_root(
        self,
        proc: Callable[..., Any],
        args: tuple = (),
        kwargs: dict | None = None,
        *,
        name: str | None = None,
        priority: int = DEFAULT_PRIORITY,
        role: str | None = None,
        detached: bool = True,
    ) -> SimThread:
        """Create a generation-0 thread from host (non-thread) context.

        Root threads default to detached because the host cannot JOIN
        (JOIN is a trap available only to simulated threads).
        """
        thread = self._create_thread(
            proc, args, kwargs or {}, name=name, priority=priority,
            parent=None, role=role, detached=detached,
        )
        self.scheduler.make_ready(thread)
        return thread

    def channel(self, name: str) -> Channel:
        """Create a device channel bound to this kernel."""
        return Channel(name).bind(self)

    def post_at(self, when: int, action: Callable[["Kernel"], None]) -> int:
        """Run ``action(kernel)`` at absolute sim time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot post into the past ({when} < {self.now})")
        return self.events.push(when, action)

    def post_every(
        self,
        period: int,
        action: Callable[["Kernel"], None],
        *,
        start: int | None = None,
        until: int | None = None,
    ) -> None:
        """Run ``action`` every ``period`` µs, starting at ``start``
        (default: one period from now), until ``until`` (default: forever).
        """
        if period <= 0:
            raise ValueError("period must be positive")
        first = start if start is not None else self.now + period
        if until is not None and first > until:
            return  # ``until`` bounds every firing, including the first

        def recur(kernel: "Kernel") -> None:
            action(kernel)
            next_time = kernel.now + period
            if until is None or next_time <= until:
                kernel.events.push(next_time, recur)

        self.events.push(first, recur)

    def run_for(self, duration: int, **kwargs: Any) -> int:
        """Advance the simulation by ``duration`` µs."""
        return self.run_until(self.now + duration, **kwargs)

    def run_until(
        self,
        t_end: int,
        *,
        raise_on_deadlock: bool = True,
        stop_when: Callable[["Kernel"], bool] | None = None,
    ) -> int:
        """Advance the simulation to ``t_end`` µs (absolute).

        Returns the final clock value.  Raises :class:`Deadlock` if live
        threads exist but nothing can ever run again.  Re-raises the first
        uncaught thread error at the end of the run when the config asks
        for propagation.

        ``stop_when`` is evaluated after each processed instant (post
        watchdog sweep); returning True ends the run early *without*
        fast-forwarding the clock to ``t_end`` — the exploration driver
        uses it to abandon dead schedules the moment a deadlock is
        confirmed instead of grinding ticks to the horizon.
        """
        if t_end < self.now:
            raise ValueError(f"cannot run backwards ({t_end} < {self.now})")
        stopped = False
        while True:
            self._dispatch_idle_cpus()
            t_next = self._next_time()
            if t_next is None:
                if raise_on_deadlock and self._is_deadlocked():
                    raise self._make_deadlock()
                break
            if t_next > t_end:
                break
            self.now = t_next
            self._complete_due_bursts()
            if self._on_tick_boundary():
                self._on_tick()
            for action in self.events.pop_due(self.now):
                action(self)
            if self.watchdog is not None:
                self.watchdog.maybe_check(self.now)
            self._check_preemption()
            if stop_when is not None and stop_when(self):
                stopped = True
                break
        if not stopped:
            self.now = max(self.now, t_end)
        self._propagate_errors()
        return self.now

    @property
    def live_threads(self) -> list[SimThread]:
        return [t for t in self.threads.values() if t.alive]

    def shutdown(self) -> None:
        """Tear the simulation down: force-close every live thread body.

        After shutdown the kernel must not be run again.  Idempotent.
        Called automatically by test harnesses via
        :func:`shutdown_all_kernels` so abandoned generators do not emit
        "ignored GeneratorExit" noise at garbage collection.
        """
        for thread in self.threads.values():
            if thread.alive:
                _drain_close(thread.body)
                thread.state = ThreadState.DONE
                thread.ended_at = self.now
                # Reconcile the live-thread accounting so post-shutdown
                # snapshots balance (created == finished + live, stacks
                # returned), but keep force-killed threads out of
                # ``lifetimes`` — they did not end naturally.
                self.stats.threads_finished += 1
                self.stats.live_threads -= 1
                self.stats.stack_bytes -= self.config.stack_reservation
        self.pending_thread_errors.clear()
        self._finalizer.detach()  # explicit shutdown supersedes GC cleanup
        _LIVE_KERNELS.discard(self)

    def __enter__(self) -> "Kernel":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Clock and dispatch machinery
    # ------------------------------------------------------------------

    def _next_time(self) -> int | None:
        """The next instant at which anything can happen.

        Runs once per kernel-loop iteration, so it tracks the minimum
        directly instead of building a candidate list each time.
        """
        t_next = self.events.next_time()
        for cpu in self.scheduler.cpus:
            busy_until = cpu.busy_until
            if busy_until is not None and (t_next is None or busy_until < t_next):
                t_next = busy_until
        if self._tick_needed():
            quantum = self.config.quantum
            tick = (self.now // quantum + 1) * quantum
            if t_next is None or tick < t_next:
                t_next = tick
        return t_next

    def _tick_needed(self) -> bool:
        """Ticks matter only when a timeout can fire or rotation/donation
        expiry can change a scheduling decision.  Skipping irrelevant
        ticks is a pure optimisation: a lone runner is never rotated."""
        if self._timed:
            return True
        # Tick-driven faults sample the world every quantum, and a FORK
        # feigned-failed into the wait queue is released at the next tick,
        # so fault injection keeps the clock ticking through idle spells.
        if self.faults is not None and (
            self.faults.plan.wants_ticks or self._fork_waiters
        ):
            return True
        if self.scheduler.ready_count() == 0:
            return False
        return any(cpu.current is not None for cpu in self.scheduler.cpus)

    def _on_tick_boundary(self) -> bool:
        return self.now > 0 and self.now % self.config.quantum == 0

    def _on_tick(self) -> None:
        """Scheduler tick: expire donations, fire timeouts, round-robin."""
        self.stats.ticks += 1
        if self._trace_tick:
            self.tracer.record(self.now, instr.CAT_TICK, "tick", "-")
        if self.faults is not None:
            self.faults.on_tick()
            if self._fork_waiters:
                # A feigned resource exhaustion clears by the next tick
                # (capacity permitting), so forced fork-waits are bounded.
                self._release_fork_waiter()
        self.scheduler.clear_donations()
        self._wake_due_timed()
        fair_share = self.scheduler.policy == "fair_share"
        for cpu in self.scheduler.cpus:
            thread = cpu.current
            if thread is None:
                continue
            best = self.scheduler.highest_ready_priority()
            if best is None:
                continue
            # Strict policy: rotate among >= priority.  Fair share: every
            # tick is a fresh lottery, so any competition rotates.
            if fair_share or best >= thread.priority:
                self._interrupt_burst(cpu)
                self._off_cpu(cpu, thread)
                self.scheduler.make_ready(thread)

    def _wake_due_timed(self) -> None:
        while self._timed and self._timed[0][0] <= self.now:
            _deadline, _seq, thread, epoch, kind = heapq.heappop(self._timed)
            if thread.wait_epoch != epoch or not thread.alive:
                continue  # already woken by notify/post; entry is stale
            if kind == "cv":
                self._timeout_cv_wait(thread)
            elif kind == "sleep":
                thread.pending_send = None
                self.scheduler.make_ready(thread)
                if self._trace_sleep:
                    self.tracer.record(
                        self.now, instr.CAT_SLEEP, "wake", thread.name
                    )
            elif kind == "channel":
                channel: Channel = thread.blocked_on
                channel.waiters.remove(thread)
                self.stats.channel_timeouts += 1
                thread.pending_send = None
                self.scheduler.make_ready(thread)
                if self._trace_channel:
                    self.tracer.record(
                        self.now, instr.CAT_CHANNEL, "timeout",
                        thread.name, channel.name,
                    )
            else:  # pragma: no cover - exhaustive kinds
                raise AssertionError(f"unknown timed-wait kind {kind!r}")

    def _timeout_cv_wait(self, thread: SimThread) -> None:
        cv = thread.blocked_on
        cv.waiters.remove(thread)
        cv.timeouts += 1
        self.stats.cv_timeouts += 1
        thread.stats.cv_timeouts += 1
        thread.wake_was_notify = False
        thread.pending_send = False  # WAIT returns False on timeout
        thread.resume_action = ("reacquire", cv.monitor, False)
        self.scheduler.make_ready(thread)
        if self._trace_cv:
            self.tracer.record(
                self.now, instr.CAT_CV, "timeout", thread.name, cv.name
            )

    def _dispatch_idle_cpus(self) -> None:
        if self.now != self._instant:
            self._instant = self.now
            self._dispatches_this_instant = 0
        progress = True
        while progress:
            progress = False
            for cpu in self.scheduler.cpus:
                if cpu.current is not None:
                    continue
                thread = self.scheduler.take_next(cpu)
                if thread is None:
                    continue
                self._dispatches_this_instant += 1
                if self._dispatches_this_instant > _MAX_DISPATCHES_PER_INSTANT:
                    raise KernelUsageError(
                        "scheduling livelock: >100000 dispatches without "
                        "simulated time advancing (a thread is probably "
                        "yielding in a loop with zero switch cost)"
                    )
                self._run_on(cpu, thread)
                progress = True

    def _run_on(self, cpu: Cpu, thread: SimThread) -> None:
        """Put a thread on a CPU and push it forward."""
        thread.state = ThreadState.RUNNING
        if cpu.last_thread is not thread:
            self.stats.switches += 1
            # Model the switch cost as a CPU burst the incoming thread
            # burns before its own work; keeps multiprocessor time sane.
            if self.config.switch_cost:
                thread.pending_compute += self.config.switch_cost
        # Traced for every dispatch (not just switches) so consumers can
        # pair each dispatch with its offcpu event.
        if self._trace_switch:
            self.tracer.record(
                self.now, instr.CAT_SWITCH, "dispatch", thread.name, cpu.index
            )
        cpu.current = thread
        cpu.last_thread = thread
        thread.last_dispatched = self.now
        thread.stats.dispatches += 1
        self.stats.dispatches += 1
        if thread.pending_compute > 0:
            cpu.burst_start = self.now
            cpu.busy_until = self.now + thread.pending_compute
            return
        self._continue_thread(cpu, thread)

    def _complete_due_bursts(self) -> None:
        for cpu in self.scheduler.cpus:
            if cpu.current is not None and cpu.busy_until == self.now:
                thread = cpu.current
                thread.pending_compute = 0
                cpu.busy_until = None
                cpu.burst_start = None
                self._continue_thread(cpu, thread)

    def _continue_thread(self, cpu: Cpu, thread: SimThread) -> None:
        """Advance a thread that has finished burning CPU."""
        if thread.resume_action is not None:
            if not self._attempt_reacquire(cpu, thread):
                return  # blocked on the monitor entry queue
            if thread.pending_compute > 0:
                # Reacquisition charged monitor_overhead: burn it first.
                cpu.burst_start = self.now
                cpu.busy_until = self.now + thread.pending_compute
                return
        self._resume(cpu, thread)

    def _attempt_reacquire(self, cpu: Cpu, thread: SimThread) -> bool:
        """Monitor (re)acquisition after a wake — post-CV-wake, or after
        a monitor exit made this queued thread runnable to compete.

        ``thread.pending_send`` was set when the thread blocked (None for
        a plain Enter, the wait result for a CV wake) and is preserved
        across failed attempts.
        """
        _kind, monitor, was_notify = thread.resume_action
        thread.resume_action = None
        if monitor.owner is None:
            monitor.owner = thread
            thread.held_monitors.append(monitor)
            if self.race_detector is not None:
                self.race_detector.on_acquire(thread, monitor)
            # Charge the same lock-bookkeeping cost an uncontended Enter
            # pays; without this a contended acquisition would be cheaper.
            if self.config.monitor_overhead:
                thread.pending_compute += self.config.monitor_overhead
            return True
        # The monitor is held: this trip through the scheduler was useless.
        if was_notify:
            self.stats.spurious_conflicts += 1
            if self._trace_monitor:
                self.tracer.record(
                    self.now, instr.CAT_MONITOR, "spurious",
                    thread.name, monitor.name,
                )
        self._block_current(cpu, thread, ThreadState.BLOCKED_MONITOR, monitor)
        monitor.entry_queue.append(thread)
        return False

    def _resume(self, cpu: Cpu, thread: SimThread) -> None:
        """Drive the generator through zero-time traps until it burns CPU,
        blocks, yields, or finishes."""
        while True:
            if self._maybe_preempt(cpu, thread):
                return
            try:
                if thread.pending_throw is not None:
                    error = thread.pending_throw
                    thread.pending_throw = None
                    trap = thread.body.throw(error)
                else:
                    value = thread.pending_send
                    thread.pending_send = None
                    trap = thread.body.send(value)
            except StopIteration as stop:
                self._finish(cpu, thread, stop.value)
                return
            except KernelUsageError:
                raise
            except Exception as error:  # noqa: BLE001 - thread death boundary
                self._finish_error(cpu, thread, error)
                return
            if not isinstance(trap, Trap):
                raise KernelUsageError(
                    f"thread {thread.name!r} yielded {trap!r}, not a kernel trap"
                )
            handler = self._handlers[type(trap)]
            outcome = handler(cpu, thread, trap)
            if outcome is _Outcome.SUSPEND:
                return
            if outcome is _Outcome.BURN:
                if self._maybe_preempt(cpu, thread):
                    return
                cpu.burst_start = self.now
                cpu.busy_until = self.now + thread.pending_compute
                return
            # CONTINUE: handle the next trap at the same instant.

    def _maybe_preempt(self, cpu: Cpu, thread: SimThread) -> bool:
        """Strict-priority preemption, unless a donation pins the thread.

        Called at the top of every ``_resume`` iteration — i.e. once per
        trap — so the no-preemption fast path is a single comparison
        against the scheduler's cached best-ready priority.
        """
        scheduler = self.scheduler
        if scheduler.best_ready <= thread.priority:
            return False
        if cpu.donee is thread or scheduler.policy == "fair_share":
            return False
        self.stats.preemptions += 1
        thread.stats.preemptions += 1
        self._off_cpu(cpu, thread)
        # Preempted threads keep their round-robin place: queue front.
        scheduler.make_ready(thread, front=True)
        if self._trace_switch:
            self.tracer.record(self.now, instr.CAT_SWITCH, "preempt", thread.name)
        return True

    def _check_preemption(self) -> None:
        for cpu in self.scheduler.cpus:
            thread = cpu.current
            if thread is None:
                continue
            self._interrupt_burst_if_preempting(cpu, thread)

    def _interrupt_burst_if_preempting(self, cpu: Cpu, thread: SimThread) -> None:
        if cpu.donee is thread:
            return
        if not self.scheduler.would_preempt(thread.priority):
            return
        self._interrupt_burst(cpu)
        self.stats.preemptions += 1
        thread.stats.preemptions += 1
        self._off_cpu(cpu, thread)
        self.scheduler.make_ready(thread, front=True)
        if self._trace_switch:
            self.tracer.record(self.now, instr.CAT_SWITCH, "preempt", thread.name)

    def _interrupt_burst(self, cpu: Cpu) -> None:
        """Account a partially-completed compute burst."""
        thread = cpu.current
        if thread is None or cpu.busy_until is None:
            return
        consumed = self.now - cpu.burst_start
        thread.pending_compute = max(0, thread.pending_compute - consumed)
        cpu.busy_until = None
        cpu.burst_start = None

    def _off_cpu(self, cpu: Cpu, thread: SimThread) -> None:
        """Deschedule accounting: close the execution interval."""
        interval = self.now - thread.last_dispatched
        thread.stats.run_intervals.append(interval)
        thread.stats.cpu_time += interval
        self.stats.note_interval(interval, thread.priority)
        # A uniform leave-CPU marker so trace consumers can close run
        # spans regardless of *why* the thread left (block/yield/finish).
        if self._trace_switch:
            self.tracer.record(self.now, instr.CAT_SWITCH, "offcpu", thread.name)
        cpu.current = None
        cpu.busy_until = None
        cpu.burst_start = None

    def _block_current(
        self, cpu: Cpu, thread: SimThread, state: ThreadState, blocked_on: Any
    ) -> None:
        self._off_cpu(cpu, thread)
        thread.state = state
        thread.blocked_on = blocked_on
        if self.watchdog is not None:
            self.watchdog.on_block(thread)

    # ------------------------------------------------------------------
    # Thread lifecycle
    # ------------------------------------------------------------------

    def _create_thread(
        self,
        proc: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        *,
        name: str | None,
        priority: int,
        parent: SimThread | None,
        role: str | None,
        detached: bool,
    ) -> SimThread:
        if not (MIN_PRIORITY <= priority <= MAX_PRIORITY):
            raise KernelUsageError(f"priority {priority} outside 1..7")
        body = proc(*args, **kwargs)
        if not inspect.isgenerator(body):
            raise KernelUsageError(
                f"thread proc {proc!r} must be a generator function "
                "(a body that yields kernel traps)"
            )
        tid = next(self._tid_counter)
        thread = SimThread(
            tid=tid,
            name=name or f"{proc.__name__}#{tid}",
            body=body,
            priority=priority,
            created_at=self.now,
            parent=parent,
            role=role,
        )
        thread.detached = detached
        self.threads[tid] = thread
        self.stats.threads_created += 1
        self.stats.live_threads += 1
        self.stats.max_live_threads = max(
            self.stats.max_live_threads, self.stats.live_threads
        )
        self.stats.stack_bytes += self.config.stack_reservation
        self.stats.max_stack_bytes = max(
            self.stats.max_stack_bytes, self.stats.stack_bytes
        )
        self.stats.thread_log.append(
            ThreadRecord(
                tid=tid,
                name=thread.name,
                parent_tid=parent.tid if parent else None,
                generation=thread.generation,
                priority=priority,
                created_at=self.now,
                role=role,
            )
        )
        if self._trace_fork:
            self.tracer.record(
                self.now, instr.CAT_FORK, "create", thread.name,
                parent.name if parent else None,
            )
        if self.race_detector is not None:
            self.race_detector.on_fork(parent, thread)
        return thread

    def _finish(self, cpu: Cpu, thread: SimThread, value: Any) -> None:
        if thread.held_monitors:
            names = [m.name for m in thread.held_monitors]
            raise MonitorProtocolError(
                f"thread {thread.name!r} finished while holding {names}"
            )
        self._off_cpu(cpu, thread)
        thread.state = ThreadState.DONE
        thread.result = value
        thread.ended_at = self.now
        self._account_thread_end(thread)
        if thread.joiner is not None:
            joiner = thread.joiner
            if self.race_detector is not None:
                self.race_detector.on_join(joiner, thread)
            joiner.pending_send = value
            self.scheduler.make_ready(joiner)
        if self._trace_end:
            self.tracer.record(self.now, instr.CAT_END, "finish", thread.name)
        self._release_fork_waiter()

    def _finish_error(self, cpu: Cpu, thread: SimThread, error: BaseException) -> None:
        # An exception unwinding through user-level `finally` clauses has
        # already released monitors (Exit traps execute during the throw);
        # anything still held means the cleanup protocol was violated.
        if thread.held_monitors:
            names = [m.name for m in thread.held_monitors]
            raise MonitorProtocolError(
                f"thread {thread.name!r} died holding {names}: {error!r}"
            ) from error
        self._off_cpu(cpu, thread)
        thread.state = ThreadState.DONE
        thread.error = error
        thread.ended_at = self.now
        self._account_thread_end(thread)
        wrapped = UncaughtThreadError(thread.name, error)
        if thread.joiner is not None:
            joiner = thread.joiner
            if self.race_detector is not None:
                self.race_detector.on_join(joiner, thread)
            joiner.pending_throw = wrapped
            self.scheduler.make_ready(joiner)
        elif not isinstance(error, ThreadKilled):
            # Injected kills are faults, not workload bugs: an unjoined
            # victim's death must not fail the whole run at shutdown.
            self.pending_thread_errors.append(wrapped)
        if self._trace_end:
            self.tracer.record(
                self.now, instr.CAT_END, "die", thread.name, repr(error)
            )
        self._release_fork_waiter()

    def _account_thread_end(self, thread: SimThread) -> None:
        self.stats.threads_finished += 1
        self.stats.live_threads -= 1
        self.stats.stack_bytes -= self.config.stack_reservation
        self.stats.lifetimes.append((thread.lifetime, thread.role))

    def _release_fork_waiter(self) -> None:
        """A thread slot freed up: unblock the oldest waiting FORK."""
        if not self._fork_waiters:
            return
        if self.stats.live_threads >= self.config.max_threads:
            return
        waiter, trap = self._fork_waiters.pop(0)
        child = self._create_thread(
            trap.proc, trap.args, trap.kwargs,
            name=trap.name,
            priority=trap.priority if trap.priority is not None else waiter.priority,
            parent=waiter, role=None, detached=trap.detached,
        )
        self.scheduler.make_ready(child)
        self.stats.forks += 1
        waiter.stats.forks_issued += 1
        waiter.forked_children.append(child.tid)
        waiter.pending_send = child
        self.scheduler.make_ready(waiter)

    #: States that indicate a genuine wedge when nothing can run: resource
    #: waits only other simulated threads could ever satisfy.
    _DEADLOCK_STATES = frozenset(
        {
            ThreadState.BLOCKED_MONITOR,
            ThreadState.JOINING,
            ThreadState.FORK_WAIT,
        }
    )

    def _is_deadlocked(self) -> bool:
        """Live threads exist, nothing can run, and someone is stuck on an
        internal resource.

        Threads blocked on device channels are *not* deadlocked — channels
        are the external-world boundary and host code may post to them in
        a later run (an idle world's eternal threads sit exactly there).
        Untimed CV waits without any runnable notifier are likewise the
        normal quiescent state of server threads, so they do not raise by
        themselves; but a thread queued on a monitor, a JOIN, or a FORK
        resource wait that can never resolve is a real wedge.
        """
        live = [t for t in self.threads.values() if t.alive]
        if not live:
            return False
        if any(t.state is ThreadState.RECEIVING for t in live):
            return False
        return any(t.state in self._DEADLOCK_STATES for t in live)

    def _deadlock_report(self) -> str:
        return str(self._make_deadlock())

    def _make_deadlock(self) -> Deadlock:
        """Build the global-wedge :class:`Deadlock` with diagnosis rows.

        The table names, for every live thread, what it waits ON and who
        holds that resource (monitor owner, CV's monitor owner, join
        target) — ``describe_block`` only said what state a thread was in.
        Row formatting lives in :mod:`repro.analysis.watchdog` (lazy
        import: this is an error path, never hot) so the watchdog's
        partial-deadlock reports and the CLI table share it.
        """
        from repro.analysis.watchdog import deadlock_rows, format_rows

        rows = deadlock_rows(self.threads.values())
        message = (
            "no runnable threads and no pending events; blocked threads:\n"
            + format_rows(rows)
        )
        return Deadlock(message, rows=rows)

    def _propagate_errors(self) -> None:
        if self.config.propagate_thread_errors and self.pending_thread_errors:
            raise self.pending_thread_errors.pop(0)

    # ------------------------------------------------------------------
    # Channels (device boundary)
    # ------------------------------------------------------------------

    def _channel_post(self, channel: Channel, item: Any) -> None:
        self.stats.channel_posts += 1
        if self._trace_channel:
            self.tracer.record(
                self.now, instr.CAT_CHANNEL, "post", "-", channel.name
            )
        if self.race_detector is not None:
            self.race_detector.on_channel_post(channel)
        # A waiter with a pending kill will unwind at resume, not
        # receive: handing it the item would drop the item on the floor.
        # Skip doomed waiters — resumed empty-handed to die, while the
        # item goes to a live receiver (or the buffer).
        while channel.waiters and channel.waiters[0].pending_throw is not None:
            doomed = channel.waiters.popleft()
            doomed.wait_epoch += 1
            self.scheduler.make_ready(doomed)
        if channel.waiters:
            waiter = channel.waiters.popleft()
            waiter.wait_epoch += 1  # invalidate any receive timeout
            waiter.pending_send = item
            channel.receives += 1
            self.stats.channel_receives += 1
            if self.race_detector is not None:
                self.race_detector.on_channel_receive(waiter, channel)
            self.scheduler.make_ready(waiter)
        else:
            channel.items.append(item)

    # ------------------------------------------------------------------
    # Trap handlers
    # ------------------------------------------------------------------

    def _h_compute(self, cpu: Cpu, thread: SimThread, trap: Compute) -> _Outcome:
        if trap.amount == 0:
            return _Outcome.CONTINUE
        thread.pending_compute += trap.amount
        return _Outcome.BURN

    def _h_fork(self, cpu: Cpu, thread: SimThread, trap: Fork) -> _Outcome:
        forced = (
            self.faults is not None
            and self.stats.live_threads < self.config.max_threads
            and self.faults.fail_fork()
        )
        if forced or self.stats.live_threads >= self.config.max_threads:
            if forced:
                self.faults.note("fork_fail", thread.name)
            self.stats.fork_failures += 1
            if self.config.fork_failure == FORK_FAILURE_RAISE:
                # The old systems "would raise an error when a FORK failed".
                thread.pending_throw = ForkFailed(
                    f"out of thread resources ({self.config.max_threads})"
                )
                return _Outcome.CONTINUE
            # "Our more recent implementations simply wait in the fork
            # implementation for more resources to become available."
            self.stats.fork_waits += 1
            self._block_current(cpu, thread, ThreadState.FORK_WAIT, "fork-resources")
            self._fork_waiters.append((thread, trap))
            return _Outcome.SUSPEND
        child = self._create_thread(
            trap.proc, trap.args, trap.kwargs,
            name=trap.name,
            priority=trap.priority if trap.priority is not None else thread.priority,
            parent=thread, role=None, detached=trap.detached,
        )
        self.scheduler.make_ready(child)
        self.stats.forks += 1
        thread.stats.forks_issued += 1
        thread.forked_children.append(child.tid)
        thread.pending_send = child
        return _Outcome.CONTINUE

    def _h_join(self, cpu: Cpu, thread: SimThread, trap: Join) -> _Outcome:
        target = trap.thread
        if target is thread:
            raise JoinProtocolError(f"{thread.name!r} cannot JOIN itself")
        if target.detached:
            raise JoinProtocolError(f"cannot JOIN detached thread {target.name!r}")
        if target.joined:
            raise JoinProtocolError(f"{target.name!r} JOINed more than once")
        target.joined = True
        self.stats.joins += 1
        if not target.alive:
            if self.race_detector is not None:
                self.race_detector.on_join(thread, target)
            if target.error is not None:
                thread.pending_throw = UncaughtThreadError(target.name, target.error)
            else:
                thread.pending_send = target.result
            return _Outcome.CONTINUE
        target.joiner = thread
        self._block_current(cpu, thread, ThreadState.JOINING, target)
        return _Outcome.SUSPEND

    def _h_detach(self, cpu: Cpu, thread: SimThread, trap: Detach) -> _Outcome:
        target = trap.thread
        if target.joined:
            raise JoinProtocolError(f"cannot DETACH joined thread {target.name!r}")
        target.detached = True
        thread.pending_send = None
        return _Outcome.CONTINUE

    def _h_yield(self, cpu: Cpu, thread: SimThread, trap: Yield) -> _Outcome:
        self.stats.yields += 1
        thread.stats.yields += 1
        thread.pending_send = None
        self._off_cpu(cpu, thread)
        self.scheduler.make_ready(thread)
        if self._trace_yield:
            self.tracer.record(self.now, instr.CAT_YIELD, "yield", thread.name)
        return _Outcome.SUSPEND

    def _h_yield_but_not_to_me(
        self, cpu: Cpu, thread: SimThread, trap: YieldButNotToMe
    ) -> _Outcome:
        self.stats.yields += 1
        thread.stats.yields += 1
        thread.pending_send = None
        other = self.scheduler.peek_best_other(thread)
        if other is None:
            return _Outcome.CONTINUE  # nobody else to give the CPU to
        cpu.donee = other
        self._off_cpu(cpu, thread)
        self.scheduler.make_ready(thread)
        if self._trace_yield:
            self.tracer.record(
                self.now, instr.CAT_YIELD, "yield-but-not-to-me",
                thread.name, other.name,
            )
        return _Outcome.SUSPEND

    def _h_directed_yield(
        self, cpu: Cpu, thread: SimThread, trap: DirectedYield
    ) -> _Outcome:
        self.stats.directed_yields += 1
        thread.stats.yields += 1
        thread.pending_send = None
        target = trap.target
        if target.state is not ThreadState.READY:
            return _Outcome.CONTINUE  # target cannot use the donation
        cpu.donee = target
        self._off_cpu(cpu, thread)
        self.scheduler.make_ready(thread)
        if self._trace_yield:
            self.tracer.record(
                self.now, instr.CAT_YIELD, "directed-yield",
                thread.name, target.name,
            )
        return _Outcome.SUSPEND

    def _h_pause(self, cpu: Cpu, thread: SimThread, trap: Pause) -> _Outcome:
        self._block_current(cpu, thread, ThreadState.SLEEPING, "sleep")
        self._arm_timed(thread, self.now + trap.duration, "sleep")
        if self._trace_sleep:
            self.tracer.record(
                self.now, instr.CAT_SLEEP, "sleep", thread.name, trap.duration
            )
        return _Outcome.SUSPEND

    def _h_get_self(self, cpu: Cpu, thread: SimThread, trap: GetSelf) -> _Outcome:
        thread.pending_send = thread
        return _Outcome.CONTINUE

    def _h_get_time(self, cpu: Cpu, thread: SimThread, trap: GetTime) -> _Outcome:
        thread.pending_send = self.now
        return _Outcome.CONTINUE

    def _h_set_priority(
        self, cpu: Cpu, thread: SimThread, trap: SetPriority
    ) -> _Outcome:
        if not (MIN_PRIORITY <= trap.priority <= MAX_PRIORITY):
            raise KernelUsageError(f"priority {trap.priority} outside 1..7")
        previous = thread.priority
        thread.priority = trap.priority
        thread.pending_send = previous
        return _Outcome.CONTINUE

    def _h_annotate(self, cpu: Cpu, thread: SimThread, trap: Annotate) -> _Outcome:
        self.tracer.record(
            self.now, instr.CAT_ANNOTATE, trap.label, thread.name, trap.data
        )
        thread.pending_send = None
        return _Outcome.CONTINUE

    # -- shared memory (Section 5.5) ---------------------------------------

    def _h_mem_write(self, cpu: Cpu, thread: SimThread, trap: MemWrite) -> _Outcome:
        self._vars_seen[trap.var.uid] = trap.var
        token = None
        if self.race_detector is not None:
            # The detector sees the access with the thread's current
            # holding-lockset (thread.held_monitors) attached.  The
            # returned write token travels with the stored value so a
            # later reader can report which write it observed.
            token = self.race_detector.on_write(thread, trap.var, self.now)
        if self.controller is not None and self.memory.drainable:
            self._offer_mem_drains()
        self.memory.store(
            trap.var, trap.value, cpu.index, self.now, thread=thread, token=token
        )
        thread.pending_send = None
        return _Outcome.CONTINUE

    def _h_mem_read(self, cpu: Cpu, thread: SimThread, trap: MemRead) -> _Outcome:
        self._vars_seen[trap.var.uid] = trap.var
        if self.controller is not None and self.memory.drainable:
            self._offer_mem_drains()
        value, token = self.memory.load_observed(
            trap.var, cpu.index, self.now, thread=thread
        )
        thread.pending_send = value
        if self.race_detector is not None:
            self.race_detector.on_read(thread, trap.var, self.now, observed=token)
        return _Outcome.CONTINUE

    def _h_fence(self, cpu: Cpu, thread: SimThread, trap: Fence) -> _Outcome:
        self._fence(cpu, thread)
        if self.race_detector is not None:
            self.race_detector.on_fence(thread)
        thread.pending_send = None
        return _Outcome.CONTINUE

    def _fence(self, cpu: Cpu, thread: SimThread) -> None:
        if not self.memory.buffered:
            return  # strong ordering: fences are free no-ops
        self.memory.fence_cpu(cpu.index, list(self._vars_seen.values()), thread=thread)

    def _offer_mem_drains(self) -> None:
        """Controller-visible store-buffer drains (``mem.drain`` sites).

        Before each memory access, every buffered store the model could
        legally commit next is offered to the schedule controller as one
        decision: choice 0 holds all buffers (the recorded default —
        buffers then drain only by age or fences, exactly as in an
        uncontrolled run), choice k commits option k.  Draining re-offers
        until the controller holds, so an explorer can flush any legal
        combination at any access boundary.
        """
        memory = self.memory
        controller = self.controller
        while True:
            options = memory.drain_options()
            if not options:
                return
            labels = ("hold buffers",) + tuple(label for _key, label in options)
            choice = controller.decide(
                "mem.drain", len(options) + 1, lambda _seq: 0, labels=labels
            )
            if choice == 0:
                return
            memory.drain_option(options[choice - 1][0], self.now)

    # -- monitors and condition variables ---------------------------------

    def _h_enter(self, cpu: Cpu, thread: SimThread, trap: Enter) -> _Outcome:
        monitor = trap.monitor
        # "The monitor implementation for weak ordering can use memory
        # barrier instructions to ensure that all monitor-protected data
        # access is consistent."
        self._fence(cpu, thread)
        monitor.enters += 1
        self.stats.ml_enters += 1
        thread.stats.monitor_enters += 1
        self.stats.monitors_used.add(monitor.uid)
        if self._trace_monitor:
            self.tracer.record(
                self.now, instr.CAT_MONITOR, "enter", thread.name, monitor.name
            )
        if monitor.owner is None:
            monitor.owner = thread
            thread.held_monitors.append(monitor)
            if self.race_detector is not None:
                self.race_detector.on_acquire(thread, monitor)
            thread.pending_send = None
            if self.config.monitor_overhead:
                thread.pending_compute += self.config.monitor_overhead
                return _Outcome.BURN
            return _Outcome.CONTINUE
        if monitor.owner is thread:
            raise MonitorProtocolError(
                f"{thread.name!r} re-entered monitor {monitor.name!r} "
                "(Mesa monitors are not reentrant)"
            )
        monitor.blocks += 1
        self.stats.ml_contended += 1
        thread.stats.monitor_blocks += 1
        thread.pending_send = None
        self._block_current(cpu, thread, ThreadState.BLOCKED_MONITOR, monitor)
        monitor.entry_queue.append(thread)
        if self.config.monitor_priority_inheritance:
            self._donate_priority(monitor, thread)
        if self._trace_monitor:
            self.tracer.record(
                self.now, instr.CAT_MONITOR, "block", thread.name, monitor.name
            )
        return _Outcome.SUSPEND

    def _donate_priority(self, monitor: Any, blocker: SimThread) -> None:
        """Priority-inheritance ablation: boost the owner to the blocked
        thread's priority until it exits the monitor."""
        owner = monitor.owner
        if owner is None or owner.priority >= blocker.priority:
            return
        if monitor.boost_restore is None:
            monitor.boost_restore = owner.priority
        if owner.state is ThreadState.READY:
            self.scheduler.requeue_for_priority_change(owner, blocker.priority)
        else:
            owner.priority = blocker.priority

    def _h_exit(self, cpu: Cpu, thread: SimThread, trap: Exit) -> _Outcome:
        monitor = trap.monitor
        if monitor.owner is not thread:
            raise MonitorProtocolError(
                f"{thread.name!r} exited monitor {monitor.name!r} it does not hold"
            )
        thread.held_monitors.remove(monitor)
        self.stats.ml_exits += 1
        if self.race_detector is not None:
            self.race_detector.on_release(thread, monitor)
        if monitor.boost_restore is not None:
            # Inheritance ablation: drop back to the pre-boost priority.
            thread.priority = monitor.boost_restore
            monitor.boost_restore = None
        self._fence(cpu, thread)
        self._hand_off_monitor(monitor)
        if self._trace_monitor:
            self.tracer.record(
                self.now, instr.CAT_MONITOR, "exit", thread.name, monitor.name
            )
        thread.pending_send = None
        if self.config.monitor_overhead:
            thread.pending_compute += self.config.monitor_overhead
            return _Outcome.BURN
        return _Outcome.CONTINUE

    def _hand_off_monitor(self, monitor: Any) -> None:
        """Release a mutex: wake the first queued thread to *compete*.

        Mesa monitors release the lock and make the head waiter runnable;
        the waiter reacquires when scheduled ("threads must compete for
        the monitor's mutex").  Direct ownership handoff would create
        lock convoys: a high-priority thread re-entering immediately
        after exit would block on a lock owned by a thread that has not
        even run yet.  Competition also permits barging, exactly as the
        real implementation did.
        """
        monitor.owner = None
        if monitor.entry_queue:
            waiter = monitor.entry_queue.popleft()
            waiter.resume_action = ("reacquire", monitor, False)
            self.scheduler.make_ready(waiter)

    def _h_wait(self, cpu: Cpu, thread: SimThread, trap: Wait) -> _Outcome:
        cv = trap.condition
        monitor = cv.monitor
        if monitor.owner is not thread:
            raise MonitorProtocolError(
                f"{thread.name!r} WAITed on {cv.name!r} without holding "
                f"monitor {monitor.name!r}"
            )
        cv.waits += 1
        self.stats.cv_waits += 1
        thread.stats.cv_waits += 1
        self.stats.cvs_used.add(cv.uid)
        if self._trace_cv:
            self.tracer.record(
                self.now, instr.CAT_CV, "wait", thread.name, cv.name
            )
        # Atomically release the monitor...
        thread.held_monitors.remove(monitor)
        if self.race_detector is not None:
            self.race_detector.on_release(thread, monitor)
        self._hand_off_monitor(monitor)
        # ...and sleep on the condition.
        thread.wake_was_notify = False
        thread.wait_epoch += 1
        self._block_current(cpu, thread, ThreadState.WAITING_CV, cv)
        cv.waiters.append(thread)
        timeout = trap.timeout if trap.timeout is not None else cv.default_timeout
        if timeout is not None:
            self._arm_timed(thread, self.now + timeout, "cv")
        return _Outcome.SUSPEND

    def _h_notify(self, cpu: Cpu, thread: SimThread, trap: Notify) -> _Outcome:
        cv = trap.condition
        self._require_monitor_for_cv(thread, cv, "NOTIFY")
        cv.notifies += 1
        self.stats.cv_notifies += 1
        if self._trace_cv:
            self.tracer.record(
                self.now, instr.CAT_CV, "notify", thread.name, cv.name
            )
        if self.race_detector is not None:
            self.race_detector.on_notify(thread, cv)
        if (
            self.faults is not None
            and cv.waiters
            and self.faults.steal_notify()
        ):
            # The NOTIFY happened (counted, traced, race-ordered) but its
            # wakeup is lost — the §4.2 hazard that WAIT-in-a-loop code
            # with timeouts survives and IF-based code does not.
            self.faults.note("drop_notify", thread.name, cv.name)
            thread.pending_send = None
            return _Outcome.CONTINUE
        wake = 1
        if self.config.notify_wakes == WAKES_AT_LEAST_ONE and len(cv.waiters) > 1:
            if self.controller is not None:
                extra = self.controller.decide(
                    "sched.notify_extra",
                    2,
                    lambda _seq: int(
                        self.rng.chance(self.config.at_least_one_extra_prob)
                    ),
                )
            else:
                extra = self.rng.chance(self.config.at_least_one_extra_prob)
            if extra:
                wake = 2
        for _ in range(min(wake, len(cv.waiters))):
            self._wake_cv_waiter(cv)
        thread.pending_send = None
        return _Outcome.CONTINUE

    def _h_broadcast(self, cpu: Cpu, thread: SimThread, trap: Broadcast) -> _Outcome:
        cv = trap.condition
        self._require_monitor_for_cv(thread, cv, "BROADCAST")
        cv.broadcasts += 1
        self.stats.cv_broadcasts += 1
        if self._trace_cv:
            self.tracer.record(
                self.now, instr.CAT_CV, "broadcast", thread.name, cv.name
            )
        if self.race_detector is not None:
            self.race_detector.on_notify(thread, cv)
        while cv.waiters:
            self._wake_cv_waiter(cv)
        thread.pending_send = None
        return _Outcome.CONTINUE

    def _require_monitor_for_cv(self, thread: SimThread, cv: Any, op: str) -> None:
        """"The compiler enforces the rule that CV operations are only
        invoked with the monitor lock held" — we enforce it at runtime."""
        if cv.monitor.owner is not thread:
            raise MonitorProtocolError(
                f"{thread.name!r} invoked {op} on {cv.name!r} without holding "
                f"monitor {cv.monitor.name!r}"
            )

    def _wake_cv_waiter(self, cv: Any) -> None:
        waiter = cv.waiters.popleft()
        self._deliver_cv_wake(cv, waiter)

    def _inject_spurious_wake(self, thread: SimThread) -> None:
        """Fault injection: wake a CV waiter with no NOTIFY pending.

        The wake is indistinguishable from a notification to the waiter
        (WAIT returns True) — exactly the hazard that makes "re-check the
        predicate in a loop" mandatory (Section 4.2).  Unlike a real
        NOTIFY the waiter always re-competes for the mutex: the deferred
        path parks waiters on the notifier's entry queue awaiting its
        Exit, but a spurious wake has no notifier — the monitor may be
        unowned, and a parked waiter would strand there forever.
        """
        cv = thread.blocked_on
        cv.waiters.remove(thread)
        self.faults.note("spurious_wakeup", thread.name, cv.name)
        thread.wait_epoch += 1  # cancels the pending timeout lazily
        thread.wake_was_notify = True
        self.stats.cv_wakeups += 1
        thread.pending_send = True  # looks exactly like a notification
        thread.resume_action = ("reacquire", cv.monitor, False)
        self.scheduler.make_ready(thread)

    def _inject_kill(self, thread: SimThread, *, note: bool = True) -> None:
        """Fault injection: kill a thread at its next trap boundary.

        Delivered via ``pending_throw``, so the generator unwinds through
        its ``finally`` clauses — monitors are released like any other
        exception exit, and ``_finish_error`` still enforces that.

        ``note=False`` for *scripted* kills (directed chaos strikes):
        they are part of the scenario, not an injected fault, and must
        not perturb fault accounting or the trace merely because a
        (possibly zero-rate) fault plan happens to be installed.
        """
        thread.pending_throw = ThreadKilled(
            f"fault injection killed {thread.name!r} at {self.now}us"
        )
        if note and self.faults is not None:
            self.faults.note("kill", thread.name)

    def _deliver_cv_wake(self, cv: Any, waiter: SimThread) -> None:
        """Wake a thread already removed from ``cv.waiters``."""
        waiter.wait_epoch += 1  # cancels the pending timeout lazily
        waiter.wake_was_notify = True
        if self.race_detector is not None:
            self.race_detector.on_cv_wake(waiter, cv)
        waiter.stats.cv_notifies_received += 1
        self.stats.cv_wakeups += 1
        if self.config.notify_semantics == NOTIFY_DEFERRED:
            # The fix: the waiter goes straight onto the mutex entry queue
            # and becomes runnable only when the notifier exits the monitor.
            waiter.state = ThreadState.BLOCKED_MONITOR
            waiter.blocked_on = cv.monitor
            waiter.pending_send = True
            cv.monitor.entry_queue.append(waiter)
        else:
            # Original behaviour: made runnable immediately; it will run,
            # find the mutex held, and block — a spurious lock conflict.
            waiter.pending_send = True  # WAIT returns True when notified
            waiter.resume_action = ("reacquire", cv.monitor, True)
            self.scheduler.make_ready(waiter)

    def _h_channel_receive(
        self, cpu: Cpu, thread: SimThread, trap: Channelreceive
    ) -> _Outcome:
        channel = trap.channel
        if channel.items:
            thread.pending_send = channel.items.popleft()
            channel.receives += 1
            self.stats.channel_receives += 1
            if self.race_detector is not None:
                self.race_detector.on_channel_receive(thread, channel)
            return _Outcome.CONTINUE
        thread.wait_epoch += 1
        self._block_current(cpu, thread, ThreadState.RECEIVING, channel)
        channel.waiters.append(thread)
        if trap.timeout is not None:
            self._arm_timed(thread, self.now + trap.timeout, "channel")
        return _Outcome.SUSPEND

    def _arm_timed(self, thread: SimThread, deadline: int, kind: str) -> None:
        if self.faults is not None:
            jitter = self.faults.timer_jitter()
            if jitter:
                self.faults.note("timer_jitter", thread.name, jitter)
                deadline += jitter
        # Stamp the epoch so observers can tell a timed wait (self-waking,
        # never part of a deadlock cycle) from an untimed one.
        thread.timed_epoch = thread.wait_epoch
        heapq.heappush(
            self._timed,
            (deadline, next(self._timed_seq), thread, thread.wait_epoch, kind),
        )
