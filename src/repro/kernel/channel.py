"""Device channels: the boundary between the outside world and threads.

In the real systems, keyboard and mouse interrupts, network packets and
X-server bytes arrive from outside the thread world.  Workload generators
play that role here: they run as timed kernel events (not as threads) and
``post`` items into channels; simulated threads block on
``Channelreceive`` to consume them.

A channel is the only place an external event may wake a thread, which
keeps the Mesa rule intact that NOTIFY happens only under the monitor —
device interrupts do not go through monitors, exactly as in PCR where the
IO layer sits below the thread primitives.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.thread import SimThread

_uid_counter = itertools.count(1)


class Channel:
    """An unbounded FIFO fed by external events, drained by threads.

    Thread-side use (inside a thread body)::

        event = yield Channelreceive(keyboard, timeout=msec(500))

    External side (inside a workload event)::

        kernel.post_at(t, lambda k: keyboard.post(KeyStroke("a")))
    """

    def __init__(self, name: str) -> None:
        self.uid = next(_uid_counter)
        self.name = name
        self.items: deque[Any] = deque()
        #: Threads blocked in Channelreceive, FIFO.
        self.waiters: deque["SimThread"] = deque()
        self.posts = 0
        self.receives = 0
        #: Set by the kernel when the channel is registered, so ``post``
        #: can wake waiters through the kernel.
        self._kernel: Any = None

    def bind(self, kernel: Any) -> "Channel":
        """Associate the channel with a kernel (done once, at creation)."""
        if self._kernel is not None and self._kernel is not kernel:
            raise ValueError(f"channel {self.name!r} already bound")
        self._kernel = kernel
        return self

    def post(self, item: Any) -> None:
        """Deliver an item; wakes the first blocked receiver, if any.

        Must be called from kernel-event context (a workload callback) or
        from host code between ``run`` calls — not from thread bodies,
        which should use monitor-protected queues instead.
        """
        if self._kernel is None:
            raise ValueError(f"channel {self.name!r} not bound to a kernel")
        self.posts += 1
        self._kernel._channel_post(self, item)

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return f"<Channel {self.name!r} depth={len(self.items)}>"
