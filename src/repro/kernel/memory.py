"""Simulated shared memory with selectable ordering (Section 5.5).

"We saw several places where the correctness of threaded code depended on
strong memory ordering, an assumption no longer true in some modern
multiprocessors with weakly ordered memory."

The model is a per-CPU store buffer, the minimal machine on which the
paper's two examples break:

* a writer constructs a record and publishes a pointer to it; under weak
  ordering a reader on another CPU can follow the pointer before the
  record's fields are visible;
* Birrell's call-initialiser-exactly-once hint: a thread "can both believe
  that the initializer has already been called and not yet be able to see
  the initialized data".

Mechanics: a store by a thread on CPU *i* is immediately visible to CPU
*i* but becomes visible to other CPUs only after ``store_buffer_delay``
microseconds — unless a fence drains the buffer first.  Monitor entry and
exit fence implicitly ("The monitor implementation for weak ordering can
use memory barrier instructions"), which is why monitor-protected data is
always safe.  Under ``memory_order="strong"`` every store is globally
visible at once and fences are no-ops.

Thread code uses memory through the ``MemRead``/``MemWrite``/``Fence``
traps (or the ``SimVar`` convenience wrappers), never by mutating Python
objects directly — direct mutation would silently get strong ordering.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.kernel.config import MODEL_PSO, MODEL_TSO, MODEL_WEAK, KernelConfig

_uid_counter = itertools.count(1)


class SimVar:
    """One shared memory cell.

    ``committed`` holds the globally visible value; ``pending`` holds
    in-flight stores as ``(visible_at, cpu_index, value, token)`` tuples
    in program order.  ``token`` is the race detector's write token for
    the committed value (None when race detection is off or the value is
    the initial one) — it rides along so a reader can tell the detector
    *which* write it observed.
    """

    __slots__ = ("uid", "name", "committed", "pending", "token")

    def __init__(self, name: str, initial: Any = None) -> None:
        self.uid = next(_uid_counter)
        self.name = name
        self.committed = initial
        self.pending: list[tuple[int, int, Any, Any]] = []
        self.token: Any = None

    def __repr__(self) -> str:
        return f"<SimVar {self.name!r}={self.committed!r} pending={len(self.pending)}>"


class MemorySystem:
    """Applies the configured ordering to SimVar loads and stores.

    Weak ordering here is genuinely weak, not TSO: each store's
    visibility delay is drawn (deterministically) from ``[1, delay]``, so
    two stores by the same CPU to *different* variables can become
    globally visible out of program order — the reordering behind both
    §5.5 examples.  Per-variable coherence is preserved: once a later
    store to a variable is visible, earlier ones can never resurface.
    """

    #: No controller-visible drain points: the legacy models commit on
    #: time and fences only (see :mod:`repro.memmodel` for the seam).
    drainable = False

    def __init__(self, config: KernelConfig, rng: Any) -> None:
        self.weak = config.memory_model == MODEL_WEAK
        #: Whether stores can be buffered at all — the kernel's fence
        #: fast path skips the memory system entirely when this is False.
        self.buffered = self.weak
        self._delay = max(1, config.store_buffer_delay)
        self._rng = rng
        #: Fences that actually drained a store buffer.  Under strong
        #: ordering every fence is a no-op and this stays 0.
        self.fences = 0
        #: Every ``fence_cpu`` call, effective or not.
        self.fence_requests = 0
        self.stores = 0
        self.loads = 0
        #: Loads that observed a value another CPU had already overwritten
        #: (i.e. a stale read) — the §5.5 hazard counter.
        self.stale_loads = 0

    def store(
        self,
        var: SimVar,
        value: Any,
        cpu_index: int,
        now: int,
        thread: Any = None,
        token: Any = None,
    ) -> None:
        self.stores += 1
        if not self.weak:
            var.committed = value
            var.token = token
            return
        self._drain_visible(var, now)
        delay = self._rng.randint(1, self._delay)
        var.pending.append((now + delay, cpu_index, value, token))

    def load(self, var: SimVar, cpu_index: int, now: int) -> Any:
        return self.load_observed(var, cpu_index, now)[0]

    def load_observed(
        self, var: SimVar, cpu_index: int, now: int, thread: Any = None
    ) -> tuple[Any, Any]:
        """Like :meth:`load`, also returning the observed write token."""
        self.loads += 1
        if not self.weak:
            return var.committed, var.token
        self._drain_visible(var, now)
        # Store-to-load forwarding: this CPU sees its own latest store.
        newest_here = None
        newest_anywhere = False
        for _visible_at, writer_cpu, value, token in reversed(var.pending):
            newest_anywhere = True
            if writer_cpu == cpu_index:
                newest_here = (value, token)
                break
        if newest_here is not None:
            return newest_here
        if newest_anywhere:
            # Another CPU has a newer in-flight value we cannot see yet.
            self.stale_loads += 1
        return var.committed, var.token

    def fence_cpu(
        self,
        cpu_index: int,
        vars_touched: list[SimVar] | None = None,
        thread: Any = None,
    ) -> None:
        """Drain this CPU's store buffer: its stores become visible now.

        With no var list we cannot enumerate all SimVars, so SimVar keeps
        pending stores and the kernel passes the registry of fenced vars;
        in practice the kernel registers every SimVar it has seen.

        Only *effective* fences count in ``fences``: a fence under strong
        ordering (or with no vars to drain) is a no-op and must not make a
        strong-ordering run report nonzero fence work.  ``fence_requests``
        counts every call regardless.
        """
        self.fence_requests += 1
        if not self.weak or vars_touched is None:
            return
        self.fences += 1
        for var in vars_touched:
            last_mine = -1
            for index, (_visible_at, writer_cpu, _value, _token) in enumerate(
                var.pending
            ):
                if writer_cpu == cpu_index:
                    last_mine = index
            if last_mine >= 0:
                # Committing our newest store supersedes everything older,
                # whoever wrote it (coherence).
                var.committed = var.pending[last_mine][2]
                var.token = var.pending[last_mine][3]
                var.pending = var.pending[last_mine + 1:]

    def _drain_visible(self, var: SimVar, now: int) -> None:
        """Commit up to the latest program-order store now visible.

        Coherence: committing a store kills every earlier pending store
        to the same variable, visible or not — an old value must never
        overwrite a newer one.
        """
        if not var.pending:
            return
        last_visible = -1
        for index, (visible_at, _writer_cpu, _value, _token) in enumerate(
            var.pending
        ):
            if visible_at <= now:
                last_visible = index
        if last_visible >= 0:
            var.committed = var.pending[last_visible][2]
            var.token = var.pending[last_visible][3]
            var.pending = var.pending[last_visible + 1:]


def create_memory_model(config: KernelConfig, rng: Any) -> Any:
    """Instantiate the memory model ``config.memory_model`` selects.

    The store-buffer models live in :mod:`repro.memmodel` (a layer above
    the kernel); the import is deferred so the default ``sc`` and legacy
    ``weak`` paths never touch that package and no import cycle forms.
    """
    if config.memory_model in (MODEL_TSO, MODEL_PSO):
        from repro.memmodel.storebuffer import StoreBufferMemory

        return StoreBufferMemory(config, rng, fifo=config.memory_model == MODEL_TSO)
    return MemorySystem(config, rng)
