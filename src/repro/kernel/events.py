"""The kernel's timed-event heap.

Everything that happens "later" in the simulation — scheduler ticks, device
arrivals posted by workload generators, deferred callbacks — is an entry in
this heap.  Entries at equal times fire in insertion order (the sequence
number breaks ties), which keeps runs deterministic.

CV timeouts and Pause() deadlines deliberately do *not* get their own heap
entries: PCR's timeout granularity is the scheduler tick, so the kernel
checks timed waiters at each tick instead (see Kernel._on_tick).  That is
the mechanism behind Section 6.3's observation that the 50 ms quantum
"clocks" timeout-driven behaviour.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

#: An event action receives the kernel as its only argument.
EventAction = Callable[[Any], None]


class EventHeap:
    """A deterministic time-ordered queue of kernel callbacks."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, EventAction]] = []
        self._seq = 0
        self._cancelled: set[int] = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def push(self, when: int, action: EventAction) -> int:
        """Schedule ``action`` at absolute time ``when``; returns a token."""
        if when < 0:
            raise ValueError("event time must be >= 0")
        token = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (when, token, action))
        return token

    def cancel(self, token: int) -> None:
        """Cancel a scheduled event.  Cancelling twice is harmless."""
        self._cancelled.add(token)

    def next_time(self) -> int | None:
        """The time of the earliest pending event, or None if empty."""
        heap = self._heap
        if not self._cancelled:
            # Hot path: nothing cancelled, so the heap head is live.
            return heap[0][0] if heap else None
        self._drop_cancelled()
        if not heap:
            return None
        return heap[0][0]

    def pop_due(self, now: int) -> list[EventAction]:
        """Remove and return every action scheduled at or before ``now``.

        Returned in (time, insertion) order.
        """
        due: list[EventAction] = []
        while self._heap and self._heap[0][0] <= now:
            when, token, action = heapq.heappop(self._heap)
            if token in self._cancelled:
                self._cancelled.discard(token)
                continue
            due.append(action)
        return due

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][1] in self._cancelled:
            __, token, __action = heapq.heappop(self._heap)
            self._cancelled.discard(token)
