"""Kernel configuration.

Every policy knob the paper discusses is explicit here so experiments can
flip exactly one variable:

* ``quantum`` — the scheduler timeslice *and* timeout granularity.  Section
  6.3 is entirely about this constant (50 ms in PCR); the quantum-sweep
  case study re-runs the echo pipeline at 1 ms / 20 ms / 50 ms / 1 s.
* ``notify_semantics`` — ``"deferred"`` is the paper's fix (defer processor
  rescheduling until monitor exit); ``"immediate"`` reproduces the spurious
  lock conflicts of Section 6.1.
* ``notify_wakes`` — ``"exactly_one"`` is Mesa/PCR; ``"at_least_one"``
  emulates thread packages with weaker NOTIFY (Birrell), used by property
  tests to show WAIT-in-a-loop code is insensitive to the difference.
* ``fork_failure`` — ``"raise"`` (the old systems) vs ``"wait"`` (the newer
  ones), Section 5.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.kernel.simtime import msec, sec, usec

PRIORITY_LEVELS = 7
MIN_PRIORITY = 1
MAX_PRIORITY = 7
#: Paper: "There are 7 priorities in all, with the default being the middle
#: priority (4)."
DEFAULT_PRIORITY = 4

NOTIFY_DEFERRED = "deferred"
NOTIFY_IMMEDIATE = "immediate"

WAKES_EXACTLY_ONE = "exactly_one"
WAKES_AT_LEAST_ONE = "at_least_one"

FORK_FAILURE_RAISE = "raise"
FORK_FAILURE_WAIT = "wait"

MEMORY_STRONG = "strong"
MEMORY_WEAK = "weak"

MODEL_SC = "sc"
MODEL_TSO = "tso"
MODEL_PSO = "pso"
MODEL_WEAK = "weak"
MEMORY_MODELS = (MODEL_SC, MODEL_TSO, MODEL_PSO, MODEL_WEAK)

SCHED_STRICT = "strict"
SCHED_FAIR_SHARE = "fair_share"


@dataclass
class KernelConfig:
    """Tunable policies of the simulated PCR kernel."""

    #: Timeslice length and CV-timeout granularity (PCR: 50 ms).
    quantum: int = msec(50)
    #: Cost of switching between threads (paper: < 50 µs on a SS-2).
    switch_cost: int = usec(40)
    #: Cost charged on every monitor entry/exit (lock bookkeeping).
    monitor_overhead: int = usec(1)
    #: Number of simulated processors.
    ncpus: int = 1
    #: Seed for all kernel randomness (SystemDaemon choice, jitter).
    seed: int = 0
    #: NOTIFY rescheduling: "deferred" (the fix) or "immediate" (pre-fix).
    notify_semantics: str = NOTIFY_DEFERRED
    #: NOTIFY wake count: "exactly_one" (Mesa) or "at_least_one" (Birrell).
    notify_wakes: str = WAKES_EXACTLY_ONE
    #: Probability that an at-least-one NOTIFY wakes an extra waiter.
    at_least_one_extra_prob: float = 0.25
    #: Maximum number of live threads before FORK runs out of resources.
    max_threads: int = 10_000
    #: What FORK does when out of resources: "raise" (old) or "wait" (new).
    fork_failure: str = FORK_FAILURE_WAIT
    #: Ablation beyond the paper: donate the blocker's priority to a
    #: monitor's owner (full priority inheritance).  PCR deliberately did
    #: NOT do this for monitors — "we don't know how to implement it
    #: efficiently" — only for the per-monitor metalock; the inversion
    #: case study measures what they gave up.
    monitor_priority_inheritance: bool = False
    #: Virtual memory reserved per thread stack (paper: 100 kilobytes).
    stack_reservation: int = 100 * 1024
    #: Scheduling policy.  "strict" is PCR's model (the paper's default);
    #: "fair_share" is the Section 7 future-work exploration: threads
    #: progress at rates proportional to 2^(priority-1) via deterministic
    #: lottery, with no priority preemption — "a model intuitively better
    #: suited to controlling long-term average behavior than to
    #: controlling moment-by-moment processor allocation".
    scheduler_policy: str = SCHED_STRICT
    #: Memory model for SimVar/SimRecord: "strong" or "weak" (Section 5.5).
    #: Legacy knob; ``memory_order="weak"`` is an alias for
    #: ``memory_model="weak"``.
    memory_order: str = MEMORY_STRONG
    #: Memory-model seam (:mod:`repro.memmodel`): "sc" (default —
    #: sequential consistency, every store globally visible at once),
    #: "tso" (x86-TSO: per-thread FIFO store buffers with store-to-load
    #: forwarding; only store→load reordering is possible), "pso"
    #: (per-thread buffers that are FIFO per *variable* only, so stores
    #: to different variables drain out of program order — the §5.5
    #: machine), or "weak" (the original per-CPU randomly-delayed
    #: buffer, kept byte-identical for the legacy case studies).
    memory_model: str = MODEL_SC
    #: Store-buffer flush latency under the buffered models (tso/pso/
    #: weak): an undrained store becomes globally visible at most this
    #: many microseconds after issue.
    store_buffer_delay: int = usec(5)
    #: Run the dynamic race detector (Eraser locksets + happens-before
    #: vector clocks, :mod:`repro.analysis.races`) over every SimVar
    #: access and synchronisation trap.  Purely observational: enabling
    #: it never changes a schedule, disabling it costs nothing.
    race_detection: bool = False
    #: Seeded fault plan (:class:`repro.analysis.faults.FaultPlan`) or
    #: None.  When set, the kernel instantiates a
    #: :class:`~repro.analysis.faults.FaultInjector` drawing from a
    #: dedicated RNG stream forked off the kernel seed, so a plan with
    #: all rates at zero is byte-identical to no plan at all and enabling
    #: one fault kind never perturbs another kind's schedule.  Typed
    #: loosely to keep the kernel layer free of analysis imports.
    fault_plan: Any = None
    #: Schedule-exploration seam
    #: (:class:`repro.explore.trace.ScheduleController`) or None.  When
    #: set, every nondeterministic choice point — the pick among
    #: equal-best ready threads, fair-share lottery draws, fault-plan
    #: samples — is routed through ``controller.decide`` so it can be
    #: recorded, forced, or replayed.  None (the default) leaves every
    #: hot path byte-identical to a controller-free run; the golden
    #: schedule guard pins that.  Typed loosely for the same layering
    #: reason as ``fault_plan``.
    schedule_controller: Any = None
    #: Run the waits-for watchdog (:mod:`repro.analysis.watchdog`):
    #: partial-deadlock cycles among monitor/JOIN/untimed-CV waiters and
    #: a starvation monitor for ready-but-never-dispatched threads.
    #: Purely observational unless ``watchdog_raise`` is set.
    watchdog: bool = False
    #: Sim-time between watchdog sweeps; None means one quantum.
    watchdog_interval: int | None = None
    #: A READY thread continuously undispatched for this long is starving.
    starvation_budget: int = sec(1)
    #: Raise :class:`Deadlock` as soon as the watchdog confirms a cycle
    #: (instead of recording it and letting the run continue).
    watchdog_raise: bool = False
    #: Re-raise a thread's uncaught exception at end of run.
    propagate_thread_errors: bool = True
    #: Record a full event trace (costs memory; stats are always kept).
    trace: bool = False
    #: Categories to trace when ``trace`` is on; empty set = all.
    trace_categories: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        if self.ncpus < 1:
            raise ValueError("ncpus must be >= 1")
        if self.notify_semantics not in (NOTIFY_DEFERRED, NOTIFY_IMMEDIATE):
            raise ValueError(f"bad notify_semantics: {self.notify_semantics!r}")
        if self.notify_wakes not in (WAKES_EXACTLY_ONE, WAKES_AT_LEAST_ONE):
            raise ValueError(f"bad notify_wakes: {self.notify_wakes!r}")
        if self.fork_failure not in (FORK_FAILURE_RAISE, FORK_FAILURE_WAIT):
            raise ValueError(f"bad fork_failure: {self.fork_failure!r}")
        if self.memory_order not in (MEMORY_STRONG, MEMORY_WEAK):
            raise ValueError(f"bad memory_order: {self.memory_order!r}")
        if self.memory_model not in MEMORY_MODELS:
            raise ValueError(f"bad memory_model: {self.memory_model!r}")
        if self.memory_order == MEMORY_WEAK:
            # Legacy spelling: memory_order="weak" selects the original
            # per-CPU delayed-visibility model.
            if self.memory_model == MODEL_SC:
                self.memory_model = MODEL_WEAK
            elif self.memory_model != MODEL_WEAK:
                raise ValueError(
                    "memory_order='weak' conflicts with "
                    f"memory_model={self.memory_model!r}"
                )
        elif self.memory_model == MODEL_WEAK:
            self.memory_order = MEMORY_WEAK
        if self.scheduler_policy not in (SCHED_STRICT, SCHED_FAIR_SHARE):
            raise ValueError(f"bad scheduler_policy: {self.scheduler_policy!r}")
        if self.switch_cost < 0 or self.monitor_overhead < 0:
            raise ValueError("costs must be non-negative")
        if not 0.0 <= self.at_least_one_extra_prob <= 1.0:
            raise ValueError("at_least_one_extra_prob must be in [0, 1]")
        if self.fault_plan is not None:
            self.fault_plan.validate()
        if self.watchdog_interval is not None and self.watchdog_interval <= 0:
            raise ValueError("watchdog_interval must be positive")
        if self.starvation_budget <= 0:
            raise ValueError("starvation_budget must be positive")
