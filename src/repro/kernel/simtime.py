"""Simulated time.

All kernel time is an integer number of microseconds. Using integers keeps
the simulation exactly deterministic: there is no floating-point drift, and
two events scheduled for the same microsecond compare equal on every
platform.

The helpers below exist so that workload and test code never writes raw
magic numbers: ``msec(50)`` reads as the paper's 50 millisecond quantum,
``usec(40)`` as the sub-50-microsecond thread switch cost.
"""

from __future__ import annotations

USEC = 1
MSEC = 1000
SEC = 1_000_000

#: A sentinel meaning "no deadline" for waits without a timeout.
FOREVER: int | None = None


def usec(n: float) -> int:
    """Convert microseconds to kernel time (identity, with rounding)."""
    return round(n * USEC)


def msec(n: float) -> int:
    """Convert milliseconds to kernel time."""
    return round(n * MSEC)


def sec(n: float) -> int:
    """Convert seconds to kernel time."""
    return round(n * SEC)


def fmt_time(t: int) -> str:
    """Render a kernel timestamp for traces: ``12.345678s``."""
    return f"{t / SEC:.6f}s"


def per_second(count: int, duration: int) -> float:
    """A rate in events/second over ``duration`` microseconds of sim time."""
    if duration <= 0:
        return 0.0
    return count * SEC / duration
