"""Aggregate kernel statistics — the numbers behind Tables 1-3.

``GlobalStats`` is updated inline by the kernel (cheap counter bumps) and
read by ``repro.analysis.dynamic`` to compute the paper's rates:

* Table 1: forks/sec, thread switches/sec
* Table 2: CV waits/sec, %-of-waits-that-time-out, monitor enters/sec,
  contention fraction
* Table 3: number of distinct CVs and monitor locks used
* F1/F2: execution-interval histogram and execution-time-by-interval share
* F4: CPU time by priority level

Counters are monotonic; measurements over a window are taken by snapshot
and subtraction (see :class:`Snapshot`).  The distinct-use sets are the one
exception — Table 3 counts distinct objects *within* a benchmark, so
windows capture set sizes before and after and the analysis layer clears
them at window start.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.config import MAX_PRIORITY, MIN_PRIORITY


@dataclass(frozen=True)
class ThreadRecord:
    """Lightweight per-thread log entry (genealogy analysis, F3)."""

    tid: int
    name: str
    parent_tid: int | None
    generation: int
    priority: int
    created_at: int
    role: str | None


class GlobalStats:
    """Monotonic counters plus distinct-use sets and interval samples."""

    def __init__(self) -> None:
        self.forks = 0
        self.fork_failures = 0
        self.fork_waits = 0
        self.joins = 0
        self.switches = 0
        self.dispatches = 0
        self.preemptions = 0
        self.yields = 0
        self.directed_yields = 0
        self.ticks = 0
        self.ml_enters = 0
        self.ml_contended = 0
        self.ml_exits = 0
        self.cv_waits = 0
        self.cv_timeouts = 0
        self.cv_notifies = 0
        self.cv_broadcasts = 0
        self.cv_wakeups = 0
        self.spurious_conflicts = 0
        self.channel_posts = 0
        self.channel_receives = 0
        self.channel_timeouts = 0
        self.threads_created = 0
        self.threads_finished = 0
        self.live_threads = 0
        self.max_live_threads = 0
        #: Virtual memory currently reserved for thread stacks (Section 5.1).
        self.stack_bytes = 0
        self.max_stack_bytes = 0

        #: uids of distinct monitors entered / CVs waited on (Table 3).
        self.monitors_used: set[int] = set()
        self.cvs_used: set[int] = set()

        #: Injected-fault tally by kind (:mod:`repro.analysis.faults`):
        #: ``drop_notify``, ``spurious_wakeup``, ``fork_fail``, ``kill``,
        #: ``timer_jitter``.  Kept as a dict — not as one int attribute per
        #: kind — so a faults-off run's scalar-counter fingerprint (the
        #: golden-schedule stats hash digests every int attribute) is
        #: byte-identical to a build that predates fault injection.
        self.fault_counts: dict[str, int] = {}

        #: (duration_us, priority) per completed execution interval (F1/F2).
        self.exec_intervals: list[tuple[int, int]] = []
        #: CPU microseconds accumulated per priority level (F4).
        self.cpu_by_priority: dict[int, int] = {
            p: 0 for p in range(MIN_PRIORITY, MAX_PRIORITY + 1)
        }
        #: Log of every thread ever created (F3 genealogy).
        self.thread_log: list[ThreadRecord] = []
        #: (lifetime_us, role) of finished threads (lifetime analysis, §3).
        self.lifetimes: list[tuple[int, str | None]] = []

    # -- helpers used by the kernel ---------------------------------------

    def note_interval(self, duration: int, priority: int) -> None:
        self.exec_intervals.append((duration, priority))
        self.cpu_by_priority[priority] += duration

    def note_fault(self, kind: str) -> None:
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1

    @property
    def faults_injected(self) -> int:
        """Total injected faults of every kind (a property, so it stays
        out of ``vars(stats)`` and cannot perturb stats fingerprints)."""
        return sum(self.fault_counts.values())

    def clear_distinct(self) -> None:
        """Start a fresh Table-3 window."""
        self.monitors_used.clear()
        self.cvs_used.clear()

    def snapshot(self) -> "Snapshot":
        return Snapshot(
            forks=self.forks,
            switches=self.switches,
            dispatches=self.dispatches,
            preemptions=self.preemptions,
            yields=self.yields,
            ml_enters=self.ml_enters,
            ml_contended=self.ml_contended,
            cv_waits=self.cv_waits,
            cv_timeouts=self.cv_timeouts,
            cv_notifies=self.cv_notifies,
            cv_wakeups=self.cv_wakeups,
            spurious_conflicts=self.spurious_conflicts,
            channel_timeouts=self.channel_timeouts,
            threads_created=self.threads_created,
            threads_finished=self.threads_finished,
            exec_interval_index=len(self.exec_intervals),
            thread_log_index=len(self.thread_log),
            lifetime_index=len(self.lifetimes),
            monitors_used=len(self.monitors_used),
            cvs_used=len(self.cvs_used),
        )


@dataclass(frozen=True)
class Snapshot:
    """Counter values at an instant; subtract two to get window deltas."""

    forks: int
    switches: int
    dispatches: int
    preemptions: int
    yields: int
    ml_enters: int
    ml_contended: int
    cv_waits: int
    cv_timeouts: int
    cv_notifies: int
    cv_wakeups: int
    spurious_conflicts: int
    channel_timeouts: int
    threads_created: int
    threads_finished: int
    exec_interval_index: int
    thread_log_index: int
    lifetime_index: int
    monitors_used: int
    cvs_used: int

    def delta(self, earlier: "Snapshot") -> dict[str, int]:
        """Per-counter differences ``self - earlier``."""
        result: dict[str, int] = {}
        for name in self.__dataclass_fields__:
            result[name] = getattr(self, name) - getattr(earlier, name)
        return result


@dataclass
class WindowStats:
    """Deltas over a measurement window plus the window duration."""

    duration: int
    counts: dict[str, int] = field(default_factory=dict)

    def rate(self, counter: str) -> float:
        """Events per second of simulated time."""
        from repro.kernel.simtime import per_second

        return per_second(self.counts.get(counter, 0), self.duration)

    def fraction(self, numerator: str, denominator: str) -> float:
        denom = self.counts.get(denominator, 0)
        if denom == 0:
            return 0.0
        return self.counts.get(numerator, 0) / denom
