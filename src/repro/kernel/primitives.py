"""The trap vocabulary: how simulated thread code talks to the kernel.

Thread bodies are Python generator functions.  They request kernel services
by ``yield``-ing a trap object; the kernel performs the operation (possibly
blocking the thread, possibly advancing simulated time) and resumes the
generator with the operation's result.  Sub-procedures compose with
``yield from``.

Example thread body::

    def worker(buffer):
        yield Compute(usec(200))            # burn 200 us of CPU
        item = yield from buffer.get()      # sync objects wrap traps
        child = yield Fork(helper, args=(item,))
        result = yield Join(child)
        return result

The vocabulary mirrors the Mesa/PCR primitives in Section 2 of the paper
(FORK, JOIN, WAIT, NOTIFY, BROADCAST, YIELD) plus the extensions Sections
5-6 discuss (YieldButNotToMe, directed yield, priority changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.kernel.channel import Channel
    from repro.kernel.thread import SimThread
    from repro.sync.condition import ConditionVariable
    from repro.sync.monitor import Monitor

#: The type of a thread body: a generator function over traps.
ThreadProc = Callable[..., Any]


class Trap:
    """Base class for everything a thread may yield to the kernel."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Trap):
    """Consume ``amount`` microseconds of CPU time.  Preemptible.

    A higher-priority wakeup or the end of the timeslice can suspend the
    computation partway; the kernel tracks the remainder and the thread
    resumes computing when rescheduled, exactly like real CPU burn.
    """

    amount: int

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValueError("Compute amount must be >= 0")


@dataclass(frozen=True)
class Fork(Trap):
    """Create a new thread running ``proc(*args, **kwargs)``.

    Returns the new :class:`SimThread`.  The child inherits the forker's
    priority unless ``priority`` is given.  Under the ``raise`` fork-failure
    policy this raises :class:`ForkFailed` inside the forking thread when
    thread resources are exhausted; under ``wait`` the forker blocks until
    a thread slot frees up (Section 5.4).
    """

    proc: ThreadProc
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    name: str | None = None
    priority: int | None = None
    detached: bool = False


@dataclass(frozen=True)
class Join(Trap):
    """Wait for ``thread`` to finish; returns its result value.

    A thread may be JOINed at most once, and never after DETACH.  If the
    target died from an exception, JOIN re-raises it (wrapped in
    :class:`UncaughtThreadError`) in the joiner.
    """

    thread: "SimThread"


@dataclass(frozen=True)
class Detach(Trap):
    """Declare that ``thread`` will never be JOINed.

    Lets the kernel recover the thread's resources (its stack reservation
    and table slot) immediately when it terminates.
    """

    thread: "SimThread"


@dataclass(frozen=True)
class Yield(Trap):
    """Run the scheduler: requeue the caller behind equal-priority peers."""


@dataclass(frozen=True)
class YieldButNotToMe(Trap):
    """Give the CPU to the highest-priority ready thread *other than* the
    caller, if one exists — even a lower-priority one (Section 5.2).

    The donation lasts until the end of the current timeslice (Section 6.3:
    "The end of a timeslice ends the effect of a YieldButNotToMe").
    """


@dataclass(frozen=True)
class DirectedYield(Trap):
    """Donate the rest of the caller's timeslice to a specific thread.

    Used by the SystemDaemon (Section 6.2) to give every ready thread some
    CPU regardless of priority.  No-op if the target is not ready.
    """

    target: "SimThread"


@dataclass(frozen=True)
class Pause(Trap):
    """Sleep for ``duration`` microseconds.

    Wakeups have timeslice granularity: the sleeper becomes ready at the
    first scheduler tick at or after its deadline, which is why "the
    smallest sleep interval is the remainder of the scheduler quantum"
    (Section 6.3).
    """

    duration: int

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("Pause duration must be >= 0")


@dataclass(frozen=True)
class GetSelf(Trap):
    """Return the calling :class:`SimThread`."""


@dataclass(frozen=True)
class GetTime(Trap):
    """Return the current simulated time in microseconds."""


@dataclass(frozen=True)
class SetPriority(Trap):
    """Change the caller's priority (a thread "can change its own
    priority", Section 2).  Returns the previous priority."""

    priority: int


@dataclass(frozen=True)
class Enter(Trap):
    """Acquire a monitor's mutex; blocks (FIFO) if another thread holds it.

    Normally used through :func:`repro.sync.monitor.entered` or the
    ``@monitored`` decorator rather than yielded directly.
    """

    monitor: "Monitor"


@dataclass(frozen=True)
class Exit(Trap):
    """Release a monitor's mutex; hands it to the first queued waiter."""

    monitor: "Monitor"


@dataclass(frozen=True)
class Wait(Trap):
    """Mesa WAIT: atomically release the CV's monitor and sleep on the CV.

    On wake (NOTIFY, BROADCAST, or timeout) the thread re-competes for the
    monitor before WAIT returns.  Returns ``True`` if woken by a
    notification, ``False`` on timeout — but per Mesa semantics the caller
    must recheck its predicate either way (WAIT belongs in a WHILE loop).

    ``timeout`` overrides the CV's default timeout for this wait only;
    ``None`` means "use the CV default".
    """

    condition: "ConditionVariable"
    timeout: int | None = None


@dataclass(frozen=True)
class Notify(Trap):
    """Wake one thread waiting on the CV (exactly-one-waiter in Mesa mode).

    Must be invoked with the CV's monitor held — the Mesa compiler enforced
    this statically; we enforce it dynamically.
    """

    condition: "ConditionVariable"


@dataclass(frozen=True)
class Broadcast(Trap):
    """Wake every thread waiting on the CV."""

    condition: "ConditionVariable"


@dataclass(frozen=True)
class Channelreceive(Trap):
    """Receive from a device channel (external-event boundary).

    Blocks until an item is available or ``timeout`` elapses; returns the
    item, or ``None`` on timeout.  Channels model device input (keyboard,
    mouse, network, X-server socket) whose producers live outside the
    simulated thread world.
    """

    channel: "Channel"
    timeout: int | None = None


@dataclass(frozen=True)
class Annotate(Trap):
    """Emit a user-level trace annotation (shows up in the event trace)."""

    label: str
    data: Any = None


@dataclass(frozen=True)
class MemWrite(Trap):
    """Store to a shared :class:`SimVar` under the configured memory order.

    Under weak ordering the store lands in this CPU's store buffer and
    becomes visible to other CPUs only after the buffer delay or a fence
    (Section 5.5).
    """

    var: Any
    value: Any


@dataclass(frozen=True)
class MemRead(Trap):
    """Load from a shared :class:`SimVar`; may observe stale data under
    weak ordering."""

    var: Any


@dataclass(frozen=True)
class Fence(Trap):
    """Memory barrier: drain this CPU's store buffer.

    Monitor entry/exit fence implicitly; explicit fences are for the
    lock-free publication idioms the weak-memory case study examines.
    """
