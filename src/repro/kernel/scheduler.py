"""The PCR scheduler model.

Policy, per Section 2 of the paper:

* "The scheduler runs the highest priority runnable thread and if there are
  several runnable threads at the highest priority then round-robin is used
  among them."
* "If a system event causes a higher priority thread to become runnable,
  the scheduler will preempt the currently running thread, even if it holds
  monitor locks."
* 7 priority levels; timeslice 50 ms (the quantum lives in KernelConfig).

Plus the two deliberate violations of strict priority that Sections 5.2 and
6.2 describe, both modelled as *donations*:

* ``YieldButNotToMe`` donates the caller's CPU to the highest-priority
  *other* ready thread until the end of the timeslice;
* the SystemDaemon's directed yield donates a slice to a specific (possibly
  low-priority) thread.

A donation is per-CPU state: while active, that CPU dispatches the donee in
preference to strict priority order.  Ticks clear donations ("The end of a
timeslice ends the effect of a YieldButNotToMe or a directed yield",
Section 6.3), as does the donee blocking.
"""

from __future__ import annotations

from collections import deque

from repro.kernel.config import MAX_PRIORITY, MIN_PRIORITY
from repro.kernel.thread import SimThread, ThreadState


def _default_zero(_seq: int) -> int:
    """Default for pick-style decision sites: the round-robin head."""
    return 0


class Cpu:
    """One simulated processor."""

    __slots__ = (
        "index",
        "current",
        "busy_until",
        "burst_start",
        "last_thread",
        "donee",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        #: Thread currently running here, or None when idle.
        self.current: SimThread | None = None
        #: Absolute sim time at which the current compute burst finishes
        #: (only meaningful while ``current`` has pending_compute).
        self.busy_until: int | None = None
        #: When the current burst began (partial-burst accounting).
        self.burst_start: int | None = None
        #: Thread that last ran here (switch-cost accounting).
        self.last_thread: SimThread | None = None
        #: Active donation target for this CPU, or None.
        self.donee: SimThread | None = None

    def __repr__(self) -> str:
        running = self.current.name if self.current else "idle"
        return f"<Cpu {self.index} {running}>"


class Scheduler:
    """Ready queues and dispatch policy.

    ``policy`` selects between PCR's strict priorities and the Section 7
    fair-share exploration (deterministic lottery, tickets doubling per
    level, no priority preemption).  ``rng`` is only consulted under
    fair share, so strict-policy runs stay byte-identical to before the
    policy knob existed.
    """

    def __init__(self, ncpus: int, *, policy: str = "strict", rng=None) -> None:
        self._queues: dict[int, deque[SimThread]] = {
            prio: deque() for prio in range(MIN_PRIORITY, MAX_PRIORITY + 1)
        }
        #: Bit ``p`` set iff the priority-``p`` ready queue is nonempty.
        self._nonempty_mask = 0
        #: Incremental total of ready threads across all queues.
        self._ready_count = 0
        #: Highest nonempty priority, or 0 when nothing is ready.  Cached
        #: so the per-trap preemption check is a single integer compare.
        self.best_ready = 0
        self.cpus = [Cpu(i) for i in range(ncpus)]
        self.policy = policy
        self.rng = rng
        #: Schedule-exploration seam (set by the kernel when
        #: ``config.schedule_controller`` is given).  When present, the
        #: pick among equal-best ready threads, the lottery draw, and
        #: donation-target ties become recorded/forcible decisions.
        #: None keeps every dispatch path byte-identical to before.
        self.controller = None

    # -- ready-queue bookkeeping -------------------------------------------
    #
    # Every queue mutation goes through these two helpers (or repeats
    # their bodies inline) so the mask / count / best_ready cache always
    # agrees with the queues.  The O(1) queries below depend on it.

    def _note_added(self, queue: deque, priority: int) -> None:
        self._ready_count += 1
        if len(queue) == 1:
            self._nonempty_mask |= 1 << priority
            if priority > self.best_ready:
                self.best_ready = priority

    def _note_removed(self, queue: deque, priority: int) -> None:
        self._ready_count -= 1
        if not queue:
            mask = self._nonempty_mask & ~(1 << priority)
            self._nonempty_mask = mask
            if priority == self.best_ready:
                # bit_length()-1 is the highest set bit == best priority.
                self.best_ready = mask.bit_length() - 1 if mask else 0

    # -- ready-queue management ------------------------------------------

    def make_ready(self, thread: SimThread, *, front: bool = False) -> None:
        """Put a thread on its priority's ready queue.

        ``front=True`` is used for preempted threads, which did not finish
        their slice and so keep their place in the round-robin order.
        """
        if thread.state is ThreadState.READY:
            raise AssertionError(f"{thread!r} already ready")
        thread.state = ThreadState.READY
        thread.blocked_on = None
        queue = self._queues[thread.priority]
        if front:
            queue.appendleft(thread)
        else:
            queue.append(thread)
        self._note_added(queue, thread.priority)

    def unready(self, thread: SimThread) -> None:
        """Remove a thread from the ready queues (e.g. external kill)."""
        queue = self._queues[thread.priority]
        try:
            queue.remove(thread)
        except ValueError:
            raise AssertionError(f"{thread!r} not on ready queue") from None
        self._note_removed(queue, thread.priority)

    def requeue_for_priority_change(
        self, thread: SimThread, new_priority: int
    ) -> None:
        """Move a READY thread between queues when its priority changes.

        A same-priority "change" is a no-op: removing and re-appending
        would silently send the thread to the back of its round-robin
        queue, reordering it behind peers it was ahead of.
        """
        if new_priority == thread.priority:
            return
        self.unready(thread)
        thread.priority = new_priority
        queue = self._queues[new_priority]
        queue.append(thread)  # state stays READY
        self._note_added(queue, new_priority)

    # -- queries -----------------------------------------------------------

    def highest_ready_priority(self) -> int | None:
        """Priority of the best ready thread, or None if none ready."""
        return self.best_ready or None

    def ready_count(self) -> int:
        return self._ready_count

    def ready_threads(self) -> list[SimThread]:
        """All ready threads, best priority first (round-robin order
        within a level).  Used by the SystemDaemon's random choice."""
        threads: list[SimThread] = []
        mask = self._nonempty_mask
        while mask:
            prio = mask.bit_length() - 1
            threads.extend(self._queues[prio])
            mask ^= 1 << prio
        return threads

    def would_preempt(self, running_priority: int) -> bool:
        """True if a ready thread should preempt a runner at this priority.

        Strict priority: only a *strictly* higher priority preempts.
        Fair share never preempts on priority — CPU shares are settled at
        quantum boundaries, which is exactly why the paper judges it
        ill-suited to "moment-by-moment" near-real-time response.
        """
        if self.policy == "fair_share":
            return False
        return self.best_ready > running_priority

    # -- dispatch ----------------------------------------------------------

    def take_next(self, cpu: Cpu) -> SimThread | None:
        """Choose and remove the thread this CPU should run next.

        Honours an active donation first, then strict priority order.
        """
        if cpu.donee is not None:
            donee = cpu.donee
            if donee.state is ThreadState.READY:
                queue = self._queues[donee.priority]
                queue.remove(donee)
                self._note_removed(queue, donee.priority)
                return donee
            # Donee ran and blocked, or was never ready: donation is spent.
            cpu.donee = None
        if self.policy == "fair_share":
            return self._take_by_lottery()
        best = self.best_ready
        if not best:
            return None
        queue = self._queues[best]
        controller = self.controller
        if controller is not None and len(queue) > 1:
            # The paper's round-robin is one of many priority-respecting
            # orders; exploration enumerates the rest.  Choice 0 is the
            # queue head, so the default is exactly popleft().
            index = controller.decide(
                "sched.pick",
                len(queue),
                _default_zero,
                labels=tuple(t.name for t in queue),
            )
            thread = queue[index]
            del queue[index]
        else:
            thread = queue.popleft()
        self._note_removed(queue, best)
        return thread

    def _take_by_lottery(self) -> SimThread | None:
        """Fair share: pick a ready thread with probability proportional
        to 2^(priority-1) tickets (deterministic seeded lottery)."""
        winner = self._lottery_pick(self.ready_threads())
        if winner is not None:
            queue = self._queues[winner.priority]
            queue.remove(winner)
            self._note_removed(queue, winner.priority)
        return winner

    def _lottery_pick(self, ready: list[SimThread]) -> SimThread | None:
        """The fair-share ticket draw over ``ready`` (no queue mutation)."""
        if not ready:
            return None
        controller = self.controller
        if controller is not None and len(ready) > 1 and self.rng is not None:
            index = controller.decide(
                "sched.lottery",
                len(ready),
                lambda _seq: self._lottery_draw(ready),
                labels=tuple(t.name for t in ready),
            )
            return ready[index]
        if len(ready) == 1:
            return ready[0]
        if self.rng is None:
            # No RNG: fall back to the modal outcome of the documented
            # ticket distribution — the first thread holding the most
            # tickets.  The positional head is NOT that for unsorted
            # input (peek_best_other hands us filtered lists).
            return max(ready, key=lambda t: t.priority)
        return ready[self._lottery_draw(ready)]

    def _lottery_draw(self, ready: list[SimThread]) -> int:
        """One seeded ticket draw; returns the winner's index."""
        tickets = [1 << (t.priority - 1) for t in ready]
        draw = self.rng.randint(1, sum(tickets))
        cumulative = 0
        winner = len(ready) - 1
        for index, ticket_count in enumerate(tickets):
            cumulative += ticket_count
            if draw <= cumulative:
                winner = index
                break
        return winner

    def peek_best_other(self, exclude: SimThread) -> SimThread | None:
        """The ready thread a YieldButNotToMe donation should go to.

        Routed through the active policy: strict priority picks the
        highest-priority *other* ready thread; fair share runs the same
        ticket lottery dispatch would use, restricted to the other ready
        threads — a strict-priority scan here would contradict the
        lottery the donee is otherwise chosen by.
        """
        if self.policy == "fair_share":
            others = [t for t in self.ready_threads() if t is not exclude]
            return self._lottery_pick(others)
        mask = self._nonempty_mask
        controller = self.controller
        while mask:
            prio = mask.bit_length() - 1
            if controller is not None:
                candidates = [
                    t for t in self._queues[prio] if t is not exclude
                ]
                if candidates:
                    if len(candidates) == 1:
                        return candidates[0]
                    index = controller.decide(
                        "sched.donee",
                        len(candidates),
                        _default_zero,
                        labels=tuple(t.name for t in candidates),
                    )
                    return candidates[index]
            else:
                for thread in self._queues[prio]:
                    if thread is not exclude:
                        return thread
            mask ^= 1 << prio
        return None

    def clear_donations(self) -> None:
        """Tick boundary: every donation expires."""
        for cpu in self.cpus:
            cpu.donee = None
