"""Kernel exception hierarchy.

Two families:

* errors raised *into* simulated threads (they subclass ``SimThreadError``
  and can be caught by thread code — e.g. a failed FORK under the "raise"
  policy, mirroring Section 5.4 of the paper);
* errors that indicate a bug in the caller's use of the kernel API
  (``KernelUsageError``) — e.g. waiting on a condition variable without
  holding its monitor, which the Mesa compiler statically prevented and we
  check dynamically.
"""

from __future__ import annotations


class KernelError(Exception):
    """Base class for everything raised by the simulated kernel."""


class KernelUsageError(KernelError):
    """The host program misused the kernel API (a bug in the caller)."""


class MonitorProtocolError(KernelUsageError):
    """A monitor/CV invariant was violated.

    Examples: exiting a monitor the thread does not hold, WAITing on a CV
    whose monitor is not held, re-entering a non-reentrant monitor.
    """


class JoinProtocolError(KernelUsageError):
    """JOIN misuse: joining twice, joining a detached thread, self-join."""


class SimThreadError(KernelError):
    """Base class for errors raised inside simulated threads."""


class ForkFailed(SimThreadError):
    """FORK failed for lack of resources (Section 5.4, "raise" policy)."""


class Deadlock(KernelError):
    """The simulation cannot make progress.

    Raised by ``Kernel.run`` when threads exist but none are runnable and no
    timed event will ever wake one.  The message carries a per-thread
    diagnosis of what each thread is blocked on.
    """


class UncaughtThreadError(KernelError):
    """A simulated thread died from an exception and was not rejuvenated.

    Stored on the thread; re-raised at JOIN, or at end-of-run if the kernel
    is configured with ``propagate_thread_errors=True``.
    """

    def __init__(self, thread_name: str, original: BaseException) -> None:
        super().__init__(f"thread {thread_name!r} died: {original!r}")
        self.thread_name = thread_name
        self.original = original
