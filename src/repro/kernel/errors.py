"""Kernel exception hierarchy.

Two families:

* errors raised *into* simulated threads (they subclass ``SimThreadError``
  and can be caught by thread code — e.g. a failed FORK under the "raise"
  policy, mirroring Section 5.4 of the paper);
* errors that indicate a bug in the caller's use of the kernel API
  (``KernelUsageError``) — e.g. waiting on a condition variable without
  holding its monitor, which the Mesa compiler statically prevented and we
  check dynamically.
"""

from __future__ import annotations


class KernelError(Exception):
    """Base class for everything raised by the simulated kernel."""


class KernelUsageError(KernelError):
    """The host program misused the kernel API (a bug in the caller)."""


class MonitorProtocolError(KernelUsageError):
    """A monitor/CV invariant was violated.

    Examples: exiting a monitor the thread does not hold, WAITing on a CV
    whose monitor is not held, re-entering a non-reentrant monitor.
    """


class JoinProtocolError(KernelUsageError):
    """JOIN misuse: joining twice, joining a detached thread, self-join."""


class SimThreadError(KernelError):
    """Base class for errors raised inside simulated threads."""


class ForkFailed(SimThreadError):
    """FORK failed for lack of resources (Section 5.4, "raise" policy)."""


class ThreadKilled(SimThreadError):
    """An injected fault killed the thread at a trap boundary.

    Raised *into* the thread body by the fault injector
    (:mod:`repro.analysis.faults`), so ``finally`` clauses run and monitors
    are released exactly as for any other unwinding exception.  Kills are
    faults, not workload bugs: an unjoined victim does not land in
    ``pending_thread_errors``, but a JOINer still sees the death.
    """


class Deadlock(KernelError):
    """The simulation cannot make progress.

    Raised by ``Kernel.run`` when threads exist but none are runnable and no
    timed event will ever wake one, and by the waits-for watchdog
    (:mod:`repro.analysis.watchdog`, when ``watchdog_raise`` is set) on a
    *partial* deadlock among a subset of live threads.  The message carries
    a per-thread diagnosis; ``rows`` carries the same diagnosis as
    structured ``(thread, state, waits_on, held_by)`` tuples so callers
    (the CLI's ``--no-raise-on-deadlock`` path) can render a table.
    """

    def __init__(self, message: str, rows: "list[tuple] | None" = None) -> None:
        super().__init__(message)
        self.rows = rows or []


class UncaughtThreadError(KernelError):
    """A simulated thread died from an exception and was not rejuvenated.

    Stored on the thread; re-raised at JOIN, or at end-of-run if the kernel
    is configured with ``propagate_thread_errors=True``.
    """

    def __init__(self, thread_name: str, original: BaseException) -> None:
        super().__init__(f"thread {thread_name!r} died: {original!r}")
        self.thread_name = thread_name
        self.original = original
