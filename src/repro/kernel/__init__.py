"""The simulated PCR: a deterministic discrete-event thread kernel.

Public surface::

    from repro.kernel import Kernel, KernelConfig
    from repro.kernel import primitives as p
    from repro.kernel.simtime import usec, msec, sec

    def main():
        yield p.Compute(usec(100))
        return 42

    kernel = Kernel(KernelConfig(seed=1))
    thread = kernel.fork_root(main)
    kernel.run_for(sec(1))
    assert thread.result == 42
"""

from repro.kernel.channel import Channel
from repro.kernel.config import (
    DEFAULT_PRIORITY,
    MAX_PRIORITY,
    MIN_PRIORITY,
    KernelConfig,
)
from repro.kernel.errors import (
    Deadlock,
    ForkFailed,
    JoinProtocolError,
    KernelError,
    KernelUsageError,
    MonitorProtocolError,
    SimThreadError,
    ThreadKilled,
    UncaughtThreadError,
)
from repro.kernel.kernel import Kernel
from repro.kernel.memory import SimVar
from repro.kernel.simtime import msec, sec, usec
from repro.kernel.thread import SimThread, ThreadState

__all__ = [
    "Channel",
    "DEFAULT_PRIORITY",
    "Deadlock",
    "ForkFailed",
    "JoinProtocolError",
    "Kernel",
    "KernelConfig",
    "KernelError",
    "KernelUsageError",
    "MAX_PRIORITY",
    "MIN_PRIORITY",
    "MonitorProtocolError",
    "SimThread",
    "SimThreadError",
    "SimVar",
    "ThreadKilled",
    "ThreadState",
    "UncaughtThreadError",
    "msec",
    "sec",
    "usec",
]
