"""Deterministic randomness for the kernel.

All nondeterminism in the simulation flows through one seeded generator so
that a run is a pure function of (program, config).  The property tests rely
on this: same seed in, identical trace out.

``DeterministicRng`` wraps :class:`random.Random` rather than exposing it
directly so the kernel code can only use the operations we have audited for
cross-version stability (``random.Random``'s core methods are stable across
CPython versions for a fixed seed).
"""

from __future__ import annotations

import random
import zlib
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random source with a deliberately small surface."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def uniform(self) -> float:
        """A float in [0, 1)."""
        return self._random.random()

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def randint(self, low: int, high: int) -> int:
        """An integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        """A uniformly chosen element of a non-empty sequence."""
        if not items:
            raise ValueError("choice from empty sequence")
        return items[self._random.randrange(len(items))]

    def expovariate(self, rate_per_usec: float) -> int:
        """An exponentially distributed interval, in microseconds (>= 1)."""
        if rate_per_usec <= 0.0:
            raise ValueError("rate must be positive")
        return max(1, round(self._random.expovariate(rate_per_usec)))

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent stream, stable under unrelated draws.

        Workload generators each take a forked stream so adding a draw in
        one component does not perturb every other component's sequence.
        The derivation uses CRC32, not ``hash()``, because string hashing is
        salted per-process and would break run-to-run determinism.
        """
        derived = zlib.crc32(f"{self._seed}:{label}".encode()) & 0x7FFFFFFF
        return DeterministicRng(derived)
