"""The GVX census corpus: 234 fragments, Table 4's right column.

The large "unknown" share is faithful to the paper: "The large number of
unknown uses in GVX is due to our relative unfamiliarity with this code,
rather than reflecting any significant difference in paradigm use."
"""

from __future__ import annotations

from repro.corpus.generator import CorpusGenerator
from repro.corpus.model import PAPER_TABLE4, CodeFragment


def gvx_corpus(seed: int = 0) -> list[CodeFragment]:
    """Generate the GVX corpus with Table 4's ground-truth distribution."""
    generator = CorpusGenerator("GVX", seed)
    return generator.generate(PAPER_TABLE4["GVX"])
