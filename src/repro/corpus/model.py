"""The corpus data model: code fragments and the paradigm taxonomy.

The ten categories are Section 4's final list, plus "unknown" for
fragments that "seem not to fit easily into any category".
"""

from __future__ import annotations

from dataclasses import dataclass, field

DEFER = "defer-work"
PUMP = "pump"
SLACK = "slack-process"
SLEEPER = "sleeper"
ONESHOT = "oneshot"
DEADLOCK_AVOID = "deadlock-avoider"
REJUVENATE = "task-rejuvenation"
SERIALIZER = "serializer"
ENCAPSULATED = "encapsulated-fork"
EXPLOITER = "concurrency-exploiter"
UNKNOWN = "unknown"

#: Census order follows Table 4.
PARADIGMS = [
    DEFER,
    PUMP,
    SLACK,
    SLEEPER,
    ONESHOT,
    DEADLOCK_AVOID,
    REJUVENATE,
    SERIALIZER,
    ENCAPSULATED,
    EXPLOITER,
    UNKNOWN,
]


@dataclass(frozen=True)
class CodeFragment:
    """One thread-creating code fragment, as the census would read it.

    ``text`` is the Mesa-flavoured source snippet (what grep + reading
    sees); ``module`` and ``procedure`` locate it; ``label`` is the
    ground-truth paradigm the generator built it from, which the
    classifier does NOT see.
    """

    fragment_id: int
    system: str
    module: str
    procedure: str
    text: str
    label: str

    def lines(self) -> list[str]:
        return self.text.splitlines()


@dataclass
class CensusCount:
    """Paradigm counts for one system (a Table 4 column)."""

    system: str
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, paradigm: str) -> float:
        if self.total == 0:
            return 0.0
        return self.counts.get(paradigm, 0) / self.total


#: Table 4 as published ("Static Counts of Different Ways Threads Used").
PAPER_TABLE4: dict[str, dict[str, int]] = {
    "Cedar": {
        DEFER: 108,
        PUMP: 48,
        SLACK: 7,
        SLEEPER: 67,
        ONESHOT: 25,
        DEADLOCK_AVOID: 35,
        REJUVENATE: 11,
        SERIALIZER: 5,
        ENCAPSULATED: 14,
        EXPLOITER: 3,
        UNKNOWN: 25,
    },
    "GVX": {
        DEFER: 77,
        PUMP: 33,
        SLACK: 2,
        SLEEPER: 15,
        ONESHOT: 11,
        DEADLOCK_AVOID: 6,
        REJUVENATE: 0,
        SERIALIZER: 7,
        ENCAPSULATED: 5,
        EXPLOITER: 0,
        UNKNOWN: 78,
    },
}

#: Table 4 totals: 348 Cedar fragments, 234 GVX fragments.
PAPER_TOTALS = {
    system: sum(counts.values()) for system, counts in PAPER_TABLE4.items()
}
