"""The Cedar census corpus: 348 fragments, Table 4's left column."""

from __future__ import annotations

from repro.corpus.generator import CorpusGenerator
from repro.corpus.model import PAPER_TABLE4, CodeFragment


def cedar_corpus(seed: int = 0) -> list[CodeFragment]:
    """Generate the Cedar corpus with Table 4's ground-truth distribution."""
    generator = CorpusGenerator("Cedar", seed)
    return generator.generate(PAPER_TABLE4["Cedar"])
