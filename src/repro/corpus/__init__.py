"""The static-census corpus (Table 4).

The paper's authors "used grep to locate all uses of thread primitives
and then read the surrounding code", examining "about 650 different code
fragments that create threads" across Cedar and GVX.  We reproduce the
census methodology on a synthetic corpus: :mod:`generator` produces
Mesa-flavoured code fragments from per-paradigm templates (with
ground-truth labels), :mod:`repro.analysis.classifier` plays the role of
the reading researcher, and the Table 4 bench compares the recovered
distribution against both the ground truth and the published counts.
"""

from repro.corpus.cedar import cedar_corpus
from repro.corpus.generator import CorpusGenerator
from repro.corpus.gvx import gvx_corpus
from repro.corpus.model import PARADIGMS, CodeFragment

__all__ = [
    "CodeFragment",
    "CorpusGenerator",
    "PARADIGMS",
    "cedar_corpus",
    "gvx_corpus",
]
