"""Corpus generator: Mesa-flavoured code fragments per paradigm.

Each paradigm has a small family of templates drawn from the idioms the
paper describes (print-a-document deferrers, bounded-buffer pumps,
guarded-button one-shots, window-repaint deadlock avoiders, ...).  The
generator varies identifiers, comments and incidental structure so the
classifier cannot succeed by exact string matching — it has to use the
same kinds of cues a reading researcher would (FORK placement, loops
around WAITs, sleep-then-act shapes, queue-service loops).

Fragments labelled ``unknown`` are deliberately idiosyncratic: thread
creation whose purpose is not evident from the fragment, matching the
paper's "Unknown or other" row (which is large for GVX "due to our
relative unfamiliarity with this code").
"""

from __future__ import annotations

from typing import Callable

from repro.corpus import model
from repro.corpus.model import CodeFragment
from repro.kernel.rng import DeterministicRng

_SUBSYSTEMS = [
    "Viewer", "TipTable", "Typescript", "FileSys", "Carton", "Imager",
    "Walnut", "Grapevine", "PressPrinter", "TSetter", "Cypress", "Saffron",
    "GargoyleKernel", "WindowMgr", "DocFmt", "NetStream", "CacheMgr",
]

_VERBS = ["Update", "Repaint", "Flush", "Notify", "Collect", "Index",
          "Render", "Spool", "Poll", "Audit", "Expand", "Reconcile"]

_NOUNS = ["Doc", "Page", "Window", "Cache", "Queue", "Glyph", "Stream",
          "Folder", "Msg", "Font", "Region", "Session"]


class CorpusGenerator:
    """Builds a labelled corpus for one system."""

    def __init__(self, system: str, seed: int) -> None:
        self.system = system
        self.rng = DeterministicRng(seed).fork(f"corpus-{system}")
        self._fragment_id = 0
        self._templates: dict[str, list[Callable[[str, str], str]]] = {
            model.DEFER: [self._t_defer_return, self._t_defer_window,
                          self._t_defer_critical, self._t_defer_mail],
            model.PUMP: [self._t_pump_buffer, self._t_pump_device,
                         self._t_pump_preprocess],
            model.SLACK: [self._t_slack, self._t_slack_replace],
            model.SLEEPER: [self._t_sleeper_timeout, self._t_sleeper_callback,
                            self._t_sleeper_watchdog],
            model.ONESHOT: [self._t_oneshot_delay, self._t_oneshot_guard],
            model.DEADLOCK_AVOID: [self._t_deadlock_locks,
                                   self._t_deadlock_callback],
            model.REJUVENATE: [self._t_rejuvenate, self._t_rejuvenate_stack],
            model.SERIALIZER: [self._t_serializer, self._t_serializer_events],
            model.ENCAPSULATED: [self._t_encapsulated],
            model.EXPLOITER: [self._t_exploiter],
            model.UNKNOWN: [self._t_unknown_a, self._t_unknown_b,
                            self._t_unknown_c],
        }

    def generate(self, distribution: dict[str, int]) -> list[CodeFragment]:
        """One fragment per unit of the distribution, shuffled module
        names, deterministic for a given seed."""
        fragments = []
        for paradigm, count in distribution.items():
            for _ in range(count):
                fragments.append(self._make(paradigm))
        return fragments

    # -- internals -----------------------------------------------------

    def _make(self, paradigm: str) -> CodeFragment:
        self._fragment_id += 1
        module = (
            f"{self.rng.choice(_SUBSYSTEMS)}Impl"
        )
        verb = self.rng.choice(_VERBS)
        noun = self.rng.choice(_NOUNS)
        procedure = f"{verb}{noun}"
        template = self.rng.choice(self._templates[paradigm])
        text = template(verb, noun)
        return CodeFragment(
            fragment_id=self._fragment_id,
            system=self.system,
            module=module,
            procedure=procedure,
            text=text,
            label=paradigm,
        )

    def _maybe_comment(self, comment: str) -> str:
        return f"-- {comment}\n" if self.rng.chance(0.6) else ""

    # -- defer work ------------------------------------------------------

    def _t_defer_return(self, verb: str, noun: str) -> str:
        return (
            self._maybe_comment(f"{verb.lower()} can happen after we return")
            + f"Do{verb}: PUBLIC PROC [{noun.lower()}: {noun}] = {{\n"
            f"  Process.Detach[FORK {verb}{noun}Internal[{noun.lower()}]];\n"
            f"  RETURN;  -- latency: caller does not wait\n"
            f"}};"
        )

    def _t_defer_window(self, verb: str, noun: str) -> str:
        return (
            f"{verb}Cmd: Commander.CommandProc = {{\n"
            f"  -- results will be reported in a separate window\n"
            f"  Process.Detach[FORK {verb}AndReport[cmd]];\n"
            f"}};"
        )

    def _t_defer_critical(self, verb: str, noun: str) -> str:
        return (
            f"-- critical thread: note the work, fork the rest\n"
            f"WHILE TRUE DO\n"
            f"  event ← InputFocus.Next[];\n"
            f"  Process.Detach[FORK Handle{noun}[event]];  -- keep watching\n"
            f"ENDLOOP;"
        )

    # -- pumps ------------------------------------------------------------

    def _t_pump_buffer(self, verb: str, noun: str) -> str:
        return (
            self._maybe_comment("pipeline stage")
            + f"{verb}Pump: PROC = {{\n"
            f"  WHILE TRUE DO\n"
            f"    item ← BoundedBuffer.Get[in{noun}Q];\n"
            f"    item ← Transform{noun}[item];\n"
            f"    BoundedBuffer.Put[out{noun}Q, item];\n"
            f"  ENDLOOP;\n"
            f"}};  -- started with FORK {verb}Pump[]"
        )

    def _t_pump_device(self, verb: str, noun: str) -> str:
        return (
            f"Read{noun}Loop: PROC = {{\n"
            f"  WHILE TRUE DO\n"
            f"    bytes ← UnixIO.Read[fd];  -- external device is the source\n"
            f"    Enqueue[cooked{noun}Q, Preprocess[bytes]];\n"
            f"  ENDLOOP;\n"
            f"}};  -- FORK Read{noun}Loop[] at init"
        )

    # -- slack processes ---------------------------------------------------

    def _t_slack(self, verb: str, noun: str) -> str:
        return (
            f"-- adds latency to merge {noun.lower()} requests: downstream\n"
            f"-- transaction cost is high\n"
            f"Buffer{noun}Thread: PROC = {{\n"
            f"  WHILE TRUE DO\n"
            f"    first ← Dequeue[{noun.lower()}Q];\n"
            f"    Process.YieldButNotToMe[];  -- let producers add more\n"
            f"    batch ← MergeOverlapping[first, DrainQueue[{noun.lower()}Q]];\n"
            f"    SendBatch[server, batch];\n"
            f"  ENDLOOP;\n"
            f"}};"
        )

    # -- sleepers ------------------------------------------------------------

    def _t_sleeper_timeout(self, verb: str, noun: str) -> str:
        interval = self.rng.choice(["50", "1000", "tickMsec", "checkInterval"])
        return (
            f"{verb}Daemon: PROC = {{\n"
            f"  WHILE TRUE DO\n"
            f"    WAIT {noun.lower()}CV;  -- timeout {interval} ms\n"
            f"    Age{noun}Cache[];  -- run briefly, sleep again\n"
            f"  ENDLOOP;\n"
            f"}};"
        )

    def _t_sleeper_callback(self, verb: str, noun: str) -> str:
        return (
            f"-- service callbacks moved off the time-critical path\n"
            f"{verb}Watcher: PROC = {{\n"
            f"  WHILE TRUE DO\n"
            f"    work ← WorkQueue.Wait[{noun.lower()}Events];\n"
            f"    client.callback[work];\n"
            f"  ENDLOOP;\n"
            f"}};"
        )

    # -- one-shots --------------------------------------------------------------

    def _t_oneshot_delay(self, verb: str, noun: str) -> str:
        return (
            f"Later{verb}: PROC = {{\n"
            f"  Process.Pause[Process.MsecToTicks[armingPeriod]];\n"
            f"  {verb}{noun}[];  -- run once, then go away\n"
            f"}};"
        )

    def _t_oneshot_guard(self, verb: str, noun: str) -> str:
        return (
            f"-- guarded button: must be pressed twice, in close but not\n"
            f"-- too close succession\n"
            f"ArmGuard: PROC = {{\n"
            f"  Process.Pause[armTicks];\n"
            f"  SetLabel[button, \"Button\"];\n"
            f"  Process.Pause[windowTicks];\n"
            f"  IF NOT invoked THEN SetLabel[button, \"Butten\"];\n"
            f"}};"
        )

    # -- deadlock avoiders ----------------------------------------------------

    def _t_deadlock_locks(self, verb: str, noun: str) -> str:
        return (
            f"-- we already hold some, but not all, of the locks needed\n"
            f"-- for repainting: fork and let the painter lock in order\n"
            f"Adjust{noun}: ENTRY PROC = {{\n"
            f"  Move{noun}Boundary[];\n"
            f"  Process.Detach[FORK Repaint{noun}[upper]];\n"
            f"  Process.Detach[FORK Repaint{noun}[lower]];\n"
            f"}};"
        )

    def _t_deadlock_callback(self, verb: str, noun: str) -> str:
        return (
            f"-- forked so the service can release its locks and is\n"
            f"-- insulated from errors in the client callback\n"
            f"FOR each: Finalizable IN finalizeList DO\n"
            f"  Process.Detach[FORK each.finalize[each.data]];\n"
            f"ENDLOOP;"
        )

    # -- task rejuvenation ----------------------------------------------------

    def _t_rejuvenate(self, verb: str, noun: str) -> str:
        return (
            f"{verb}Dispatcher: PROC = {{\n"
            f"  dispatch ! UNCAUGHT => {{\n"
            f"    -- this thread is in trouble; make a new copy of it\n"
            f"    Process.Detach[FORK {verb}Dispatcher[]];\n"
            f"    CONTINUE;\n"
            f"  }};\n"
            f"}};"
        )

    # -- serializers -----------------------------------------------------------

    def _t_serializer(self, verb: str, noun: str) -> str:
        return (
            f"-- one thread preserves the ordering of {noun.lower()} events\n"
            f"{noun}Serializer: PROC = {{\n"
            f"  WHILE TRUE DO\n"
            f"    proc ← MBQueue.Dequeue[{noun.lower()}Context];\n"
            f"    proc[];  -- call procedures in the order received\n"
            f"  ENDLOOP;\n"
            f"}};"
        )

    # -- encapsulated forks -------------------------------------------------------

    def _t_encapsulated(self, verb: str, noun: str) -> str:
        package = self.rng.choice(
            ["DelayedFork.Create", "PeriodicalFork.Create",
             "PeriodicalProcess.Register", "MBQueue.Create"]
        )
        return (
            f"init: {package}[{verb}{noun}, {self.rng.randint(1, 60)}];"
            f"  -- package captures the forking paradigm"
        )

    # -- concurrency exploiters ----------------------------------------------------

    def _t_exploiter(self, verb: str, noun: str) -> str:
        return (
            f"-- use all processors for the {noun.lower()} pass\n"
            f"FOR i IN [0..numProcessors) DO\n"
            f"  workers[i] ← FORK {verb}Stripe[i, numProcessors];\n"
            f"ENDLOOP;\n"
            f"FOR i IN [0..numProcessors) DO [] ← JOIN workers[i]; ENDLOOP;"
        )

    def _t_defer_mail(self, verb: str, noun: str) -> str:
        return (
            f"Send{noun}: PUBLIC PROC [msg: {noun}] = {{\n"
            f"  -- queue it and return; delivery happens later\n"
            f"  Process.Detach[FORK Deliver{noun}[msg]];\n"
            f"}};"
        )

    def _t_pump_preprocess(self, verb: str, noun: str) -> str:
        return (
            f"-- tokens just appear in a queue: conceptually simpler\n"
            f"Preprocess{noun}: PROC = {{\n"
            f"  WHILE TRUE DO\n"
            f"    raw ← BoundedBuffer.Get[raw{noun}Q];\n"
            f"    Enqueue[cooked{noun}Q, Cook[raw]];\n"
            f"  ENDLOOP;\n"
            f"}};"
        )

    def _t_slack_replace(self, verb: str, noun: str) -> str:
        return (
            f"-- replace earlier data with later data before output\n"
            f"Coalesce{noun}: PROC = {{\n"
            f"  WHILE TRUE DO\n"
            f"    first ← Dequeue[{noun.lower()}Updates];\n"
            f"    Process.Pause[slackTicks];  -- add latency on purpose\n"
            f"    latest ← CoalesceLatest[first, DrainQueue[{noun.lower()}Updates]];\n"
            f"    Ship[latest];\n"
            f"  ENDLOOP;\n"
            f"}};"
        )

    def _t_sleeper_watchdog(self, verb: str, noun: str) -> str:
        return (
            f"{noun}Watchdog: PROC = {{\n"
            f"  WHILE TRUE DO\n"
            f"    WAIT watchdogCV;  -- check connection every T seconds\n"
            f"    IF Stale[{noun.lower()}Conn] THEN Close[{noun.lower()}Conn];\n"
            f"  ENDLOOP;\n"
            f"}};"
        )

    def _t_rejuvenate_stack(self, verb: str, noun: str) -> str:
        return (
            f"-- stack overflow: recovery impossible in this thread\n"
            f"{verb}Guard: PROC = {{\n"
            f"  body ! StackOverflow, UNCAUGHT => {{\n"
            f"    Process.Detach[FORK Report{noun}Trouble[]];\n"
            f"    Process.Detach[FORK {verb}Guard[]];  -- make two of them!\n"
            f"  }};\n"
            f"}};"
        )

    def _t_serializer_events(self, verb: str, noun: str) -> str:
        return (
            f"-- events arrive from a number of different sources; one\n"
            f"-- thread preserves the order received\n"
            f"{noun}EventLoop: PROC = {{\n"
            f"  WHILE TRUE DO\n"
            f"    e ← MBQueue.Dequeue[{noun.lower()}Q];\n"
            f"    e.proc[e.data];\n"
            f"  ENDLOOP;\n"
            f"}};"
        )

    # -- unknown / other ---------------------------------------------------------

    def _t_unknown_c(self, verb: str, noun: str) -> str:
        return (
            f"-- (inherited from Pilot days; semantics unclear)\n"
            f"IF bootCount > {self.rng.randint(1, 5)} THEN\n"
            f"  watcher{noun} ← FORK Opaque{verb}[world, state];"
        )

    def _t_unknown_a(self, verb: str, noun: str) -> str:
        return (
            f"-- historical; see AR {self.rng.randint(1000, 9999)}\n"
            f"IF mode = compat THEN trap ← FORK {verb}Shim[state^];"
        )

    def _t_unknown_b(self, verb: str, noun: str) -> str:
        return (
            f"{verb}Hack: PROC = {{\n"
            f"  -- temporary scaffolding, do not ship\n"
            f"  p ← FORK Helper{self.rng.randint(2, 9)}[];\n"
            f"  state.save[p];\n"
            f"}};"
        )
