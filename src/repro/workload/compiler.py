"""The scenario compiler: millions of open-loop clients, zero threads.

A :class:`ClientClass` describes a *population* — say 1.2 million
browsers each issuing 0.0015 requests/second — and the compiler installs
it as **one** self-rescheduling kernel event chain, not one thread (or
even one event chain) per client.  The superposition of N independent
Poisson processes at rate ``r`` is a Poisson process at rate ``N*r``,
and a time-varying shape turns it into a non-homogeneous Poisson
process, simulated exactly by *thinning*: draw candidate arrivals at the
shape's peak rate, accept each with probability ``rate(t) / peak``.
Cost is O(arrival events), so a million clients run at the same
wall-clock order as the pinned four-tenant mixes.

Determinism: each class forks three independent RNG streams off the
kernel seed (thinning, stragglers, resubmits), so the accepted arrival
schedule of a class is a pure function of ``(seed, frontend, class)``
— :func:`arrival_times` replays it without a kernel, which is what the
property tests pin against the live run.

Two per-arrival refinements keep the aggregation honest:

* **Stragglers** — with probability ``straggler_prob`` the client is
  slow to get the request out (radio wakeup, overloaded browser): the
  submission is delayed by an exponential stall but carries the
  original *intended* time, so the PR-5 CO-aware accounting charges the
  stall to the recorded latency, not to the server's deadline.
* **Retry storms** — open-loop clients that resubmit on shed.  A shed
  verdict normally ends an open-loop request (nobody is waiting); with
  ``resubmit_prob`` the class's :class:`ResubmitSink` schedules a
  backoff-delayed re-mint instead.  Shed -> resubmit -> more load ->
  more shed is the metastable-failure loop, and because resubmits carry
  the original intended time, the tail it causes stays on the books.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.kernel.rng import DeterministicRng
from repro.kernel.simtime import msec
from repro.server.model import FAILED, SHED, TenantSpec
from repro.workload.shapes import Constant, LoadShape


@dataclass(frozen=True)
class ClientClass:
    """One simulated client population sharing a tenant envelope."""

    tenant: TenantSpec
    #: Population size — millions are fine; cost is per *arrival*.
    clients: int
    #: Per-client request rate (requests/second) at shape value 1.0.
    rate_per_client: float
    shape: LoadShape = field(default_factory=Constant)
    #: Probability a shed verdict is resubmitted (open-loop retry storm).
    resubmit_prob: float = 0.0
    resubmit_backoff: int = msec(40)
    max_resubmits: int = 2
    #: Slow-client model: probability an accepted arrival stalls before
    #: submission, and the mean of the exponential stall.
    straggler_prob: float = 0.0
    straggler_stall: int = msec(150)

    @property
    def name(self) -> str:
        return self.tenant.name

    def rate_per_sec(self, t: int) -> float:
        """Aggregate offered rate (requests/second) at sim-time ``t``."""
        return self.clients * self.rate_per_client * self.shape.value(t)

    @property
    def peak_per_sec(self) -> float:
        """The thinning envelope: peak aggregate rate."""
        return self.clients * self.rate_per_client * self.shape.peak()


def arrival_times(
    cls: ClientClass,
    seed: int,
    until: int,
    *,
    frontend_name: str = "lb",
    origin: int = 0,
) -> list[int]:
    """The class's accepted arrival schedule, without a kernel.

    ``frontend_name`` must match the name of the frontend the class was
    installed on (the thinning stream is forked per frontend): ``"lb"``
    for a bare cluster balancer, ``"cache"`` for a cache-tier scenario.

    Replays exactly the draws :func:`install_workload`'s event chain
    makes (same forked stream, same order: inter-arrival then thinning
    accept), so the live world's per-tenant ``offered`` count equals
    ``len(arrival_times(...))`` for classes without resubmits.
    """
    rng = _thinning_rng(seed, frontend_name, cls)
    peak_sec = cls.peak_per_sec
    if peak_sec <= 0:
        return []
    peak_usec = peak_sec / 1_000_000.0
    times: list[int] = []
    t = origin + rng.expovariate(peak_usec)
    while t < until:
        if rng.uniform() * peak_sec <= cls.rate_per_sec(t):
            times.append(t)
        t += rng.expovariate(peak_usec)
    return times


def _thinning_rng(
    seed: int, frontend_name: str, cls: ClientClass
) -> DeterministicRng:
    return DeterministicRng(seed).fork(f"{frontend_name}:agg:{cls.name}")


class ResubmitSink:
    """Open-loop shed handling: count give-ups, maybe storm back.

    Installed as ``reply_to`` on every request the compiler mints, so
    shed/failed/done verdicts flow here instead of vanishing.  ``put``
    is a generator (the frontend calls it via ``yield from``) but never
    blocks: a resubmission is a *posted kernel event*, like every other
    open-loop arrival — no thread exists to wait out the backoff.
    """

    def __init__(self, frontend: Any, cls: ClientClass, rng: DeterministicRng):
        self.frontend = frontend
        self.cls = cls
        self.rng = rng
        #: rid -> resubmissions already spent on this operation.
        self.attempts: dict[str, int] = {}
        self.resubmitted = 0
        self.give_ups = 0
        self.completed = 0
        self.failed = 0

    def put(self, msg: tuple):
        verdict, req = msg
        spent = self.attempts.pop(req.rid, 0)
        if verdict == SHED:
            if (
                self.cls.resubmit_prob > 0.0
                and spent < self.cls.max_resubmits
                and self.rng.chance(self.cls.resubmit_prob)
            ):
                self._schedule_resubmit(req, spent)
            else:
                self.give_ups += 1
                self.frontend.stats.bump(self.cls.name, "give_ups")
        elif verdict == FAILED:
            self.failed += 1
        else:
            self.completed += 1
        return True
        yield  # pragma: no cover - generator protocol; never reached

    def _schedule_resubmit(self, req: Any, spent: int) -> None:
        self.resubmitted += 1
        frontend = self.frontend
        tenant = self.cls.tenant
        backoff = self.cls.resubmit_backoff * (2 ** spent)
        backoff += self.rng.randint(0, self.cls.resubmit_backoff)
        intended = req.intended

        def resubmit(k: Any) -> None:
            fresh = frontend.make_request(
                tenant,
                k.now,
                reply_to=self,
                intended=intended if tenant.co_aware else None,
            )
            self.attempts[fresh.rid] = spent + 1
            frontend.stats.bump(tenant.name, "client_retries")
            frontend.stats.bump(tenant.name, "offered")
            frontend.net.post(fresh)

        frontend.kernel.post_at(frontend.kernel.now + backoff, resubmit)


def install_workload(
    frontend: Any, classes: tuple[ClientClass, ...]
) -> dict[str, ResubmitSink]:
    """Install every class's aggregate arrival chain on ``frontend``.

    One timer pump per class: each event draws the next candidate
    inter-arrival at the peak rate, thins against the shape, and (when
    accepted) mints and posts a request — exactly the
    :func:`repro.server.clients.install_open_loop` pattern generalized
    to non-homogeneous rates and million-client populations.  Returns
    the per-class resubmit sinks for reporting.
    """
    seed = frontend.kernel.config.seed
    sinks: dict[str, ResubmitSink] = {}
    for cls in classes:
        sink = ResubmitSink(
            frontend,
            cls,
            DeterministicRng(seed).fork(f"{frontend.name}:resubmit:{cls.name}"),
        )
        sinks[cls.name] = sink
        _install_class(frontend, cls, sink)
    return sinks


def _install_class(
    frontend: Any, cls: ClientClass, sink: ResubmitSink
) -> None:
    """One class's self-rescheduling arrival chain.

    A separate function per class so ``arrive``'s self-reference closes
    over *this* call's scope — rescheduling inside a shared loop body
    would leave every chain re-posting the last class's ``arrive``.
    """
    kernel = frontend.kernel
    seed = kernel.config.seed
    peak_sec = cls.peak_per_sec
    if peak_sec <= 0:
        return
    rng = _thinning_rng(seed, frontend.name, cls)
    straggler_rng = DeterministicRng(seed).fork(
        f"{frontend.name}:straggler:{cls.name}"
    )
    peak_usec = peak_sec / 1_000_000.0
    tenant = cls.tenant
    stall_rate = 1.0 / max(1, cls.straggler_stall)

    def arrive(k: Any) -> None:
        if rng.uniform() * peak_sec <= cls.rate_per_sec(k.now):
            if cls.straggler_prob > 0.0 and straggler_rng.chance(
                cls.straggler_prob
            ):
                # The client meant to send now but stalls; the
                # intended time rides along so CO-aware accounting
                # charges the stall to the recorded latency.
                stall = straggler_rng.expovariate(stall_rate)
                intended = k.now

                def mint(k2: Any) -> None:
                    req = frontend.make_request(
                        tenant, k2.now, reply_to=sink, intended=intended
                    )
                    frontend.stats.bump(tenant.name, "offered")
                    frontend.net.post(req)

                k.post_at(k.now + stall, mint)
            else:
                req = frontend.make_request(tenant, k.now, reply_to=sink)
                frontend.stats.bump(tenant.name, "offered")
                frontend.net.post(req)
        k.post_at(k.now + rng.expovariate(peak_usec), arrive)

    kernel.post_at(kernel.now + rng.expovariate(peak_usec), arrive)
