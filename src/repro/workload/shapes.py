"""Composable load shapes: rate multipliers over simulated time.

A shape maps sim-time to a dimensionless multiplier applied to a client
class's aggregate base rate.  The scenario compiler turns the shaped
rate into a non-homogeneous Poisson process by *thinning* (candidate
arrivals at the shape's peak rate, each accepted with probability
``value(t) / peak()``), so every shape must report a finite upper bound
via :meth:`~LoadShape.peak`.

All curves are piecewise linear on purpose: linear interpolation uses
only IEEE-defined +,-,*,/ so the schedules they drive hash identically
on every platform — transcendental functions (``math.sin`` et al.) vary
at the ULP level across libm builds and would break the golden pins.
"""

from __future__ import annotations

from dataclasses import dataclass


class LoadShape:
    """Base: a multiplier curve with a finite peak."""

    def value(self, t: int) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def peak(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class Constant(LoadShape):
    """A flat multiplier — plain homogeneous Poisson arrivals."""

    level: float = 1.0

    def value(self, t: int) -> float:
        return self.level

    def peak(self) -> float:
        return self.level


@dataclass(frozen=True)
class Diurnal(LoadShape):
    """A day curve: overnight trough, ramp, midday plateau, ramp down.

    Piecewise linear over one ``period``, repeating: ``low`` for the
    first 10% of the period, a ramp to ``high`` by 35%, a plateau to
    70%, and a ramp back to ``low`` at the wrap.  Scaled down to a
    1-2 s simulated run, a sub-second period still exercises the whole
    curve several times.
    """

    period: int
    low: float = 0.4
    high: float = 1.0

    def _points(self) -> tuple[tuple[float, float], ...]:
        return (
            (0.0, self.low), (0.10, self.low), (0.35, self.high),
            (0.70, self.high), (1.0, self.low),
        )

    def value(self, t: int) -> float:
        phase = (t % self.period) / self.period
        points = self._points()
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            if phase <= x1:
                if x1 == x0:
                    return y1
                return y0 + (y1 - y0) * (phase - x0) / (x1 - x0)
        return self.low  # pragma: no cover - phase is always <= 1.0

    def peak(self) -> float:
        return max(self.low, self.high)


@dataclass(frozen=True)
class FlashCrowd(LoadShape):
    """Baseline load with one spike: ramp up, hold, ramp down.

    The shape is ``base`` everywhere except the crowd window starting at
    ``start``: a linear ramp to ``base * spike`` over ``ramp`` µs, a
    plateau for ``hold`` µs, and a symmetric ramp back down.
    """

    spike: float
    start: int
    ramp: int
    hold: int
    base: float = 1.0

    def value(self, t: int) -> float:
        top = self.base * self.spike
        up_end = self.start + self.ramp
        down_start = up_end + self.hold
        down_end = down_start + self.ramp
        if t < self.start or t >= down_end:
            return self.base
        if t < up_end:
            return self.base + (top - self.base) * (t - self.start) / self.ramp
        if t < down_start:
            return top
        return top - (top - self.base) * (t - down_start) / self.ramp

    def peak(self) -> float:
        return max(self.base, self.base * self.spike)


@dataclass(frozen=True)
class Ramp(LoadShape):
    """A one-way linear ramp from ``start_level`` to ``end_level``."""

    start_level: float
    end_level: float
    begin: int
    duration: int

    def value(self, t: int) -> float:
        if t <= self.begin:
            return self.start_level
        if t >= self.begin + self.duration:
            return self.end_level
        frac = (t - self.begin) / self.duration
        return self.start_level + (self.end_level - self.start_level) * frac

    def peak(self) -> float:
        return max(self.start_level, self.end_level)


@dataclass(frozen=True)
class Product(LoadShape):
    """Pointwise product of shapes (e.g. a diurnal curve times a flash
    crowd).  Peak is the product of peaks — an upper bound, which is all
    thinning needs (over-estimating the peak only wastes candidates)."""

    shapes: tuple[LoadShape, ...]

    def value(self, t: int) -> float:
        result = 1.0
        for shape in self.shapes:
            result *= shape.value(t)
        return result

    def peak(self) -> float:
        result = 1.0
        for shape in self.shapes:
            result *= shape.peak()
        return result
