"""The pinned workload scenarios: million-client mixes with a story.

Each :class:`WorkloadSpec` names a cluster configuration plus a tuple of
:class:`~repro.workload.compiler.ClientClass` populations.  Rates are
sized against the default two-shard cluster (capacity roughly 3300
requests/second at ~600 µs/request), so "steady" scenarios fit and the
storm scenarios credibly overflow.

``diurnal``
    Three populations totalling ~350 k clients: a day-curved web tier,
    a heavy-tailed api tier (bounded-Pareto cost multipliers), and a
    straggler-prone mobile tier.  Golden-pinned.

``flash-crowd``
    1.2 **million** open-loop browsers at a trickle each (~1800/s
    aggregate) spiking 3.5x for 400 ms mid-run — the scale witness: the
    arrival machinery is O(events), so a million clients cost the same
    wall-clock order as the four-tenant pinned mixes.

``retry-storm``
    A near-capacity population that resubmits 90% of sheds with short
    backoff: shed -> resubmit -> amplified load, the metastable loop,
    measured honestly because resubmits keep their intended times.

``cache-steady``
    A cache tier absorbing a hot-skewed read population; hits dominate,
    the backend sees only fetches and the uncached api tier.
    Golden-pinned.

``cache-stampede``
    A hot-key read population (85% of reads on one key) with a short
    TTL and a periodic wildcard invalidation.  With single-flight *off*
    every concurrent miss fetches and the duplicate fetches saturate
    the backend; with the guard *on* each expiry costs one fetch and
    the coalesced waiters ride the same fill.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.simtime import msec, usec
from repro.server.model import TenantSpec
from repro.workload.compiler import ClientClass
from repro.workload.shapes import Constant, Diurnal, FlashCrowd

WORKLOAD_SCENARIOS = (
    "diurnal", "flash-crowd", "retry-storm", "cache-steady",
    "cache-stampede",
)


@dataclass(frozen=True)
class WorkloadSpec:
    """One compiled scenario: populations plus cluster shape."""

    name: str
    classes: tuple[ClientClass, ...]
    cache: bool = False
    single_flight: bool = True
    #: Sim-time period of wildcard cache invalidations; 0 disables.
    invalidate_every: int = 0
    shards: int = 2
    workers_per_shard: int = 4
    policy: str = "p2c"
    admission: str = "wfq"
    admission_capacity: int = 64
    #: Extra cache worker threads (only used when ``cache`` is on).
    cache_workers: int = 2
    #: LRU entry capacity of the cache tier; None means unbounded.
    cache_capacity: "int | None" = None
    notes: str = ""

    @property
    def tenants(self) -> tuple[TenantSpec, ...]:
        return tuple(cls.tenant for cls in self.classes)

    @property
    def total_clients(self) -> int:
        return sum(cls.clients for cls in self.classes)


def _diurnal_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="diurnal",
        classes=(
            ClientClass(
                tenant=TenantSpec(
                    name="web", mode="open", cost=usec(500),
                    deadline=msec(400), slo=msec(80), weight=2,
                ),
                clients=200_000,
                rate_per_client=0.006,
                shape=Diurnal(period=msec(800), low=0.4, high=1.0),
            ),
            ClientClass(
                tenant=TenantSpec(
                    name="api", mode="open", cost=usec(450),
                    deadline=msec(400), slo=msec(100), weight=2,
                    cost_tail_prob=0.08, cost_tail_alpha=1.3,
                    cost_tail_cap=40.0,
                ),
                clients=50_000,
                rate_per_client=0.012,
            ),
            ClientClass(
                tenant=TenantSpec(
                    name="mobile", mode="open", cost=usec(400),
                    deadline=msec(500), slo=msec(250), weight=1,
                ),
                clients=100_000,
                rate_per_client=0.003,
                straggler_prob=0.2,
                straggler_stall=msec(120),
            ),
        ),
        notes="day curve + heavy tail + stragglers, inside capacity",
    )


def _flash_crowd_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="flash-crowd",
        classes=(
            ClientClass(
                tenant=TenantSpec(
                    name="crowd", mode="open", cost=usec(550),
                    deadline=msec(400), slo=msec(120), weight=2,
                ),
                clients=1_200_000,
                rate_per_client=0.0015,
                shape=FlashCrowd(
                    spike=3.5, start=msec(600), ramp=msec(100),
                    hold=msec(400),
                ),
            ),
            ClientClass(
                tenant=TenantSpec(
                    name="api", mode="open", cost=usec(500),
                    deadline=msec(400), slo=msec(100), weight=2,
                ),
                clients=20_000,
                rate_per_client=0.01,
            ),
        ),
        notes="1.2M clients, 3.5x spike overruns the cluster mid-run",
    )


def _retry_storm_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="retry-storm",
        classes=(
            ClientClass(
                tenant=TenantSpec(
                    name="flood", mode="open", cost=usec(600),
                    deadline=msec(400), slo=msec(150), weight=1,
                ),
                clients=300_000,
                rate_per_client=0.011,
                resubmit_prob=0.9,
                resubmit_backoff=msec(25),
                max_resubmits=3,
            ),
            ClientClass(
                tenant=TenantSpec(
                    name="victim", mode="open", cost=usec(400),
                    deadline=msec(400), slo=msec(100), weight=2,
                ),
                clients=20_000,
                rate_per_client=0.01,
                shape=Constant(),
            ),
        ),
        notes="near-capacity flood resubmitting 90% of sheds",
    )


def _cache_steady_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="cache-steady",
        classes=(
            ClientClass(
                tenant=TenantSpec(
                    name="reads", mode="open", cost=usec(700),
                    deadline=msec(500), slo=msec(50), weight=2,
                    cached=True, cache_keys=32, cache_hot_frac=0.3,
                    cache_ttl=msec(300),
                ),
                clients=150_000,
                rate_per_client=0.01,
            ),
            ClientClass(
                tenant=TenantSpec(
                    name="api", mode="open", cost=usec(500),
                    deadline=msec(400), slo=msec(100), weight=2,
                ),
                clients=40_000,
                rate_per_client=0.01,
            ),
        ),
        cache=True,
        notes="hot-skewed reads mostly served from cache",
    )


def _cache_stampede_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="cache-stampede",
        classes=(
            ClientClass(
                tenant=TenantSpec(
                    name="hot", mode="open", cost=usec(900),
                    deadline=msec(500), slo=msec(100), weight=2,
                    cached=True, cache_keys=4, cache_hot_frac=0.85,
                    cache_ttl=msec(12),
                ),
                clients=850_000,
                rate_per_client=0.006,
            ),
            ClientClass(
                tenant=TenantSpec(
                    name="api", mode="open", cost=usec(500),
                    deadline=msec(400), slo=msec(100), weight=2,
                ),
                clients=30_000,
                rate_per_client=0.01,
            ),
        ),
        cache=True,
        invalidate_every=msec(250),
        notes="hot key + short TTL + wildcard invalidations",
    )


_SPECS: dict[str, object] = {
    "diurnal": _diurnal_spec,
    "flash-crowd": _flash_crowd_spec,
    "retry-storm": _retry_storm_spec,
    "cache-steady": _cache_steady_spec,
    "cache-stampede": _cache_stampede_spec,
}


def workload_spec(name: str) -> WorkloadSpec:
    """The pinned scenario by name (see module docstring)."""
    try:
        build = _SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload scenario {name!r}; "
            f"available: {sorted(_SPECS)}"
        ) from None
    return build()


# Keep WorkloadSpec.field import referenced for dataclasses tooling.
_ = field
