"""Workload generator v2: compiled million-client scenarios.

The compiler simulates open-loop client *populations* as aggregate
non-homogeneous Poisson arrival processes — one timer pump per tenant
class, thinning against a composable load shape — so a million clients
cost O(arrival events), not O(clients).  Scenarios add heavy-tailed
service costs, slow-client stragglers, retry storms, and (with the
cache tier) reproducible stampedes; every run reports per-tenant SLO
attainment.  See ``docs/WORKLOAD.md``.
"""

from repro.workload.compiler import (
    ClientClass,
    ResubmitSink,
    arrival_times,
    install_workload,
)
from repro.workload.scenarios import (
    WORKLOAD_SCENARIOS,
    WorkloadSpec,
    workload_spec,
)
from repro.workload.shapes import (
    Constant,
    Diurnal,
    FlashCrowd,
    LoadShape,
    Product,
    Ramp,
)
from repro.workload.world import (
    WorkloadReport,
    WorkloadWorld,
    build_workload_world,
    run_workload,
    summarize_workload,
)

__all__ = [
    "ClientClass",
    "Constant",
    "Diurnal",
    "FlashCrowd",
    "LoadShape",
    "Product",
    "Ramp",
    "ResubmitSink",
    "WORKLOAD_SCENARIOS",
    "WorkloadReport",
    "WorkloadSpec",
    "WorkloadWorld",
    "arrival_times",
    "build_workload_world",
    "install_workload",
    "run_workload",
    "summarize_workload",
    "workload_spec",
]
