"""Assembling and running compiled workload scenarios.

:func:`build_workload_world` stands up the sharded cluster *without* its
default per-tenant traffic loops, optionally fronts it with a
:class:`~repro.cluster.cache.CacheTier`, and installs the scenario's
compiled client populations on whichever layer faces the clients.
:func:`run_workload` is the one-call entry point used by the CLI, the
golden scenarios, the chaos sweep and ``bench_workload``.

The :class:`WorkloadReport` folds a run down to the *client-facing*
story: per-tenant counters and latency as the population experienced
them (the cache tier's books for cached tenants, the cluster rollup for
the rest — each request counted at exactly one client-facing layer),
plus per-tenant **SLO attainment**.  Attainment is reported two ways:

* ``latency_attainment`` — among completed requests, the fraction whose
  recorded latency met the tenant's SLO target (CO-aware: stragglers
  and resubmits charge their stalls here);
* ``slo_attainment`` — the honest headline: latency attainment scaled
  by the completion rate, so sheds, give-ups and failures count as
  misses instead of silently leaving the denominator.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.balancer import LoadBalancer
from repro.cluster.cache import INVALIDATE_ALL, CacheTier
from repro.cluster.world import (
    DEFAULT_DURATION,
    build_cluster_world,
    summarize_cluster,
)
from repro.kernel.config import KernelConfig
from repro.runtime.pcr import World
from repro.server.latency import attainment_from_dict
from repro.server.model import ServerStats
from repro.workload.compiler import ResubmitSink, install_workload
from repro.workload.scenarios import WorkloadSpec, workload_spec


@dataclass
class WorkloadWorld:
    """A live compiled scenario: cluster, optional cache, sinks."""

    world: World
    spec: WorkloadSpec
    balancer: LoadBalancer
    cache: CacheTier | None
    sinks: dict[str, ResubmitSink]
    single_flight: bool | None

    @property
    def frontend(self) -> Any:
        """The layer the client populations actually drive."""
        return self.cache if self.cache is not None else self.balancer


@dataclass
class WorkloadReport:
    """One workload run, folded to its SLO-attainment story."""

    scenario: str
    seed: int
    duration: int
    total_clients: int
    #: None when the scenario has no cache tier.
    single_flight: bool | None
    #: Client-facing per-tenant rows: counters, latency, attainment.
    tenants: dict = field(default_factory=dict)
    totals: dict = field(default_factory=dict)
    #: :meth:`CacheTier.cache_counters` snapshot, or None.
    cache: dict | None = None
    #: Per-class resubmit-sink counters (storm bookkeeping).
    sinks: dict = field(default_factory=dict)
    #: The backend cluster's own rollup (fetch traffic included).
    cluster: dict = field(default_factory=dict)
    digest: str = ""

    @property
    def completed(self) -> int:
        return self.totals["completed"]

    @property
    def offered(self) -> int:
        return self.totals["offered"]

    @property
    def attainment(self) -> dict[str, float]:
        """Per-tenant headline SLO attainment."""
        return {
            name: row["slo_attainment"] for name, row in self.tenants.items()
        }

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "duration_us": self.duration,
            "total_clients": self.total_clients,
            "single_flight": self.single_flight,
            "digest": self.digest,
            "tenants": self.tenants,
            "totals": self.totals,
            "cache": self.cache,
            "sinks": self.sinks,
            "cluster": self.cluster,
        }


def build_workload_world(
    config: KernelConfig | None = None,
    *,
    scenario: str = "diurnal",
    spec: WorkloadSpec | None = None,
    single_flight: bool | None = None,
) -> WorkloadWorld:
    """Build the scenario: cluster up, cache (maybe) fronted, load on.

    ``single_flight`` overrides the spec's default — the stampede
    benchmark runs the same scenario twice, guard on and guard off.
    """
    if spec is None:
        spec = workload_spec(scenario)
    if single_flight is None:
        single_flight = spec.single_flight
    world, balancer = build_cluster_world(
        config,
        shards=spec.shards,
        workers_per_shard=spec.workers_per_shard,
        policy=spec.policy,
        admission=spec.admission,
        admission_capacity=spec.admission_capacity,
        tenants=spec.tenants,
        install_traffic=False,
    )
    cache: CacheTier | None = None
    frontend: Any = balancer
    if spec.cache:
        cache = CacheTier(
            world,
            balancer,
            spec.tenants,
            workers=spec.cache_workers,
            single_flight=single_flight,
            capacity=spec.cache_capacity,
        )
        cache.start()
        frontend = cache
    sinks = install_workload(frontend, spec.classes)
    if spec.invalidate_every and cache is not None:
        _install_invalidations(world, cache, spec.invalidate_every)
    return WorkloadWorld(
        world=world,
        spec=spec,
        balancer=balancer,
        cache=cache,
        sinks=sinks,
        single_flight=single_flight if spec.cache else None,
    )


def _install_invalidations(world: World, cache: CacheTier, every: int) -> None:
    """Periodic wildcard invalidation — the stampede trigger."""
    kernel = world.kernel

    def flush(k: Any) -> None:
        cache.invalidations.post(INVALIDATE_ALL)
        k.post_at(k.now + every, flush)

    kernel.post_at(kernel.now + every, flush)


def _client_rows(ww: WorkloadWorld, cluster_merged: dict) -> dict:
    """Per-tenant counters/latency as the clients experienced them.

    Without a cache the cluster rollup *is* the client view.  With one,
    cached tenants live entirely on the cache tier's books (their
    cluster rows are internal fetch traffic), while uncached tenants
    terminate at the shards — except the mint-side counters (``offered``,
    ``give_ups``, ``client_retries``), which the compiler bumps on the
    frontend, i.e. the cache.
    """
    if ww.cache is None:
        return {
            name: dict(row)
            for name, row in cluster_merged["tenants"].items()
        }
    cache_stats = ww.cache.stats
    rows: dict[str, dict] = {}
    for tenant in ww.spec.tenants:
        name = tenant.name
        cache_row = cache_stats.per_tenant.get(
            name, dict.fromkeys(ServerStats.KINDS, 0)
        )
        cache_latency = cache_stats.tenant_latency.get(name)
        if tenant.cached:
            rows[name] = {
                **cache_row,
                "latency": cache_latency.to_dict() if cache_latency else None,
            }
        else:
            cluster_row = dict(
                cluster_merged["tenants"].get(
                    name,
                    {**dict.fromkeys(ServerStats.KINDS, 0), "latency": None},
                )
            )
            for kind in ("offered", "give_ups", "client_retries"):
                cluster_row[kind] = cache_row[kind]
            rows[name] = cluster_row
    return rows


def summarize_workload(
    ww: WorkloadWorld, *, seed: int, duration: int
) -> WorkloadReport:
    """Fold a finished (or still-live) workload world into a report."""
    spec = ww.spec
    cluster = summarize_cluster(
        ww.balancer, scenario=spec.name, seed=seed, duration=duration
    )
    rows = _client_rows(ww, cluster.merged)
    slo_by_name = {t.name: t.slo_us for t in spec.tenants}
    tenants: dict[str, dict] = {}
    for name, row in sorted(rows.items()):
        slo_us = slo_by_name.get(name, 0)
        offered = row.get("offered", 0)
        completed = row.get("completed", 0)
        latency_att = attainment_from_dict(row.get("latency"), slo_us)
        completion = completed / offered if offered else 1.0
        tenants[name] = {
            **row,
            "slo_us": slo_us,
            "latency_attainment": round(latency_att, 6),
            "slo_attainment": round(latency_att * completion, 6),
        }
    totals = {
        kind: sum(row.get(kind, 0) for row in tenants.values())
        for kind in ServerStats.KINDS
    }
    sinks = {
        name: {
            "resubmitted": sink.resubmitted,
            "give_ups": sink.give_ups,
            "completed": sink.completed,
            "failed": sink.failed,
        }
        for name, sink in sorted(ww.sinks.items())
    }
    cache = ww.cache.cache_counters() if ww.cache is not None else None
    report = WorkloadReport(
        scenario=spec.name,
        seed=seed,
        duration=duration,
        total_clients=spec.total_clients,
        single_flight=ww.single_flight,
        tenants=tenants,
        totals=totals,
        cache=cache,
        sinks=sinks,
        cluster={
            "digest": cluster.digest,
            "throughput_per_sec": round(cluster.throughput_per_sec, 3),
            "shed_fraction": round(cluster.shed_fraction, 6),
            "totals": cluster.merged["totals"],
            "latency": cluster.merged["latency"],
        },
    )
    canonical = {
        "tenants": tenants,
        "totals": totals,
        "cache": cache,
        "sinks": sinks,
        "cluster_digest": cluster.digest,
    }
    report.digest = hashlib.sha256(
        json.dumps(canonical, sort_keys=True).encode()
    ).hexdigest()
    return report


def run_workload(
    *,
    seed: int = 0,
    scenario: str = "diurnal",
    spec: WorkloadSpec | None = None,
    single_flight: bool | None = None,
    duration: int = DEFAULT_DURATION,
    ncpus: int | None = None,
    config_overrides: dict | None = None,
    raise_on_deadlock: bool = True,
    keep_world: bool = False,
) -> WorkloadReport | tuple[WorkloadReport, WorkloadWorld]:
    """Run one compiled scenario and fold it into a report.

    ``ncpus`` defaults to one CPU per shard plus one for the cache tier
    when the scenario has one; ``keep_world`` hands back the live
    :class:`WorkloadWorld` (caller owns shutdown).
    """
    if spec is None:
        spec = workload_spec(scenario)
    if ncpus is None:
        ncpus = spec.shards + (1 if spec.cache else 0)
    base = dict(seed=seed, ncpus=ncpus)
    if config_overrides:
        base.update(config_overrides)
    config = KernelConfig(**base)
    ww = build_workload_world(
        config, spec=spec, single_flight=single_flight
    )
    ww.world.run_for(duration, raise_on_deadlock=raise_on_deadlock)
    report = summarize_workload(ww, seed=seed, duration=duration)
    if keep_world:
        return report, ww
    ww.world.shutdown()
    return report
