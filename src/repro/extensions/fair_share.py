"""Fair-share vs strict-priority scheduling (paper §6.2/§7, future work).

"The SystemDaemon hack pushes the thread model a bit in the direction of
fair-share or proportional scheduling ... a model intuitively better
suited to controlling long-term average behavior than to controlling
moment-by-moment processor allocation to meet near-real-time
requirements."  And the conclusion: "Both strict priority scheduling and
fair-share priority scheduling seem to complicate rather than ease the
programming of highly reactive systems."

The experiment quantifies the trade-off on this kernel, using the
``scheduler_policy="fair_share"`` lottery (tickets double per priority
level, no priority preemption):

* **starvation/inversion side** — Birrell's stable-inversion scenario:
  under strict priority the high thread starves unless the SystemDaemon
  intervenes; under fair share the low-priority lock holder always gets
  *some* share, so the inversion self-clears with no hacks at all;
* **reactivity side** — the keystroke-echo path under a background load:
  strict priority gives the priority-7 Notifier the CPU the instant a key
  arrives; fair share makes the echo wait for lottery luck and quantum
  boundaries, inflating interactive latency by an order of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel import Kernel, KernelConfig
from repro.kernel.primitives import Channelreceive, Compute, Enter, Exit, GetTime, Pause
from repro.kernel.simtime import msec, sec, usec
from repro.sync.monitor import Monitor


@dataclass
class FairShareInversionResult:
    policy: str
    acquired_at: int | None


def run_inversion(*, policy: str, run_length: int = sec(5), seed: int = 0) -> FairShareInversionResult:
    """Birrell's scenario under either policy, with NO workarounds."""
    kernel = Kernel(KernelConfig(seed=seed, scheduler_policy=policy))
    lock = Monitor("inverted")
    marks: dict[str, int] = {}

    def low():
        yield Enter(lock)
        try:
            yield Pause(msec(50))
            yield Compute(msec(2))
        finally:
            yield Exit(lock)

    def hog():
        while True:
            yield Compute(msec(10))

    def high():
        yield Enter(lock)
        try:
            marks["acquired"] = yield GetTime()
        finally:
            yield Exit(lock)

    kernel.fork_root(low, name="low", priority=2)
    kernel.post_at(msec(10), lambda k: k.fork_root(hog, name="hog", priority=4))
    kernel.post_at(msec(20), lambda k: k.fork_root(high, name="high", priority=6))
    kernel.run_for(run_length)
    result = FairShareInversionResult(
        policy=policy, acquired_at=marks.get("acquired")
    )
    kernel.shutdown()
    return result


@dataclass
class ReactivityResult:
    policy: str
    echo_latencies: list[int] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        if not self.echo_latencies:
            return 0.0
        return sum(self.echo_latencies) / len(self.echo_latencies)

    @property
    def max_latency(self) -> int:
        return max(self.echo_latencies, default=0)


def run_reactivity(
    *,
    policy: str,
    keystrokes: int = 30,
    key_interval: int = msec(100),
    background_threads: int = 3,
    seed: int = 0,
) -> ReactivityResult:
    """Keystroke handling latency under CPU-bound background load.

    The Notifier (priority 7) handles each key with 200 µs of work; the
    background threads (priority 2) grind continuously.  Strict priority
    preempts for the Notifier immediately; fair share makes it win a
    lottery first.
    """
    kernel = Kernel(KernelConfig(seed=seed, scheduler_policy=policy))
    keyboard = kernel.channel("keyboard")
    result = ReactivityResult(policy=policy)

    def notifier():
        while True:
            pressed_at = yield Channelreceive(keyboard)
            yield Compute(usec(200))  # echo the glyph
            now = yield GetTime()
            result.echo_latencies.append(now - pressed_at)

    def background():
        while True:
            yield Compute(msec(10))

    kernel.fork_root(notifier, name="Notifier", priority=7, role="eternal")
    for index in range(background_threads):
        kernel.fork_root(background, name=f"bg{index}", priority=2,
                         role="eternal")

    def post_key(k):
        keyboard.post(k.now)

    for i in range(keystrokes):
        kernel.post_at((i + 1) * key_interval + usec(137), post_key)
    kernel.run_for((keystrokes + 5) * key_interval)
    kernel.shutdown()
    return result


def run_tradeoff(**kwargs) -> dict[str, dict[str, object]]:
    """Both sides of the ledger, both policies."""
    summary: dict[str, dict[str, object]] = {}
    for policy in ("strict", "fair_share"):
        inversion = run_inversion(policy=policy)
        reactivity = run_reactivity(policy=policy, **kwargs)
        summary[policy] = {
            "inversion_acquired_at": inversion.acquired_at,
            "echo_mean": reactivity.mean_latency,
            "echo_max": reactivity.max_latency,
        }
    return summary
