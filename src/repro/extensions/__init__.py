"""Beyond the paper: its own future-work suggestions, made runnable.

* :mod:`adaptive_timeout` — §5.5: "dynamically tuning application
  timeout values based on end-to-end system performance may be a
  workable solution";
* :mod:`fair_share` — §7: "another area of future work is to explore the
  work from the real-time scheduling community ...  Both strict priority
  scheduling and fair-share priority scheduling seem to complicate rather
  than ease the programming of highly reactive systems" — an experiment
  quantifying that trade-off on this kernel;
* the priority-inheritance ablation lives in
  :mod:`repro.casestudies.inversion` (``inheritance=True``).
"""
