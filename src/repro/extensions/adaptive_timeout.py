"""Adaptive timeouts (paper §5.5, future work).

"We found many instances of timeouts and pauses with ridiculous values.
These values presumably were chosen with some particular now-obsolete
processor speed or network architecture in mind. ...  dynamically tuning
application timeout values based on end-to-end system performance may be
a workable solution."

:class:`AdaptiveTimeout` is that solution, built like a TCP
retransmission timer: it tracks the smoothed response time (SRTT) and
variance (RTTVAR) of observed completions and proposes

    timeout = srtt + k * rttvar     (clamped to [floor, ceiling])

:func:`run_rpc_experiment` quantifies the §5.5 failure mode.  A client
calls a server and treats a timeout as failure-detection.  The timeout
constant was tuned for one "server generation"; the experiment then runs
it against servers 10x faster and 10x slower (the passage of hardware
time) and against a crashed server:

* a fixed timeout tuned for the old, slow server detects a crash slowly
  on new hardware (the "ridiculous value" problem in reverse);
* a fixed timeout tuned for fast hardware fires spuriously on slow
  hardware, turning healthy calls into false failures;
* the adaptive timer tracks whatever hardware it lands on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel import Kernel, KernelConfig
from repro.kernel.primitives import Channelreceive, Compute, GetTime
from repro.kernel.simtime import msec, sec


class AdaptiveTimeout:
    """An RTO-style timeout estimator over observed response times."""

    def __init__(
        self,
        *,
        initial: int = msec(500),
        k: float = 4.0,
        alpha: float = 0.125,
        beta: float = 0.25,
        floor: int = msec(50),
        ceiling: int = sec(30),
    ) -> None:
        if floor <= 0 or ceiling < floor:
            raise ValueError("need 0 < floor <= ceiling")
        self.k = k
        self.alpha = alpha
        self.beta = beta
        self.floor = floor
        self.ceiling = ceiling
        self._srtt: float | None = None
        self._rttvar: float = initial / 2
        self._initial = initial
        self.samples = 0

    def observe(self, response_time: int) -> None:
        """Feed one observed end-to-end completion time."""
        if response_time < 0:
            raise ValueError("response time must be >= 0")
        self.samples += 1
        if self._srtt is None:
            self._srtt = float(response_time)
            self._rttvar = response_time / 2
            return
        deviation = abs(self._srtt - response_time)
        self._rttvar = (1 - self.beta) * self._rttvar + self.beta * deviation
        self._srtt = (1 - self.alpha) * self._srtt + self.alpha * response_time

    @property
    def timeout(self) -> int:
        """The currently recommended timeout."""
        if self._srtt is None:
            return self._initial
        raw = self._srtt + self.k * max(self._rttvar, 1.0)
        return max(self.floor, min(self.ceiling, round(raw)))


@dataclass
class RpcResult:
    policy: str
    server_speed: str
    calls: int
    completed: int
    spurious_timeouts: int
    #: Time to notice the crashed server (end-of-experiment phase).
    crash_detection_time: int | None = None
    final_timeout: int = 0
    timeouts_used: list[int] = field(default_factory=list)


def run_rpc_experiment(
    *,
    policy: str,                # "fixed" or "adaptive"
    fixed_timeout: int = msec(500),
    server_response: int = msec(40),
    calls: int = 40,
    seed: int = 0,
) -> RpcResult:
    """A client RPC loop against a jittery server, then a crash.

    The server answers in ``server_response`` ± 50% jitter.  After
    ``calls`` successful rounds the server dies; the result records how
    long the client's current timeout takes to notice.
    """
    kernel = Kernel(KernelConfig(seed=seed, quantum=msec(10)))
    rng = kernel.rng.fork("server")
    request_channel = kernel.channel("rpc.requests")
    reply_channel = kernel.channel("rpc.replies")
    adaptive = AdaptiveTimeout(initial=fixed_timeout, floor=msec(20))
    result = RpcResult(policy=policy, server_speed=f"{server_response}us",
                       calls=calls, completed=0, spurious_timeouts=0)
    crashed = {"at": None, "noticed": None}

    def server():
        served = 0
        while served < calls:
            request = yield Channelreceive(request_channel)
            jitter = rng.randint(server_response // 2, (server_response * 3) // 2)
            yield Compute(jitter)
            reply_channel.post(("reply", request))
            served += 1
        # Served its quota: the server "crashes" (stops answering).
        crashed["at"] = yield GetTime()
        while True:
            yield Channelreceive(request_channel)  # reads, never replies

    def client():
        sequence = 0
        while result.completed < calls or crashed["noticed"] is None:
            timeout = (
                adaptive.timeout if policy == "adaptive" else fixed_timeout
            )
            result.timeouts_used.append(timeout)
            sequence += 1
            sent_at = yield GetTime()
            request_channel.post(("request", sequence))
            reply = yield Channelreceive(reply_channel, timeout=timeout)
            now = yield GetTime()
            if reply is not None:
                result.completed += 1
                if policy == "adaptive":
                    adaptive.observe(now - sent_at)
            elif crashed["at"] is None:
                # The server was alive: this timeout was spurious.
                result.spurious_timeouts += 1
            else:
                crashed["noticed"] = now
                break

    kernel.fork_root(server, name="server", priority=4)
    kernel.fork_root(client, name="client", priority=4)
    kernel.run_for(sec(120))
    if crashed["noticed"] is not None and crashed["at"] is not None:
        result.crash_detection_time = crashed["noticed"] - crashed["at"]
    result.final_timeout = (
        adaptive.timeout if policy == "adaptive" else fixed_timeout
    )
    kernel.shutdown()
    return result


def run_generations(
    *,
    tuned_for: int = msec(400),
    speeds: dict[str, int] | None = None,
) -> dict[str, dict[str, RpcResult]]:
    """Run fixed (tuned for one generation) vs adaptive across hardware
    generations — the §5.5 "now-obsolete processor speed" scenario.

    ``tuned_for`` is the fixed timeout someone once calibrated for the
    slow machine (10x its typical response).
    """
    if speeds is None:
        speeds = {
            "old-slow": msec(40),    # the machine the constant was tuned on
            "new-fast": msec(4),     # a decade of hardware later
            "loaded": msec(160),     # same machine under heavy load
            # A remote server behind a congested link: tail responses
            # exceed the old constant, so the fixed timer misfires on
            # perfectly healthy calls.
            "degraded": msec(320),
        }
    results: dict[str, dict[str, RpcResult]] = {}
    for label, response in speeds.items():
        results[label] = {
            "fixed": run_rpc_experiment(
                policy="fixed", fixed_timeout=tuned_for,
                server_response=response,
            ),
            "adaptive": run_rpc_experiment(
                policy="adaptive", fixed_timeout=tuned_for,
                server_response=response,
            ),
        }
    return results
