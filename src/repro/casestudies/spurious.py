"""Case study C3 (Section 6.1): spurious lock conflicts.

"A spurious lock conflict occurs between a thread notifying a CV and the
thread that it awakens. ...  We observed this phenomenon even on a
uniprocessor, where it occurs when the waiting thread has higher priority
than the notifying thread.  ...  In our systems the fix (defer processor
rescheduling, but not the notification itself, until after monitor exit)
was made in the runtime implementation."

The experiment runs an interpriority producer/consumer pair under both
NOTIFY semantics and counts the wasted trips through the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel import Kernel, KernelConfig
from repro.kernel.primitives import Compute, Enter, Exit, Notify
from repro.kernel.simtime import sec, usec
from repro.sync.condition import ConditionVariable, await_condition
from repro.sync.monitor import Monitor


@dataclass
class SpuriousResult:
    semantics: str
    items: int
    spurious_conflicts: int
    switches: int
    dispatches: int
    #: RaceReports when run with ``race_detection=True`` (else empty).
    race_reports: list = field(default_factory=list)


def run_producer_consumer(
    *,
    notify_semantics: str,
    items: int = 50,
    consumer_priority: int = 5,
    producer_priority: int = 3,
    in_monitor_work: int = usec(100),
    seed: int = 0,
    race_detection: bool = False,
) -> SpuriousResult:
    """One interpriority producer/consumer run.

    The producer notifies while still inside the monitor (the Mesa rule
    forbids anything else: "the Mesa language does not allow condition
    variable notifies outside of monitor locks") and then keeps working
    under the lock — the window in which an immediately-rescheduled
    high-priority notifyee uselessly wakes, fails to get the mutex, and
    blocks again.
    """
    kernel = Kernel(
        KernelConfig(
            seed=seed,
            notify_semantics=notify_semantics,
            race_detection=race_detection,
        )
    )
    lock = Monitor("pc")
    nonempty = ConditionVariable(lock, "nonempty")
    state = {"available": 0, "consumed": 0}

    def consumer():
        while state["consumed"] < items:
            yield Enter(lock)
            try:
                yield from await_condition(nonempty, lambda: state["available"] > 0)
                state["available"] -= 1
                state["consumed"] += 1
            finally:
                yield Exit(lock)

    def producer():
        for _ in range(items):
            yield Enter(lock)
            try:
                state["available"] += 1
                yield Notify(nonempty)
                # Still holding the monitor: the spurious-conflict window.
                yield Compute(in_monitor_work)
            finally:
                yield Exit(lock)
            yield Compute(usec(50))

    kernel.fork_root(consumer, name="consumer", priority=consumer_priority)
    kernel.fork_root(producer, name="producer", priority=producer_priority)
    kernel.run_for(sec(10))
    result = SpuriousResult(
        semantics=notify_semantics,
        items=state["consumed"],
        spurious_conflicts=kernel.stats.spurious_conflicts,
        switches=kernel.stats.switches,
        dispatches=kernel.stats.dispatches,
        race_reports=(
            list(kernel.race_detector.reports) if kernel.race_detector else []
        ),
    )
    kernel.shutdown()
    return result


def run_comparison(**kwargs) -> dict[str, SpuriousResult]:
    return {
        "immediate": run_producer_consumer(notify_semantics="immediate", **kwargs),
        "deferred": run_producer_consumer(notify_semantics="deferred", **kwargs),
    }
