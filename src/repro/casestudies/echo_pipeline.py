"""The keystroke-echo critical path.

"The time between when a key is pressed and the corresponding glyph is
echoed to a window is very important to the usability of these systems."
(Section 1.)  This module builds that path on the simulated kernel:

    keyboard device ──> Notifier (high prio, defers work)
                   ──> imaging thread (renders the glyph, queues paint
                        requests)
                   ──> buffer thread (slack process)
                   ──> X server

and measures, per keystroke, the *echo latency*: key press to the flush
that carried its glyph to the server.  The buffer thread's gather
strategy and the scheduler quantum are the experimental variables of the
YieldButNotToMe and quantum case studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel import Kernel, KernelConfig
from repro.kernel.primitives import Channelreceive, Compute, GetTime
from repro.kernel.simtime import msec, usec
from repro.sync.queues import UnboundedQueue
from repro.xwindows.buffer_thread import PaintRequest
from repro.xwindows.server import XServer
from repro.paradigms.slack import SlackProcess


@dataclass
class EchoResult:
    """What one echo-pipeline run produced."""

    strategy: str
    quantum: int
    keystrokes: int
    echo_latencies: list[int] = field(default_factory=list)
    flushes: int = 0
    mean_batch: float = 0.0
    merge_ratio: float = 0.0
    switches: int = 0
    server_busy: int = 0

    @property
    def mean_latency(self) -> float:
        if not self.echo_latencies:
            return 0.0
        return sum(self.echo_latencies) / len(self.echo_latencies)

    @property
    def max_latency(self) -> int:
        return max(self.echo_latencies, default=0)


def run_echo_pipeline(
    *,
    strategy: str,
    quantum: int = msec(50),
    switch_cost: int | None = None,
    sleep_interval: int = 0,
    keystrokes: int = 40,
    key_interval: int = msec(80),
    glyph_work: int = usec(300),
    regions_per_glyph: int = 4,
    inter_request_work: int = msec(2),
    buffer_priority: int = 5,
    imaging_priority: int = 3,
    notifier_priority: int = 7,
    seed: int = 0,
) -> EchoResult:
    """Type ``keystrokes`` keys and measure how their echoes reach X.

    Each keystroke makes the imaging thread render a glyph: a burst of
    ``regions_per_glyph`` overlapping paint requests (cursor region,
    glyph cell, status line...), which is the merging opportunity.
    """
    config_kwargs = dict(seed=seed, quantum=quantum)
    if switch_cost is not None:
        config_kwargs["switch_cost"] = switch_cost
    kernel = Kernel(KernelConfig(**config_kwargs))
    server = XServer()
    keyboard = kernel.channel("keyboard")
    cooked = UnboundedQueue("cooked-keys")
    paint_queue = UnboundedQueue("paint-requests")

    pressed: dict[int, int] = {}
    first_request: dict[int, int] = {}  # key id -> first enqueue time
    flush_times: list[int] = []

    def deliver(batch):
        yield from server.submit(batch)
        now = yield GetTime()
        flush_times.append(now)

    slack = SlackProcess(
        "buffer",
        paint_queue,
        deliver,
        strategy=strategy,
        sleep_interval=sleep_interval,
    )

    def notifier():
        # The critical thread: notice the event, defer the real work.
        while True:
            key_id = yield Channelreceive(keyboard)
            yield Compute(usec(30))  # preprocess the event
            yield from cooked.put(key_id)

    def imaging():
        while True:
            key_id = yield from cooked.get()
            yield Compute(glyph_work)  # render the glyph
            for region in range(regions_per_glyph):
                if key_id not in first_request:
                    first_request[key_id] = yield GetTime()
                yield from paint_queue.put(
                    PaintRequest(region=f"region-{region}", payload=key_id)
                )
                # Real painting work separates the requests — the reason
                # a too-short donation window (1 ms quantum) cannot
                # gather a whole burst (Section 6.3).
                yield Compute(inter_request_work)

    kernel.fork_root(notifier, name="Notifier", priority=notifier_priority,
                     role="eternal")
    kernel.fork_root(imaging, name="imaging", priority=imaging_priority,
                     role="eternal")
    kernel.fork_root(slack.proc, name="buffer", priority=buffer_priority,
                     role="eternal")

    for i in range(keystrokes):
        at = (i + 1) * key_interval
        pressed[i] = at
        kernel.post_at(at, lambda k, i=i: keyboard.post(i))

    kernel.run_for((keystrokes + 20) * key_interval)

    result = EchoResult(
        strategy=strategy,
        quantum=quantum,
        keystrokes=keystrokes,
        flushes=server.flushes,
        mean_batch=server.mean_batch_size,
        merge_ratio=slack.merge_ratio,
        switches=kernel.stats.switches,
        server_busy=server.busy_time,
    )
    # A keystroke is echoed by the first flush at or after its first
    # paint request was enqueued (later same-region requests may have
    # merged over the actual pixels, but the glyph reached the screen).
    for key_id, press_time in pressed.items():
        if key_id not in first_request:
            continue
        enqueued = first_request[key_id]
        for flush_time in flush_times:
            if flush_time >= enqueued:
                result.echo_latencies.append(flush_time - press_time)
                break
    kernel.shutdown()
    return result
