"""Case study C6 (Section 5.3): the two questionable WAIT practices.

First: "we saw many instances of WAIT code that did not recheck the
predicate associated with the condition variable. ...  The IF-based
approach will work in Mesa with sufficient constraints on the number and
behavior of the threads using the monitor, but its use cannot be
recommended."  ``run_if_wait_bug`` builds the situation where the
constraint breaks — two consumers, one item, a BROADCAST — and shows the
IF-waiter consuming from an empty queue while the WHILE-waiter is immune.

Second: "there were cases where timeouts had been introduced to
compensate for missing NOTIFYs (bugs), instead of fixing the underlying
problem.  The problem with this is that the system can become timeout
driven — it apparently works correctly but slowly."
``run_missing_notify`` measures exactly that: the buggy producer forgets
to NOTIFY; with a CV timeout the consumer still drains the queue, but at
timeout granularity instead of at production rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel import Kernel, KernelConfig
from repro.kernel.primitives import Broadcast, Compute, Enter, Exit, GetTime, Notify, Pause, Wait
from repro.kernel.simtime import msec, sec, usec
from repro.sync.condition import (
    ConditionVariable,
    await_condition,
    await_condition_if_broken,
)
from repro.sync.monitor import Monitor


@dataclass
class IfWaitResult:
    style: str  # "if" or "while"
    underflows: int  # times a consumer proceeded with nothing to consume
    consumed: int


def run_if_wait_bug(*, style: str, seed: int = 0) -> IfWaitResult:
    """Two consumers, one produced item, BROADCAST wake.

    Both consumers wake; only one finds an item.  The WHILE-style waiter
    re-waits; the IF-style waiter barrels ahead and underflows.
    """
    if style not in ("if", "while"):
        raise ValueError("style must be 'if' or 'while'")
    kernel = Kernel(KernelConfig(seed=seed))
    lock = Monitor("store")
    nonempty = ConditionVariable(lock, "nonempty", timeout=sec(1))
    state = {"items": 0, "underflows": 0, "consumed": 0}

    waiter = await_condition if style == "while" else await_condition_if_broken

    def consumer(tag):
        yield Enter(lock)
        try:
            yield from waiter(nonempty, lambda: state["items"] > 0)
            # An IF-waiter reaches here believing the condition holds.
            if state["items"] > 0:
                state["items"] -= 1
                state["consumed"] += 1
            else:
                state["underflows"] += 1
        finally:
            yield Exit(lock)

    def producer():
        yield Pause(msec(100))  # let both consumers park on the CV
        yield Enter(lock)
        try:
            state["items"] += 1
            yield Broadcast(nonempty)  # wakes *both* waiters
        finally:
            yield Exit(lock)

    kernel.fork_root(consumer, args=("a",), name="consumer-a")
    kernel.fork_root(consumer, args=("b",), name="consumer-b")
    kernel.fork_root(producer, name="producer")
    kernel.run_for(sec(3))
    result = IfWaitResult(
        style=style, underflows=state["underflows"], consumed=state["consumed"]
    )
    kernel.shutdown()
    return result


@dataclass
class MissingNotifyResult:
    notify_present: bool
    items: int
    completion_time: int | None
    throughput_per_sec: float


def run_missing_notify(
    *,
    notify_present: bool,
    items: int = 20,
    cv_timeout: int = msec(100),
    quantum: int = msec(50),
    seed: int = 0,
) -> MissingNotifyResult:
    """A producer/consumer where the producer's NOTIFY is present or
    forgotten; the CV timeout masks the bug at a heavy latency cost."""
    kernel = Kernel(KernelConfig(seed=seed, quantum=quantum))
    lock = Monitor("queue")
    nonempty = ConditionVariable(lock, "nonempty", timeout=cv_timeout)
    state = {"available": 0, "consumed": 0}
    finished: dict[str, int] = {}

    def producer():
        for _ in range(items):
            yield Enter(lock)
            try:
                state["available"] += 1
                if notify_present:
                    yield Notify(nonempty)
                # else: the bug — the waiter is never notified.
            finally:
                yield Exit(lock)
            yield Compute(usec(100))

    def consumer():
        while state["consumed"] < items:
            yield Enter(lock)
            try:
                while state["available"] == 0:
                    yield Wait(nonempty)  # wakes by notify or by timeout
                state["available"] -= 1
                state["consumed"] += 1
            finally:
                yield Exit(lock)
        finished["at"] = yield GetTime()

    kernel.fork_root(consumer, name="consumer")
    kernel.fork_root(producer, name="producer")
    kernel.run_for(sec(60))
    completion = finished.get("at")
    throughput = 0.0
    if completion:
        throughput = state["consumed"] * 1_000_000 / completion
    result = MissingNotifyResult(
        notify_present=notify_present,
        items=state["consumed"],
        completion_time=completion,
        throughput_per_sec=throughput,
    )
    kernel.shutdown()
    return result
