"""The engineering-lesson experiments of paper Sections 5 and 6.

Each module builds one experiment and returns a small result record;
``tests/`` asserts the qualitative shape and ``benchmarks/`` prints the
paper-vs-measured comparison.

| Module          | Paper claim reproduced                                   |
|-----------------|----------------------------------------------------------|
| echo_pipeline   | the keystroke-echo critical path (shared substrate)      |
| ybntm           | §5.2: YieldButNotToMe ≈ 3x perceived improvement         |
| quantum         | §6.3: the scheduler quantum clocks the slack process     |
| spurious        | §6.1: spurious lock conflicts; deferred-NOTIFY fix       |
| inversion       | §6.2: stable priority inversion; SystemDaemon workaround |
| wait_bugs       | §5.3: IF-vs-WHILE WAIT; timeouts masking missing NOTIFYs |
| fork_failure    | §5.4: FORK failure policies                              |
| weakmem         | §5.5: weak ordering breaks publication and init-once     |
| xclients        | §5.6: modified Xlib vs Xl                                |
"""
