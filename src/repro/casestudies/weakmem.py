"""Case study C7 (Section 5.5): weak memory ordering hazards.

Example 1 — pointer publication: "imagine a thread that once a minute
constructs a record of time-date values and stores a pointer to that
record into a global variable.  Under the assumptions of strong ordering
and atomic write of the pointer value, this is safe.  Under weak
ordering, readers of the global variable can follow a pointer to a record
that has not yet had its fields filled in."

Example 2 — init-once: "Birrell offers a performance hint for calling an
initialization routine exactly once.  Under weak ordering, a thread can
both believe that the initializer has already been called and not yet be
able to see the initialized data."

Each experiment runs on a 2-CPU kernel under strong ordering, weak
ordering, and weak ordering with monitor protection (whose implicit
fences restore safety — "The monitor implementation for weak ordering can
use memory barrier instructions").

Both experiments also accept ``model=`` to run on any model behind the
``KernelConfig(memory_model=...)`` seam (see :mod:`repro.memmodel`).
The per-model outcome is itself a finding worth pinning: under ``pso``
(per-variable-FIFO buffers, the §5.5 machine) both hazards occur, while
under ``tso`` *neither* can — x86-TSO's whole-buffer FIFO commits the
record's fields before the pointer and ``data`` before ``done``, so the
paper's two examples are exactly the idioms TSO was designed to rescue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel import Kernel, KernelConfig, SimVar
from repro.kernel.primitives import (
    Compute,
    Enter,
    Exit,
    MemRead,
    MemWrite,
    Pause,
)
from repro.kernel.simtime import msec, sec, usec
from repro.sync.monitor import Monitor


def _make_config(
    memory_order: "str | None",
    model: "str | None",
    *,
    seed: int,
    race_detection: bool,
) -> KernelConfig:
    """Build the 2-CPU experiment config from either selector.

    ``memory_order`` is the historical strong/weak switch (kept so the
    original experiments stay byte-identical); ``model`` selects any
    model on the ``memory_model`` seam.  Exactly one must be given.
    """
    if (memory_order is None) == (model is None):
        raise TypeError("pass exactly one of memory_order= or model=")
    if model is not None:
        return KernelConfig(
            seed=seed,
            ncpus=2,
            memory_model=model,
            store_buffer_delay=usec(20),
            race_detection=race_detection,
        )
    return KernelConfig(
        seed=seed,
        ncpus=2,
        memory_order=memory_order,
        store_buffer_delay=usec(20),
        race_detection=race_detection,
    )


@dataclass
class PublicationResult:
    memory_order: str
    monitored: bool
    reads: int
    torn_reads: int  # pointer seen, fields not yet visible
    #: RaceReports when run with ``race_detection=True`` (else empty).
    race_reports: list = field(default_factory=list)
    #: The resolved ``memory_model`` the run used (sc/tso/pso/weak).
    model: str = ""


def run_publication(
    *,
    memory_order: "str | None" = None,
    model: "str | None" = None,
    monitored: bool = False,
    rounds: int = 50,
    seed: int = 0,
    race_detection: bool = False,
) -> PublicationResult:
    """The time-date record publication loop on two CPUs."""
    config = _make_config(
        memory_order, model, seed=seed, race_detection=race_detection
    )
    kernel = Kernel(config)
    pointer = SimVar("global-record", initial=None)
    lock = Monitor("record-lock") if monitored else None
    torn = [0]
    reads = [0]

    def writer():
        for round_number in range(1, rounds + 1):
            fields = SimVar(f"record-{round_number}", initial=None)
            if lock is not None:
                yield Enter(lock)
            # Fill in the record, then publish the pointer.
            yield MemWrite(fields, ("seconds", round_number))
            yield MemWrite(pointer, fields)
            if lock is not None:
                yield Exit(lock)
            yield Pause(msec(10))

    def reader():
        seen: set[int] = set()
        while len(seen) < rounds:
            if lock is not None:
                yield Enter(lock)
            record = yield MemRead(pointer)
            if record is not None and id(record) not in seen:
                # A fresh record was published: follow the pointer.
                contents = yield MemRead(record)
                seen.add(id(record))
                reads[0] += 1
                if contents is None:
                    torn[0] += 1  # followed the pointer into a hole
            if lock is not None:
                yield Exit(lock)
            yield Compute(usec(7))

    kernel.fork_root(writer, name="writer")
    kernel.fork_root(reader, name="reader")
    kernel.run_for(sec(10))
    result = PublicationResult(
        memory_order=config.memory_order,
        model=config.memory_model,
        monitored=monitored,
        reads=reads[0],
        torn_reads=torn[0],
        race_reports=(
            list(kernel.race_detector.reports) if kernel.race_detector else []
        ),
    )
    kernel.shutdown()
    return result


@dataclass
class InitOnceResult:
    memory_order: str
    fenced: bool
    saw_uninitialised: bool
    #: RaceReports when run with ``race_detection=True`` (else empty).
    race_reports: list = field(default_factory=list)
    #: The resolved ``memory_model`` the run used (sc/tso/pso/weak).
    model: str = ""


def run_init_once(
    *,
    memory_order: "str | None" = None,
    model: "str | None" = None,
    fenced: bool = False,
    seed: int = 0,
    race_detection: bool = False,
) -> InitOnceResult:
    """Birrell's init-once hint on two CPUs.

    Thread A initialises and sets the done flag (publishing both through
    plain stores); thread B spins on the flag and then reads the data.
    Under weak ordering B can see ``done`` before ``data``.  ``fenced``
    adds the explicit barrier that repairs the idiom.
    """
    from repro.kernel.primitives import Fence

    config = _make_config(
        memory_order, model, seed=seed, race_detection=race_detection
    )
    kernel = Kernel(config)
    data = SimVar("init-data", initial=None)
    done = SimVar("init-done", initial=False)
    observed = {"uninitialised": False}

    def initialiser():
        yield Compute(usec(5))
        yield MemWrite(data, "initialised-value")
        if fenced:
            yield Fence()
        yield MemWrite(done, True)
        yield Compute(usec(100))

    def consumer():
        while True:
            flag = yield MemRead(done)
            if flag:
                break
            yield Compute(usec(3))
        value = yield MemRead(data)
        if value is None:
            observed["uninitialised"] = True

    kernel.fork_root(initialiser, name="initialiser")
    kernel.fork_root(consumer, name="consumer")
    kernel.run_for(sec(1))
    result = InitOnceResult(
        memory_order=config.memory_order,
        model=config.memory_model,
        fenced=fenced,
        saw_uninitialised=observed["uninitialised"],
        race_reports=(
            list(kernel.race_detector.reports) if kernel.race_detector else []
        ),
    )
    kernel.shutdown()
    return result
