"""Case study C1 (Section 5.2): the YieldButNotToMe fix.

The broken configuration: the buffer thread outranks the imaging threads
that feed it, so its plain YIELD hands the CPU straight back — "the
scheduler always chooses the buffer thread to run, not the image thread.
Consequently the buffer thread sends the paint request on to the X server
and no merging occurs.  The result is a high rate of thread and process
switching and much more work done by the X server than should be
necessary."

The fix: "a new yield primitive, called YieldButNotToMe ...  Fewer
switches are made to the X server, the buffer thread becomes more
effective at doing merging, there is less time spent in thread and
process switching ...  The result is that the user experiences about a
three-fold performance improvement."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.casestudies.echo_pipeline import EchoResult, run_echo_pipeline


@dataclass
class YbntmComparison:
    plain_yield: EchoResult
    ybntm: EchoResult

    @property
    def flush_reduction(self) -> float:
        """How many fewer trips to the X server the fix makes (>1 good)."""
        if self.ybntm.flushes == 0:
            return 0.0
        return self.plain_yield.flushes / self.ybntm.flushes

    @property
    def switch_reduction(self) -> float:
        if self.ybntm.switches == 0:
            return 0.0
        return self.plain_yield.switches / self.ybntm.switches

    @property
    def server_work_reduction(self) -> float:
        """The paper's "about a three-fold performance improvement" shows
        up as the reduction in per-keystroke server+switching work."""
        if self.ybntm.server_busy == 0:
            return 0.0
        return self.plain_yield.server_busy / self.ybntm.server_busy


def run_comparison(**kwargs) -> YbntmComparison:
    """Run the echo pipeline with plain YIELD and with YieldButNotToMe.

    Both runs use the paper's problem configuration: buffer thread at
    higher priority than the imaging thread.
    """
    return YbntmComparison(
        plain_yield=run_echo_pipeline(strategy="yield", **kwargs),
        ybntm=run_echo_pipeline(strategy="ybntm", **kwargs),
    )
