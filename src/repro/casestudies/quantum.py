"""Case study C2 (Section 6.3): the effect of the time-slice quantum.

"What we did not realize for a long time is that it is the 50 millisecond
quantum that is clocking the sending of the X requests from the buffer
thread. ...  For instance, if the quantum were 1 second, then X events
would be buffered for one second before being sent and the user would
observe very bursty screen painting.  If the quantum were 1 millisecond,
then the YieldButNotToMe would yield only very briefly and we would be
back to the start of our problems again."

And for the sleep alternative: "the smallest sleep interval is the
remainder of the scheduler quantum.  Our 50 millisecond quantum is a
little bit too long for snappy keyboard echoing ...  However, if the
scheduler quantum were 20 milliseconds, using a timeout instead of a
yield in the buffer thread would work fine."

``sweep_quantum`` reruns the echo pipeline across quanta for a given
strategy so the bench can show: latency exploding at 1 s, merging
collapsing at 1 ms (for ybntm), and the sleep strategy becoming viable
at 20 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.casestudies.echo_pipeline import EchoResult, run_echo_pipeline
from repro.kernel.simtime import msec, sec

#: The paper's four discussion points.
PAPER_QUANTA = (msec(1), msec(20), msec(50), sec(1))


@dataclass
class QuantumSweep:
    strategy: str
    results: dict[int, EchoResult] = field(default_factory=dict)

    def latency(self, quantum: int) -> float:
        return self.results[quantum].mean_latency

    def merge_ratio(self, quantum: int) -> float:
        return self.results[quantum].merge_ratio


def sweep_quantum(
    strategy: str,
    quanta: tuple[int, ...] = PAPER_QUANTA,
    **kwargs,
) -> QuantumSweep:
    """Run the echo pipeline at each quantum.

    For the ``sleep`` strategy the buffer thread sleeps "for a timed
    interval, instead of doing a yield"; Pause(0) wakes at the next tick,
    which is exactly "the remainder of the scheduler quantum".
    """
    # Saturated typing/line-drawing: the imaging thread is continuously
    # busy, so the buffer thread only regains the CPU when its donation
    # (or sleep) expires at a tick — "it is the 50 millisecond quantum
    # that is clocking the sending of the X requests".
    kwargs.setdefault("keystrokes", 120)
    kwargs.setdefault("key_interval", msec(8))
    sweep = QuantumSweep(strategy=strategy)
    for quantum in quanta:
        sweep.results[quantum] = run_echo_pipeline(
            strategy=strategy,
            quantum=quantum,
            sleep_interval=0,  # "sleep": wake at the next tick
            **kwargs,
        )
    return sweep
