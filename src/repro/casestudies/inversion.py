"""Case study C4 (Section 6.2): stable priority inversion.

"Birrell describes a stable priority inversion in which a high priority
thread waits on a lock held by a low priority thread that is prevented
from running by a middle-priority cpu hog.  ...  The problem is not
hypothetical: we experienced enough real problems with priority
inversions that we found it necessary to put the following two
workarounds into our systems": metalock cycle donation and the
SystemDaemon's random directed yields.

The experiment builds Birrell's three-thread scenario and runs it four
ways:

* ``bare`` — strict priority: the high thread starves (stable inversion);
* ``daemon`` — with the SystemDaemon: the random donations eventually let
  the low thread exit the monitor (the paper's deployed workaround);
* ``inheritance`` — with the beyond-paper priority-inheritance ablation:
  the owner is boosted and the inversion clears almost immediately;
* ``daemon+inheritance`` — both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel import Kernel, KernelConfig
from repro.kernel.primitives import Compute, Enter, Exit, GetTime, Pause
from repro.kernel.simtime import msec, sec
from repro.runtime.daemon import install_system_daemon
from repro.sync.monitor import Monitor


@dataclass
class InversionResult:
    variant: str
    #: When the high-priority thread finally got the lock (None: starved).
    acquired_at: int | None
    #: How long the high thread was blocked on the mutex.
    blocked_for: int | None
    run_length: int


def run_inversion(
    *,
    daemon: bool = False,
    inheritance: bool = False,
    run_length: int = sec(5),
    daemon_period: int = msec(200),
    hold_time: int = msec(2),
    seed: int = 0,
) -> InversionResult:
    """Run Birrell's scenario once; see module docstring for variants."""
    kernel = Kernel(
        KernelConfig(seed=seed, monitor_priority_inheritance=inheritance)
    )
    lock = Monitor("inverted")
    marks: dict[str, int] = {}

    def low():
        yield Enter(lock)
        try:
            # Sleep briefly so the hog and the high thread reliably start
            # while we hold the lock, then grind under it.
            yield Pause(msec(50))
            yield Compute(hold_time)
        finally:
            yield Exit(lock)

    def hog():
        while True:
            yield Compute(msec(10))

    def high():
        marks["wanted"] = yield GetTime()
        yield Enter(lock)
        try:
            marks["acquired"] = yield GetTime()
        finally:
            yield Exit(lock)

    kernel.fork_root(low, name="low", priority=2)
    kernel.post_at(msec(10), lambda k: k.fork_root(hog, name="hog", priority=4))
    kernel.post_at(msec(20), lambda k: k.fork_root(high, name="high", priority=6))
    if daemon:
        install_system_daemon(kernel, period=daemon_period)
    kernel.run_for(run_length)

    acquired = marks.get("acquired")
    blocked_for = None
    if acquired is not None:
        blocked_for = acquired - marks["wanted"]
    variant = {
        (False, False): "bare",
        (True, False): "daemon",
        (False, True): "inheritance",
        (True, True): "daemon+inheritance",
    }[(daemon, inheritance)]
    kernel.shutdown()
    return InversionResult(
        variant=variant,
        acquired_at=acquired,
        blocked_for=blocked_for,
        run_length=run_length,
    )


def run_all_variants(**kwargs) -> dict[str, InversionResult]:
    return {
        "bare": run_inversion(**kwargs),
        "daemon": run_inversion(daemon=True, **kwargs),
        "inheritance": run_inversion(inheritance=True, **kwargs),
        "daemon+inheritance": run_inversion(
            daemon=True, inheritance=True, **kwargs
        ),
    }
