"""Case study C5 (Section 5.6): modified Xlib vs Xl.

A mixed interactive load — a client thread painting in bursts (a window
repaint is many requests back-to-back) while another client thread sits
in GetEvent with a timeout — run against both library architectures.
The paper's observations, all measured here:

* modified Xlib: reads hold the library mutex, so the painter stalls
  behind a blocked GetEvent until its short read timeout expires
  ("it is not possible for other threads to timeout on their attempt to
  obtain the library mutex" — and everyone else queues behind it);
* modified Xlib: flushing is coupled to reads, so batches fragment on
  the read-retry cadence — "an excessive number of output flushes,
  defeating the throughput gains of batching requests";
* Xl: the reader thread blocks indefinitely on the connection, GetEvent
  timeouts ride the CV timeout mechanism, flushing is decoupled, and the
  slack process delivers each burst as one batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel import Kernel, KernelConfig
from repro.kernel.primitives import Compute, GetTime, Pause
from repro.kernel.simtime import msec, sec
from repro.xwindows.buffer_thread import PaintRequest
from repro.xwindows.server import XServer
from repro.xwindows.xl import XlClient
from repro.xwindows.xlib import ModifiedXlib

#: The default mixed load: 8 repaint bursts of 12 requests each, with
#: ~10 ms of rendering between requests — slower than the modified
#: Xlib's 50 ms read-retry cadence, so flush-on-read lands mid-burst.
BURSTS = 8
BURST_SIZE = 12
BURST_GAP = msec(200)
REQUEST_WORK = msec(10)


@dataclass
class XClientResult:
    library: str
    paints: int
    flushes: int
    mean_batch: float
    events_received: int
    lock_contention_blocks: int
    getevent_timeouts_honoured: int
    #: When the painter finished its last burst (stall indicator).
    painting_done_at: int
    #: Total server transaction time (flush overheads + request work).
    server_busy: int
    requests_shipped: int


def _drive(kernel, server, paint, get_event, lock_blocks, *, events,
           event_period, seed, finish=None):
    """Shared load driver for both libraries."""
    received = [0]
    timeouts_honoured = [0]
    done = {"painting": 0}

    def painter():
        for burst in range(BURSTS):
            for i in range(BURST_SIZE):
                yield Compute(REQUEST_WORK)  # render one region
                yield from paint(PaintRequest(region=f"r{i % 4}"))
            yield Pause(BURST_GAP)
        if finish is not None:
            # "external knowledge of when the painting is finished to
            # trigger a flush of the batched requests" (modified Xlib).
            yield from finish()
        done["painting"] = yield GetTime()

    def event_reader():
        while received[0] < events:
            event = yield from get_event(msec(150))
            if event is None:
                timeouts_honoured[0] += 1
            else:
                received[0] += 1

    kernel.fork_root(painter, name="painter", priority=4)
    kernel.fork_root(event_reader, name="event-reader", priority=4)
    for i in range(events):
        kernel.post_at(
            (i + 1) * event_period, lambda k: server.deliver_event("key-event")
        )
    kernel.run_for(sec(8))
    return received[0], timeouts_honoured[0], done["painting"]


def run_xlib(
    *,
    events: int = 5,
    event_period: int = msec(400),
    seed: int = 0,
) -> XClientResult:
    """The thread-safe-ified Xlib under the mixed load."""
    kernel = Kernel(KernelConfig(seed=seed))
    connection = kernel.channel("x-connection")
    server = XServer(events=connection)
    xlib = ModifiedXlib(server, connection)

    def paint(request):
        yield from xlib.queue_request(request)

    def get_event(timeout):
        event = yield from xlib.get_event(timeout=timeout)
        return event

    received, timeouts, painted = _drive(
        kernel, server, paint, get_event, xlib.lock,
        events=events, event_period=event_period, seed=seed,
        finish=xlib.flush,
    )
    result = XClientResult(
        library="modified-xlib",
        paints=BURSTS * BURST_SIZE,
        flushes=server.flushes,
        mean_batch=server.mean_batch_size,
        events_received=received,
        lock_contention_blocks=xlib.lock.blocks,
        getevent_timeouts_honoured=timeouts,
        painting_done_at=painted,
        server_busy=server.busy_time,
        requests_shipped=server.requests_received,
    )
    kernel.shutdown()
    return result


def run_xl(
    *,
    events: int = 5,
    event_period: int = msec(400),
    seed: int = 0,
) -> XClientResult:
    """Xl (reader thread + slack-process batching) under the same load."""
    kernel = Kernel(KernelConfig(seed=seed))
    connection = kernel.channel("x-connection")
    server = XServer(events=connection)
    client = XlClient(server, connection)
    for proc, name, priority in client.threads():
        kernel.fork_root(proc, name=name, priority=priority, role="eternal")

    def paint(request):
        yield from client.paint(request)

    def get_event(timeout):
        event = yield from client.get_event(timeout)
        return event

    received, timeouts, painted = _drive(
        kernel, server, paint, get_event, client.event_queue.monitor,
        events=events, event_period=event_period, seed=seed,
    )
    result = XClientResult(
        library="xl",
        paints=BURSTS * BURST_SIZE,
        flushes=server.flushes,
        mean_batch=server.mean_batch_size,
        events_received=received,
        lock_contention_blocks=client.event_queue.monitor.blocks,
        getevent_timeouts_honoured=timeouts,
        painting_done_at=painted,
        server_busy=server.busy_time,
        requests_shipped=server.requests_received,
    )
    kernel.shutdown()
    return result


def run_comparison(**kwargs) -> dict[str, XClientResult]:
    return {"xlib": run_xlib(**kwargs), "xl": run_xl(**kwargs)}
