"""Case study (Section 5.4): when a FORK fails.

"Earlier versions of the systems would raise an error when a FORK failed:
the standard programming practice was to catch the error and to try to
recover, but good recovery schemes seem never to have been worked out.
...  Our more recent implementations simply wait in the fork
implementation for more resources to become available, but the behaviors
seen by the user, such as long delays in response or even complete
unresponsiveness, go unexplained."

The experiment saturates a tiny thread table with a burst of requests and
measures what each policy does to the request stream: the ``raise``
policy drops work (errors surface, recovery is ad hoc); the ``wait``
policy completes everything but with long, unexplained latency tails.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel import ForkFailed, Kernel, KernelConfig
from repro.kernel.primitives import Compute, Fork, GetTime
from repro.kernel.simtime import msec, sec, usec


@dataclass
class ForkFailureResult:
    policy: str
    requests: int
    completed: int
    failures: int
    latencies: list[int] = field(default_factory=list)

    @property
    def max_latency(self) -> int:
        return max(self.latencies, default=0)

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)


def run_fork_storm(
    *,
    policy: str,
    requests: int = 30,
    max_threads: int = 8,
    job_duration: int = msec(20),
    seed: int = 0,
) -> ForkFailureResult:
    """Fire a burst of fork-per-request work at a saturated thread table."""
    kernel = Kernel(
        KernelConfig(seed=seed, fork_failure=policy, max_threads=max_threads)
    )
    done: list[int] = []
    failures = [0]

    def job(issued_at: int):
        yield Compute(job_duration)
        now = yield GetTime()
        done.append(now - issued_at)

    def dispatcher():
        for _ in range(requests):
            issued_at = yield GetTime()
            try:
                yield Fork(job, args=(issued_at,), detached=True)
            except ForkFailed:
                failures[0] += 1  # ad hoc "recovery": drop the request
            yield Compute(usec(50))

    kernel.fork_root(dispatcher, name="dispatcher", priority=5)
    kernel.run_for(sec(30))
    result = ForkFailureResult(
        policy=policy,
        requests=requests,
        completed=len(done),
        failures=failures[0],
        latencies=done,
    )
    kernel.shutdown()
    return result


def run_comparison(**kwargs) -> dict[str, ForkFailureResult]:
    return {
        "raise": run_fork_storm(policy="raise", **kwargs),
        "wait": run_fork_storm(policy="wait", **kwargs),
    }
