"""Mesa condition variables.

"Each CV represents a state of the module's data structures (a condition)
and a queue of threads waiting for that condition to become true."
(Section 2.)

Key Mesa properties implemented by the kernel's Wait/Notify handlers:

* WAIT atomically releases the monitor and queues the thread; on wake the
  thread re-competes for the mutex before WAIT returns;
* NOTIFY has *exactly one waiter wakens* semantics (configurable to
  *at least one* for the property tests);
* a WAIT may time out — the timeout interval is associated with the CV,
  and wakeups have scheduler-tick granularity (Sections 2 and 6.3);
* the condition is NOT guaranteed on return: WAIT belongs in a WHILE loop.
  :func:`await_condition` packages the correct idiom;
  :func:`await_condition_if_broken` packages the §5.3 anti-pattern for the
  wait-bug case studies, and nothing else should use it.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.kernel.primitives import Wait

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.thread import SimThread
    from repro.sync.monitor import Monitor

_uid_counter = itertools.count(1)


class ConditionVariable:
    """A Mesa CV bound to the monitor protecting its condition."""

    __slots__ = (
        "uid",
        "name",
        "monitor",
        "default_timeout",
        "waiters",
        "waits",
        "timeouts",
        "notifies",
        "broadcasts",
    )

    def __init__(
        self,
        monitor: "Monitor",
        name: str,
        timeout: int | None = None,
    ) -> None:
        self.uid = next(_uid_counter)
        self.name = name
        self.monitor = monitor
        #: Default timeout for WAITs on this CV; None waits forever.
        #: ("WAIT operations may time out depending on the timeout interval
        #: associated with the CV.")
        self.default_timeout = timeout
        self.waiters: deque["SimThread"] = deque()
        self.waits = 0
        self.timeouts = 0
        self.notifies = 0
        self.broadcasts = 0

    @property
    def timeout_fraction(self) -> float:
        """Fraction of completed waits that ended by timeout (Table 2)."""
        if self.waits == 0:
            return 0.0
        return self.timeouts / self.waits

    def __repr__(self) -> str:
        return f"<CV {self.name!r} waiters={len(self.waiters)}>"


def await_condition(
    cv: ConditionVariable,
    predicate: Callable[[], bool],
    timeout: int | None = None,
):
    """The prototypical correct WAIT: ``WHILE NOT condition DO WAIT``.

    Must be called with ``cv``'s monitor held.  Rechecks ``predicate``
    after every wake, so it is insensitive to exactly-one vs at-least-one
    NOTIFY and to timeouts — the property the paper highlights for
    loop-based waiting.
    """
    while not predicate():
        yield Wait(cv, timeout)


def await_condition_if_broken(
    cv: ConditionVariable,
    predicate: Callable[[], bool],
    timeout: int | None = None,
):
    """The §5.3 anti-pattern: ``IF NOT condition THEN WAIT``.

    Checks once, waits once, and assumes the condition afterwards.  "The
    practice has been a continuing source of bugs" — kept here only so the
    wait-bug case study can demonstrate the failure; never use it.
    """
    if not predicate():
        yield Wait(cv, timeout)


def drain_waiters(cv: ConditionVariable) -> list[Any]:
    """Diagnostic helper: names of threads currently waiting on ``cv``."""
    return [t.name for t in cv.waiters]
