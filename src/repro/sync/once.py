"""Init-once: Birrell's call-the-initialiser-exactly-once hint (§5.5).

Two variants:

* :class:`Once` — the correct, monitor-protected version.  Slower (every
  access takes the lock) but safe under any memory ordering, because
  monitor entry/exit fence.
* :class:`RacyOnce` — Birrell's performance hint: check a done flag with
  a plain read and skip the lock on the fast path.  Correct under strong
  ordering; under weak ordering "a thread can both believe that the
  initializer has already been called and not yet be able to see the
  initialized data."  Kept so the weak-memory case study can demonstrate
  the failure; never use it on a weakly-ordered kernel.

Both variants store their state in :class:`SimVar` cells so the kernel's
memory model (not Python's) governs visibility.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.kernel.memory import SimVar
from repro.kernel.primitives import Enter, Exit, MemRead, MemWrite
from repro.sync.monitor import Monitor


class Once:
    """Monitor-protected exactly-once initialisation (the safe way)."""

    def __init__(self, name: str, initialiser: Callable[[], Any]) -> None:
        self.name = name
        self.monitor = Monitor(f"{name}.lock")
        self._initialiser = initialiser
        self._done = SimVar(f"{name}.done", initial=False)
        self._value = SimVar(f"{name}.value", initial=None)
        self.init_calls = 0

    def get(self):
        """Return the initialised value, initialising on first call
        (generator)."""
        yield Enter(self.monitor)
        try:
            done = yield MemRead(self._done)
            if not done:
                self.init_calls += 1
                yield MemWrite(self._value, self._initialiser())
                yield MemWrite(self._done, True)
            value = yield MemRead(self._value)
            return value
        finally:
            yield Exit(self.monitor)


class RacyOnce:
    """Birrell's hinted fast path — broken under weak ordering.

    The monitor here only *elects* the initialising thread; the value and
    the done flag are published with plain stores outside any fence (the
    whole point of the hint was to keep the fast path lock-free).  Under
    weak ordering the two stores can become visible out of order, so a
    fast-path reader "can both believe that the initializer has already
    been called and not yet be able to see the initialized data."
    """

    def __init__(self, name: str, initialiser: Callable[[], Any]) -> None:
        self.name = name
        self.monitor = Monitor(f"{name}.lock")
        self._initialiser = initialiser
        self._claimed = False  # monitor-protected election flag
        self._done = SimVar(f"{name}.done", initial=False)
        self._value = SimVar(f"{name}.value", initial=None)
        self.init_calls = 0
        #: Fast-path reads that returned an uninitialised value — the
        #: §5.5 hazard, counted so experiments can observe it.
        self.stale_fast_reads = 0

    def get(self):
        """The hinted fast path: unlocked flag check first (generator)."""
        done = yield MemRead(self._done)
        if done:
            value = yield MemRead(self._value)
            if value is None:
                self.stale_fast_reads += 1  # believed done, saw nothing
            return value
        elected = False
        yield Enter(self.monitor)
        try:
            if not self._claimed:
                self._claimed = True
                elected = True
        finally:
            yield Exit(self.monitor)
        if elected:
            # Unfenced publication: value first, flag second — program
            # order, but nothing stops the flag becoming visible first.
            self.init_calls += 1
            yield MemWrite(self._value, self._initialiser())
            yield MemWrite(self._done, True)
        value = yield MemRead(self._value)
        return value
