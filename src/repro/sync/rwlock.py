"""A reader-writer lock built from one monitor and two CVs.

The Mesa construction: state (reader count + writer flag) lives under a
monitor; readers wait on one condition, writers on another.  Writers are
preferred once waiting (a pending writer blocks new readers), the usual
anti-starvation choice for display/layout structures like the ones the
paper's window systems protected.
"""

from __future__ import annotations

from repro.kernel.primitives import Broadcast, Enter, Exit, Notify, Wait
from repro.sync.condition import ConditionVariable
from repro.sync.monitor import Monitor


class ReadWriteLock:
    """Shared/exclusive lock with writer preference."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.monitor = Monitor(f"{name}.lock")
        self.readers_cv = ConditionVariable(self.monitor, f"{name}.readers")
        self.writers_cv = ConditionVariable(self.monitor, f"{name}.writers")
        self.active_readers = 0
        self.active_writer = False
        self.waiting_writers = 0
        #: High-water mark of simultaneous readers (tests/diagnostics).
        self.max_concurrent_readers = 0

    def acquire_read(self):
        """Shared acquisition (generator)."""
        yield Enter(self.monitor)
        try:
            while self.active_writer or self.waiting_writers > 0:
                yield Wait(self.readers_cv)
            self.active_readers += 1
            self.max_concurrent_readers = max(
                self.max_concurrent_readers, self.active_readers
            )
        finally:
            yield Exit(self.monitor)

    def release_read(self):
        yield Enter(self.monitor)
        try:
            if self.active_readers <= 0:
                raise RuntimeError(f"{self.name}: release_read without readers")
            self.active_readers -= 1
            if self.active_readers == 0:
                yield Notify(self.writers_cv)
        finally:
            yield Exit(self.monitor)

    def acquire_write(self):
        """Exclusive acquisition (generator)."""
        yield Enter(self.monitor)
        try:
            self.waiting_writers += 1
            try:
                while self.active_writer or self.active_readers > 0:
                    yield Wait(self.writers_cv)
            finally:
                self.waiting_writers -= 1
            self.active_writer = True
        finally:
            yield Exit(self.monitor)

    def release_write(self):
        yield Enter(self.monitor)
        try:
            if not self.active_writer:
                raise RuntimeError(f"{self.name}: release_write without writer")
            self.active_writer = False
            if self.waiting_writers > 0:
                yield Notify(self.writers_cv)
            else:
                yield Broadcast(self.readers_cv)
        finally:
            yield Exit(self.monitor)

    def read_locked(self, body):
        """Run a sub-generator under the read lock (generator)."""
        yield from self.acquire_read()
        try:
            result = yield from body
        finally:
            yield from self.release_read()
        return result

    def write_locked(self, body):
        """Run a sub-generator under the write lock (generator)."""
        yield from self.acquire_write()
        try:
            result = yield from body
        finally:
            yield from self.release_write()
        return result
