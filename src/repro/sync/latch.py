"""A one-shot completion latch.

The shape behind "call me back when X is finished" coordination between
threads: one or more waiters park on a CV until a completer fires the
latch exactly once.  A tiny but ubiquitous CV idiom in systems like the
paper's — it also doubles as a clean building block for tests that need
a rendezvous point.
"""

from __future__ import annotations

from typing import Any

from repro.kernel.primitives import Broadcast, Enter, Exit, Wait
from repro.sync.condition import ConditionVariable
from repro.sync.monitor import Monitor


class Latch:
    """Fire once; every past and future waiter proceeds."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.monitor = Monitor(f"{name}.lock")
        self.fired_cv = ConditionVariable(self.monitor, f"{name}.fired")
        self.fired = False
        self.value: Any = None

    def fire(self, value: Any = None):
        """Complete the latch (generator).  Firing twice is an error —
        a latch models a one-shot event."""
        yield Enter(self.monitor)
        try:
            if self.fired:
                raise RuntimeError(f"latch {self.name!r} fired twice")
            self.fired = True
            self.value = value
            yield Broadcast(self.fired_cv)
        finally:
            yield Exit(self.monitor)

    def await_fired(self, timeout: int | None = None):
        """Wait until the latch fires (generator).

        Returns the fired value, or raises TimeoutExpired if ``timeout``
        elapses first.  WAIT sits in a loop, per the house rule.
        """
        yield Enter(self.monitor)
        try:
            while not self.fired:
                notified = yield Wait(self.fired_cv, timeout)
                if not notified and not self.fired:
                    raise TimeoutExpired(self.name)
            return self.value
        finally:
            yield Exit(self.monitor)


class TimeoutExpired(Exception):
    """An await_fired timeout elapsed before the latch fired."""

    def __init__(self, latch_name: str) -> None:
        super().__init__(f"timed out waiting for latch {latch_name!r}")
        self.latch_name = latch_name
