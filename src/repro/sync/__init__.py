"""Mesa-style synchronisation objects for the simulated kernel.

Monitors, condition variables, and the CV-based building blocks the two
systems used everywhere: bounded buffers, unbounded queues, latches,
reader-writer locks, and init-once.
"""

from repro.sync.condition import ConditionVariable, await_condition
from repro.sync.latch import Latch, TimeoutExpired
from repro.sync.monitor import Monitor, entered, monitored
from repro.sync.once import Once, RacyOnce
from repro.sync.queues import BoundedBuffer, BoundedQueue, UnboundedQueue
from repro.sync.rwlock import ReadWriteLock

__all__ = [
    "BoundedBuffer",
    "BoundedQueue",
    "ConditionVariable",
    "Latch",
    "Monitor",
    "Once",
    "RacyOnce",
    "ReadWriteLock",
    "TimeoutExpired",
    "UnboundedQueue",
    "await_condition",
    "entered",
    "monitored",
]
