"""CV-based queues: the connective tissue of pumps and pipelines.

"Bounded buffers and external devices are two common sources and sinks
[for pumps].  The former occur in several implementations in our systems
for connecting threads together."  (Section 4.2.)

Both queues follow the canonical Mesa producer-consumer pattern: a monitor
protecting the data, one CV per waited-for condition, WAIT always inside a
WHILE loop.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.kernel.primitives import Broadcast, Enter, Exit, Notify, Wait
from repro.sync.condition import ConditionVariable
from repro.sync.monitor import Monitor


class UnboundedQueue:
    """FIFO with blocking get; put never blocks.

    The shape used by serializers and work queues: producers enqueue and
    NOTIFY, one or more consumer threads drain.
    """

    def __init__(
        self,
        name: str,
        *,
        get_timeout: int | None = None,
        carry: dict | None = None,
    ) -> None:
        self.name = name
        self.monitor = Monitor(f"{name}.lock")
        self.nonempty = ConditionVariable(
            self.monitor, f"{name}.nonempty", timeout=get_timeout
        )
        self.items: deque[Any] = deque()
        self.puts = 0
        self.gets = 0
        #: Optional custody ledger: ``get`` records the popped item here
        #: (keyed by ``item.rid``) *before* releasing the monitor, so a
        #: consumer killed on the Exit trap — item popped, never
        #: returned — leaves an audit trail instead of a silent loss.
        #: The consumer removes the entry once the item is safely held
        #: elsewhere.  None (the default) costs nothing.
        self.carry = carry

    def put(self, item: Any):
        """Enqueue and wake one consumer.  (Generator; use ``yield from``.)"""
        yield Enter(self.monitor)
        try:
            self.items.append(item)
            self.puts += 1
            yield Notify(self.nonempty)
        finally:
            yield Exit(self.monitor)

    def get(self, timeout: int | None = None):
        """Dequeue the oldest item; blocks while empty.

        Returns the item, or ``None`` if ``timeout`` (or the queue's
        default get timeout) elapsed with the queue still empty.
        """
        yield Enter(self.monitor)
        try:
            while not self.items:
                notified = yield Wait(self.nonempty, timeout)
                if not notified and not self.items:
                    return None
            self.gets += 1
            item = self.items.popleft()
            if self.carry is not None:
                self.carry[item.rid] = item
            return item
        finally:
            yield Exit(self.monitor)

    def get_all(self):
        """Drain every queued item without blocking (may return [])."""
        yield Enter(self.monitor)
        try:
            drained = list(self.items)
            self.items.clear()
            self.gets += len(drained)
            return drained
        finally:
            yield Exit(self.monitor)

    def prune(self, predicate: Any):
        """Remove and return every queued item matching ``predicate``
        (generator) — the balancer's wedged-shard drain."""
        yield Enter(self.monitor)
        try:
            kept: deque[Any] = deque()
            removed: list[Any] = []
            for item in self.items:
                (removed if predicate(item) else kept).append(item)
            self.items = kept
            return removed
        finally:
            yield Exit(self.monitor)

    def __len__(self) -> int:
        return len(self.items)


class BoundedQueue:
    """A bounded FIFO with *rejecting* and *timed* puts: an admission queue.

    Where :class:`BoundedBuffer` models a pipeline stage that applies
    backpressure by blocking forever, a server's admission queue must be
    able to say **no**: ``try_put`` rejects immediately when full, and
    ``put(timeout=...)`` gives up after bounded backpressure.  Timed
    ``get`` lets a pool of consumer threads poll without parking forever
    on a NOTIFY that a fault (or a bug) might lose.

    All methods are generators run on the calling thread, following the
    canonical Mesa pattern: one monitor, one CV per waited-for condition,
    WAIT always re-checked in a WHILE loop.
    """

    def __init__(
        self,
        name: str,
        capacity: int,
        *,
        get_timeout: int | None = None,
        carry: dict | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.monitor = Monitor(f"{name}.lock")
        self.nonempty = ConditionVariable(
            self.monitor, f"{name}.nonempty", timeout=get_timeout
        )
        self.nonfull = ConditionVariable(self.monitor, f"{name}.nonfull")
        self.items: deque[Any] = deque()
        self.puts = 0
        self.gets = 0
        #: Optional custody ledger (see :class:`UnboundedQueue`).
        self.carry = carry
        #: Puts refused because the queue stayed full (load shed upstream).
        self.rejects = 0
        #: High-water mark, for SLO diagnostics.
        self.max_depth = 0

    def try_put(self, item: Any):
        """Non-blocking put: True if enqueued, False if full (generator)."""
        yield Enter(self.monitor)
        try:
            if len(self.items) >= self.capacity:
                self.rejects += 1
                return False
            self._append(item)
            yield Notify(self.nonempty)
            return True
        finally:
            yield Exit(self.monitor)

    def put(self, item: Any, timeout: int | None = None):
        """Put with bounded backpressure (generator).

        Blocks while full, up to ``timeout`` µs (None blocks forever, 0
        behaves like :meth:`try_put`).  Returns True if enqueued, False
        if the queue was still full when patience ran out.
        """
        if timeout is not None and timeout <= 0:
            result = yield from self.try_put(item)
            return result
        yield Enter(self.monitor)
        try:
            while len(self.items) >= self.capacity:
                notified = yield Wait(self.nonfull, timeout)
                if not notified and len(self.items) >= self.capacity:
                    self.rejects += 1
                    return False
            self._append(item)
            yield Notify(self.nonempty)
            return True
        finally:
            yield Exit(self.monitor)

    def get(self, timeout: int | None = None):
        """Dequeue the oldest item; None if still empty after ``timeout``
        (or the queue's default get timeout).  (Generator.)"""
        yield Enter(self.monitor)
        try:
            while not self.items:
                notified = yield Wait(self.nonempty, timeout)
                if not notified and not self.items:
                    return None
            item = self.items.popleft()
            self.gets += 1
            if self.carry is not None:
                self.carry[item.rid] = item
            yield Notify(self.nonfull)
            return item
        finally:
            yield Exit(self.monitor)

    def prune(self, predicate: Any):
        """Remove and return every queued item matching ``predicate``
        (generator) — the deadline sleeper's expiry sweep.  Wakes one
        blocked putter per freed slot."""
        yield Enter(self.monitor)
        try:
            kept: deque[Any] = deque()
            removed: list[Any] = []
            for item in self.items:
                (removed if predicate(item) else kept).append(item)
            self.items = kept
            for _ in removed:
                yield Notify(self.nonfull)
            return removed
        finally:
            yield Exit(self.monitor)

    def _append(self, item: Any) -> None:
        self.items.append(item)
        self.puts += 1
        if len(self.items) > self.max_depth:
            self.max_depth = len(self.items)

    def __len__(self) -> int:
        return len(self.items)


class BoundedBuffer:
    """Classic bounded buffer: put blocks when full, get blocks when empty."""

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.monitor = Monitor(f"{name}.lock")
        self.nonempty = ConditionVariable(self.monitor, f"{name}.nonempty")
        self.nonfull = ConditionVariable(self.monitor, f"{name}.nonfull")
        self.items: deque[Any] = deque()
        self.puts = 0
        self.gets = 0
        #: Custody ledger hook (unused here; see :class:`UnboundedQueue`).
        self.carry: dict | None = None
        #: High-water mark, for pipeline diagnostics.
        self.max_depth = 0

    def put(self, item: Any):
        yield Enter(self.monitor)
        try:
            while len(self.items) >= self.capacity:
                yield Wait(self.nonfull)
            self.items.append(item)
            self.puts += 1
            self.max_depth = max(self.max_depth, len(self.items))
            yield Notify(self.nonempty)
        finally:
            yield Exit(self.monitor)

    def get(self):
        yield Enter(self.monitor)
        try:
            while not self.items:
                yield Wait(self.nonempty)
            item = self.items.popleft()
            self.gets += 1
            if self.carry is not None:
                self.carry[item.rid] = item
            yield Notify(self.nonfull)
            return item
        finally:
            yield Exit(self.monitor)

    def close_broadcast(self):
        """Wake everyone (used by shutdown paths in tests)."""
        yield Enter(self.monitor)
        try:
            yield Broadcast(self.nonempty)
            yield Broadcast(self.nonfull)
        finally:
            yield Exit(self.monitor)

    def __len__(self) -> int:
        return len(self.items)
