"""Mesa monitors.

"A monitor is a set of procedures, or module, that share a mutual exclusion
lock, or mutex. ... The Mesa compiler automatically inserts locking code
into monitored procedures."  (Section 2.)

We model both styles the paper mentions:

* module monitors — subclass :class:`MonitoredModule` and decorate its
  generator methods with ``@monitored``; the decorator plays the role of
  the compiler-inserted locking code;
* monitored records — "associating locks with data structures instead of
  with modules ... in order to obtain finer grain locking": just give each
  record its own :class:`Monitor` and wrap accesses in :func:`entered`.

The Monitor object itself is passive data (owner, entry queue, counters);
the kernel's Enter/Exit/Wait trap handlers implement the semantics,
including preemption while holding locks and FIFO handoff on exit.
"""

from __future__ import annotations

import functools
import itertools
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.kernel.primitives import Enter, Exit

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.thread import SimThread

_uid_counter = itertools.count(1)


class Monitor:
    """One mutual-exclusion lock with a FIFO entry queue."""

    __slots__ = (
        "uid",
        "name",
        "owner",
        "entry_queue",
        "enters",
        "blocks",
        "boost_restore",
    )

    def __init__(self, name: str) -> None:
        self.uid = next(_uid_counter)
        self.name = name
        self.owner: "SimThread | None" = None
        #: Threads waiting for the mutex, FIFO ("Other threads wanting to
        #: enter the monitor are enqueued on the mutex").
        self.entry_queue: deque["SimThread"] = deque()
        self.enters = 0
        #: Entries that found the mutex held (contention, Table 2 text).
        self.blocks = 0
        #: Pre-boost priority of the owner, when priority inheritance
        #: (the beyond-paper ablation) has boosted it.
        self.boost_restore: int | None = None

    @property
    def held(self) -> bool:
        return self.owner is not None

    def held_by(self, thread: "SimThread") -> bool:
        return self.owner is thread

    @property
    def contention(self) -> float:
        """Fraction of entries that blocked."""
        if self.enters == 0:
            return 0.0
        return self.blocks / self.enters

    def __repr__(self) -> str:
        owner = self.owner.name if self.owner else None
        return f"<Monitor {self.name!r} owner={owner} queue={len(self.entry_queue)}>"


def entered(monitor: Monitor, body: Generator[Any, Any, Any]):
    """Run a sub-generator while holding ``monitor``.

    Usage inside a thread body::

        result = yield from entered(record.lock, update(record))

    The mutex is released on normal return *and* when an exception unwinds
    through the body — Mesa's compiler-generated epilogue did the same.
    """
    yield Enter(monitor)
    try:
        result = yield from body
    finally:
        yield Exit(monitor)
    return result


def monitored(method: Callable[..., Generator[Any, Any, Any]]):
    """Make a generator method of a :class:`MonitoredModule` monitored.

    Equivalent to the Mesa compiler inserting lock/unlock around an ENTRY
    procedure.  The receiving object must expose a ``monitor`` attribute.
    """

    @functools.wraps(method)
    def wrapper(self, *args: Any, **kwargs: Any):
        yield Enter(self.monitor)
        try:
            result = yield from method(self, *args, **kwargs)
        finally:
            yield Exit(self.monitor)
        return result

    wrapper.__monitored__ = True
    return wrapper


class MonitoredModule:
    """Base class for module-style monitors.

    Subclasses declare generator methods decorated with ``@monitored``;
    each instance gets its own mutex, like each instance of a Mesa
    monitored module::

        class Counter(MonitoredModule):
            def __init__(self):
                super().__init__("Counter")
                self.value = 0

            @monitored
            def increment(self):
                self.value += 1
                return self.value
                yield  # makes this a generator even with no waits
    """

    def __init__(self, name: str) -> None:
        self.monitor = Monitor(name)
