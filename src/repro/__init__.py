"""repro: a reproduction of "Using Threads in Interactive Systems:
A Case Study" (Hauser, Jacobi, Theimer, Welch, Weiser — SOSP 1993).

The package simulates the Mesa/PCR thread world the paper measured:

* :mod:`repro.kernel` — a deterministic discrete-event thread kernel with
  the PCR scheduler (strict priorities, 50 ms quantum, tick-granular
  timeouts, YieldButNotToMe, SystemDaemon donations);
* :mod:`repro.sync` — Mesa monitors, condition variables and the CV-based
  building blocks (bounded buffers, queues, latches, init-once);
* :mod:`repro.paradigms` — the ten thread-usage paradigms of Section 4 as
  reusable components;
* :mod:`repro.workloads` — synthetic Cedar and GVX worlds whose dynamic
  statistics regenerate Tables 1-3;
* :mod:`repro.corpus` / :mod:`repro.analysis` — the static census
  machinery behind Table 4 and the dynamic-analysis metrics;
* :mod:`repro.xwindows` / :mod:`repro.casestudies` — the engineering-
  lesson experiments of Sections 5 and 6.
"""

__version__ = "1.0.0"

from repro.kernel import Kernel, KernelConfig, msec, sec, usec

__all__ = ["Kernel", "KernelConfig", "msec", "sec", "usec", "__version__"]
