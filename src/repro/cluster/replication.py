"""Primary/replica shards and the standby balancer: failover machinery.

The cluster's answer to "a shard wedged with acknowledged work inside"
is the same shape the paper gives every other problem — more threads,
each doing one simple job over kernel primitives:

* each primary shard streams an append-only **op log** to its replica
  over a kernel channel (:class:`ReplicationLink`).  Records are
  ``admit`` / ``dispatch`` / ``complete``, shipped with a fixed delay by
  a posted kernel event (the "network") and drained by an eternal
  **applier** thread on the replica side;
* the replica's applier folds the log into two dicts: ``acked`` (rids
  with a shipped terminal outcome) and ``pending`` (admitted or
  dispatched, terminal record not seen).  On promotion the balancer
  replays its own un-acked retransmit buffer against ``acked`` —
  idempotent by rid, so a completion whose record was in flight at the
  cut is never run twice *and* a dispatched-but-incomplete request is
  never lost;
* the balancer itself is protected by a :class:`BalancerLease` — a
  kernel-timer lease the primary balancer's health sleeper renews every
  probe tick.  A :class:`StandbyBalancer` watches the lease from its own
  sleeper; on expiry it seizes the lease, rebuilds routing state from
  the shards' own counters (the heartbeats every probe already reads),
  and forks a replacement thread population.

Everything here is deterministic: ship delays are fixed, appliers are
ordinary threads under the simulated scheduler, and a run with
``replicas=False`` constructs none of it — the pre-existing golden
schedules stay byte-identical.
"""

from __future__ import annotations

from typing import Any

from repro.kernel.primitives import Channelreceive, Compute, Fork, GetTime
from repro.kernel.simtime import usec
from repro.server.model import PENDING, Request

#: One-way op-log latency (posted kernel event) and the CPU charged on
#: each side per record — small next to request service costs.
SHIP_DELAY = usec(200)
SHIP_COST = usec(5)
APPLY_COST = usec(5)

#: Applier threads sit with the other sleepers, below the front door.
PRIO_APPLIER = 5

#: Balancer lease: TTL in probe periods.  The primary renews every
#: health tick (one probe period = 2 quanta), so the standby needs
#: several consecutive missed renewals — not one slow tick — to fire.
LEASE_TTL_POLLS = 6


class OpRecord:
    """One op-log entry: what happened to which request."""

    __slots__ = ("kind", "rid", "status", "req")

    def __init__(self, kind: str, req: Request) -> None:
        self.kind = kind
        self.rid = req.rid
        self.status = req.status
        self.req = req

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OpRecord {self.kind} {self.rid} {self.status}>"


class ReplicationLink:
    """Ships a primary shard's op log to its replica over a channel."""

    def __init__(
        self, world: Any, primary: Any, replica: Any, sid: int
    ) -> None:
        self.world = world
        self.kernel = world.kernel
        self.primary = primary
        self.replica = replica
        self.sid = sid
        self.channel = world.add_device(f"{primary.name}.oplog")
        #: Primary-side log, append-only (ground truth for audits).
        self.log: list[OpRecord] = []
        self.shipped = 0
        self.applied = 0
        #: Replica-side replay state: rid -> terminal status once a
        #: ``complete`` record landed; rid -> request while only
        #: admit/dispatch records have.
        self.acked: dict[str, str] = {}
        self.pending: dict[str, Request] = {}
        #: Set by the balancer when it promotes the replica; a promoted
        #: link never promotes again (the old primary is retired).
        self.promoted = False

    def install(self) -> None:
        """Hook the primary's op-log feed and fork the applier."""
        self.primary.on_oplog = self._ship
        self.world.add_eternal(
            self._apply_proc,
            name=f"{self.primary.name}.oplog.apply",
            priority=PRIO_APPLIER,
        )

    def _ship(self, kind: str, req: Request):
        """Primary-side hook: append, post the record onto the wire."""
        rec = OpRecord(kind, req)
        self.log.append(rec)
        self.shipped += 1
        chan = self.channel
        self.kernel.post_at(
            self.kernel.now + SHIP_DELAY, lambda k, rec=rec: chan.post(rec)
        )
        yield Compute(SHIP_COST)

    def _apply_proc(self):
        """Replica-side applier: drain the wire, fold into acked/pending."""
        while True:
            rec = yield Channelreceive(self.channel)
            yield Compute(APPLY_COST)
            self.applied += 1
            if rec.kind == "complete":
                self.acked[rec.rid] = rec.status
                self.pending.pop(rec.rid, None)
            elif rec.rid not in self.acked:
                self.pending[rec.rid] = rec.req

    def is_acked(self, rid: str) -> bool:
        """Did the replica see a terminal record for this rid?"""
        return rid in self.acked


class BalancerLease:
    """A kernel-timer lease on the balancer role.

    Plain state — no thread of its own.  The primary balancer's health
    sleeper calls :meth:`renew` every probe tick; the standby's watch
    sleeper polls :meth:`expired` and calls :meth:`seize` exactly once.
    """

    def __init__(self, ttl: int, holder: str = "lb") -> None:
        if ttl <= 0:
            raise ValueError("lease ttl must be > 0")
        self.ttl = ttl
        self.holder = holder
        self.expires_at = ttl
        self.renewals = 0
        self.takeovers = 0

    def renew(self, now: int) -> None:
        self.expires_at = now + self.ttl
        self.renewals += 1

    def expired(self, now: int) -> bool:
        return now >= self.expires_at

    def seize(self, holder: str, now: int) -> None:
        self.holder = holder
        self.takeovers += 1
        self.expires_at = now + self.ttl

    def to_dict(self) -> dict:
        return {
            "holder": self.holder,
            "ttl": self.ttl,
            "renewals": self.renewals,
            "takeovers": self.takeovers,
        }


class StandbyBalancer:
    """Watches the balancer lease; takes over when it lapses.

    Takeover forks a *replacement* thread population over the same
    balancer object — queues, credit window, and counters survive (they
    are shard-side or shared state); only the routing caches that the
    dead threads owned (`_last_done`, strikes, clean windows) are
    rebuilt from the shards' own progress counters.
    """

    def __init__(
        self, world: Any, balancer: Any, lease: BalancerLease,
        name: str = "lb.standby",
    ) -> None:
        from repro.paradigms.sleeper import Sleeper

        self.world = world
        self.balancer = balancer
        self.lease = lease
        self.name = name
        self.active = False
        self.took_over_at: int | None = None
        #: Cluster-wide terminal outcomes at the instant of takeover —
        #: lets a post-check prove the cluster made progress *after*.
        self.completed_at_takeover = 0
        self.watch = Sleeper(
            f"{name}.watch", 2 * balancer.poll, self._watch,
            work_cost=usec(20),
        )
        self.thread: Any = None

    def start(self) -> None:
        self.thread = self.world.add_eternal(
            self.watch.proc, name=self.watch.name, priority=PRIO_APPLIER
        )

    def _watch(self):
        """One watch tick: seize the lease if the primary let it lapse."""
        if self.active:
            return
        now = yield GetTime()
        if not self.lease.expired(now):
            return
        b = self.balancer
        self.active = True
        self.took_over_at = now
        self.lease.seize(self.name, now)
        nshards = len(b.shards)
        self.completed_at_takeover = sum(
            b.shard_done(sid) for sid in range(nshards)
        )
        # Rebuild routing state from shard heartbeats: the progress
        # counters the dead health thread tracked are re-seeded from the
        # shards' own stats; health verdicts re-derive over the next
        # probe ticks.
        for sid in range(nshards):
            b._last_done[sid] = b.shard_done(sid)
            b._strikes[sid] = 0
            b._clean[sid] = 0
        # Requests a dead pipeline thread was carrying between queues
        # rejoin at the front — fresh deadline, no retry-budget charge
        # (the partition was the cluster's fault).  The lease lapsing
        # fences the old threads: only a dead (or terminally stalled)
        # pipeline lets the TTL run out, so re-injection cannot race a
        # live put of the same request.
        for ledger in b.carry_ledgers.values():
            for rid, req in list(ledger.items()):
                if req.status == PENDING:
                    ledger.pop(rid, None)
                    req.renew(now)
                    yield from b.ingress.put(req)
        yield Fork(
            b.listener.proc,
            name=f"{self.name}.listener", priority=6, detached=True,
        )
        yield Fork(
            b._admit_proc,
            name=f"{self.name}.admit", priority=6, detached=True,
        )
        yield Fork(
            b._dispatch_proc,
            name=f"{self.name}.dispatch", priority=6, detached=True,
        )
        yield Fork(
            b.health.proc,
            name=f"{self.name}.health", priority=5, detached=True,
        )

    def to_dict(self) -> dict:
        return {"active": self.active, "took_over_at": self.took_over_at}


# -- fault helpers ----------------------------------------------------------


def install_primary_kill(world: Any, balancer: Any, sid: int, at: int) -> None:
    """Post a kernel event that kills every thread of shard ``sid``'s
    *current* primary at time ``at`` (resolved at fire time, so a prior
    promotion redirects the blast to whoever holds the slot then)."""

    def strike(kernel):
        for thread in balancer.shards[sid].threads:
            if thread.alive:
                kernel._inject_kill(thread, note=False)

    world.kernel.post_at(at, strike)


def install_balancer_kill(world: Any, balancer: Any, at: int) -> None:
    """Post a kernel event that kills the balancer's own threads at
    ``at`` — the partition the standby's lease watch is for."""

    def strike(kernel):
        for thread in balancer.threads:
            if thread.alive:
                kernel._inject_kill(thread, note=False)

    world.kernel.post_at(at, strike)


# -- custody audit ----------------------------------------------------------


def _queue_items(queue: Any) -> list:
    """Best-effort view of the requests a queue object is holding."""
    items = getattr(queue, "items", None)
    if items is not None:
        return list(items)
    # WfqQueue: per-tenant deques of (finish_tag, seq, item) triples.
    queues = getattr(queue, "queues", None)
    if queues is not None:
        return [item for dq in queues.values() for (_, _, item) in dq]
    return []


def live_requests(balancer: Any) -> dict[str, Request]:
    """Every request some cluster component still has custody of.

    Scans the balancer's queues and one-shot limbo, every shard's queues
    and ``executing`` dict (workers, serializers, batcher, retry
    one-shots), the retired primaries, and the un-promoted replicas.
    Bookkeeping mirrors (the balancer's retransmit buffer, the replica's
    replay state) are deliberately *excluded* — they are claims about
    custody, not custody, and counting them would mask real loss.
    """
    held: dict[str, Request] = {}

    def note(obj: Any) -> None:
        if isinstance(obj, Request):
            held.setdefault(obj.rid, obj)

    def scan_queue(queue: Any) -> None:
        for item in _queue_items(queue):
            note(item)

    scan_queue(balancer.net)
    scan_queue(balancer.ingress)
    scan_queue(balancer.admission)
    for req in balancer.limbo.values():
        note(req)
    for ledger in balancer.carry_ledgers.values():
        for req in ledger.values():
            note(req)
    servers = list(balancer.shards) + list(balancer.retired)
    for link in balancer.links or ():
        if not link.promoted:
            servers.append(link.replica)
    for server in servers:
        scan_queue(server.net)
        scan_queue(server.ingress)
        scan_queue(server.admission)
        for queue in server.serial_queues.values():
            scan_queue(queue)
        scan_queue(server.batch_queue)
        for req in server.executing.values():
            note(req)
        for req in server._superseded:
            note(req)
    return held


def lost_requests(balancer: Any, minted: list) -> list:
    """Minted requests that are still PENDING yet held by nobody —
    the "silently vanished" class the evacuation bug produced."""
    held = live_requests(balancer)
    return [
        req
        for req in minted
        if req.status == PENDING and req.rid not in held
    ]
