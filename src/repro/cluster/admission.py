"""Per-tenant admission control: weighted fair queueing and token buckets.

PR 4's admission queue was a single shared drop-tail FIFO — correct for
bounding *total* queue depth, but blind to who filled it: one tenant
offering 10x its share occupies almost every slot, and every other
tenant pays in sheds and queue-wait.  ``BENCH_server.json`` measured the
symptom (fair-share scheduling lifted overload throughput ~45% over
strict precisely because strict let the flood starve the pool).

:class:`WfqQueue` replaces the shared FIFO with one bounded sub-queue
per tenant plus virtual-finish-time weighted fair queueing across them:

* **Isolation** — a tenant's backlog can only fill its *own* sub-queue.
  The flood sheds against its own capacity; other tenants' ``try_put``
  still succeeds.
* **Weighted service** — each enqueued request gets a finish tag
  ``F = max(V, F_last[tenant]) + SCALE // weight`` where ``V`` is the
  virtual time (the tag of the last dequeued request).  ``get`` always
  returns the smallest tag, so backlogged tenants are served in
  proportion to their weights, and an idle tenant's first request lands
  near the current virtual time instead of deep in the past (no credit
  hoarding).
* **No starvation** — every weight is >= 1, so every enqueued request's
  tag is finite and strictly ordered; a backlogged tenant of weight 1
  competing with weight ``w`` receives ~``1/w`` of the service rate,
  never zero.

Everything is integer arithmetic on a monitor-protected structure using
the same Mesa pattern as :class:`~repro.sync.queues.BoundedQueue`, and
the class speaks the same protocol (``try_put``/``put``/``get``/
``prune``/``len``/``rejects``/``max_depth``), so it drops into
:class:`~repro.server.server.RpcServer` routing and the cluster balancer
interchangeably with drop-tail.

:class:`TokenBucket` is the classic leaky-meter companion: a deterministic
integer bucket refilled lazily from simulated time, used by the balancer
to hard-cap a tenant's admitted rate regardless of queue state.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.kernel.primitives import Enter, Exit, Notify, Wait
from repro.sync.condition import ConditionVariable
from repro.sync.monitor import Monitor

#: Virtual-time units charged per request at weight 1.  Tags are
#: ``SCALE // weight``, so any weight up to SCALE gets a distinct rate.
SCALE = 1 << 20


class TokenBucket:
    """A deterministic token bucket over simulated microseconds.

    ``rate_per_sec`` tokens accrue per simulated second up to ``burst``.
    Refill is computed lazily from elapsed time with an integer
    remainder carry, so the bucket is exact: after ``T`` seconds exactly
    ``floor(rate * T)`` tokens have been issued (plus the initial burst),
    independent of how often :meth:`take` was called.
    """

    __slots__ = ("rate_num", "burst", "tokens", "carry", "last", "taken",
                 "throttled")

    #: Denominator of the per-microsecond refill fraction.
    RATE_DEN = 1_000_000

    def __init__(self, rate_per_sec: float, burst: int) -> None:
        if rate_per_sec <= 0:
            raise ValueError("rate_per_sec must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        #: Tokens per second, as an integer numerator over RATE_DEN µs.
        self.rate_num = round(rate_per_sec)
        self.burst = burst
        self.tokens = burst
        self.carry = 0
        self.last = 0
        self.taken = 0
        self.throttled = 0

    def _refill(self, now: int) -> None:
        if now <= self.last:
            return
        elapsed = now - self.last
        self.last = now
        total = elapsed * self.rate_num + self.carry
        fresh, self.carry = divmod(total, self.RATE_DEN)
        if fresh:
            self.tokens = min(self.burst, self.tokens + fresh)

    def take(self, now: int, amount: int = 1) -> bool:
        """Spend ``amount`` tokens; False (and no spend) if short."""
        self._refill(now)
        if self.tokens < amount:
            self.throttled += 1
            return False
        self.tokens -= amount
        self.taken += amount
        return True

    def __repr__(self) -> str:
        return (f"<TokenBucket {self.tokens}/{self.burst} "
                f"rate={self.rate_num}/s>")


class WfqQueue:
    """Weighted-fair multi-queue with per-tenant bounds (see module doc).

    ``capacity`` bounds each tenant's *own* sub-queue; the aggregate
    bound is ``capacity * len(weights)``.  Items must carry a ``tenant``
    attribute whose ``name`` keys into ``weights`` (unknown tenants get
    weight 1 and a sub-queue on first use).
    """

    def __init__(
        self,
        name: str,
        capacity: int,
        weights: dict[str, int],
        *,
        get_timeout: int | None = None,
        carry: dict | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        for tenant, weight in weights.items():
            if weight < 1:
                raise ValueError(f"tenant {tenant!r} weight must be >= 1")
        self.name = name
        #: Per-tenant sub-queue capacity (the isolation bound).
        self.capacity = capacity
        self.weights = dict(weights)
        self.monitor = Monitor(f"{name}.lock")
        self.nonempty = ConditionVariable(
            self.monitor, f"{name}.nonempty", timeout=get_timeout
        )
        self.nonfull = ConditionVariable(self.monitor, f"{name}.nonfull")
        #: tenant -> deque of (finish_tag, seq, item).
        self.queues: dict[str, deque[tuple[int, int, Any]]] = {
            tenant: deque() for tenant in weights
        }
        #: Virtual time: finish tag of the last dequeued item.
        self.vtime = 0
        #: tenant -> finish tag of its last enqueued item.
        self.last_finish: dict[str, int] = dict.fromkeys(weights, 0)
        self._seq = 0
        self._size = 0
        self.puts = 0
        self.gets = 0
        #: Optional custody ledger (see
        #: :class:`repro.sync.queues.UnboundedQueue`).
        self.carry = carry
        #: Puts refused because the tenant's sub-queue stayed full.
        self.rejects = 0
        #: Aggregate high-water mark, for SLO diagnostics.
        self.max_depth = 0
        #: tenant -> items served, for share assertions.
        self.served: dict[str, int] = dict.fromkeys(weights, 0)

    # -- internals (call with the monitor held) -----------------------------

    def _tenant_of(self, item: Any) -> str:
        tenant = item.tenant.name
        if tenant not in self.queues:
            self.queues[tenant] = deque()
            self.weights[tenant] = 1
            self.last_finish[tenant] = 0
            self.served[tenant] = 0
        return tenant

    def _enqueue(self, tenant: str, item: Any) -> None:
        start = max(self.vtime, self.last_finish[tenant])
        finish = start + SCALE // self.weights[tenant]
        self.last_finish[tenant] = finish
        self._seq += 1
        self.queues[tenant].append((finish, self._seq, item))
        self._size += 1
        self.puts += 1
        if self._size > self.max_depth:
            self.max_depth = self._size

    def _dequeue(self) -> Any:
        best: str | None = None
        best_key: tuple[int, int] | None = None
        for tenant, queue in self.queues.items():
            if not queue:
                continue
            key = (queue[0][0], queue[0][1])
            if best_key is None or key < best_key:
                best, best_key = tenant, key
        assert best is not None and best_key is not None
        finish, _seq, item = self.queues[best].popleft()
        self.vtime = max(self.vtime, finish)
        self._size -= 1
        self.gets += 1
        self.served[best] += 1
        return item

    # -- the BoundedQueue protocol ------------------------------------------

    def try_put(self, item: Any):
        """Non-blocking put: True if enqueued, False if the tenant's
        sub-queue is full (generator)."""
        yield Enter(self.monitor)
        try:
            tenant = self._tenant_of(item)
            if len(self.queues[tenant]) >= self.capacity:
                self.rejects += 1
                return False
            self._enqueue(tenant, item)
            yield Notify(self.nonempty)
            return True
        finally:
            yield Exit(self.monitor)

    def put(self, item: Any, timeout: int | None = None):
        """Put with bounded per-tenant backpressure (generator).

        Blocks while the tenant's own sub-queue is full, up to
        ``timeout`` µs (None blocks forever, <= 0 behaves like
        :meth:`try_put`).  Returns True if enqueued.
        """
        if timeout is not None and timeout <= 0:
            result = yield from self.try_put(item)
            return result
        yield Enter(self.monitor)
        try:
            tenant = self._tenant_of(item)
            while len(self.queues[tenant]) >= self.capacity:
                notified = yield Wait(self.nonfull, timeout)
                if not notified and len(self.queues[tenant]) >= self.capacity:
                    self.rejects += 1
                    return False
            self._enqueue(tenant, item)
            yield Notify(self.nonempty)
            return True
        finally:
            yield Exit(self.monitor)

    def get(self, timeout: int | None = None):
        """Dequeue the weighted-fair next item; None on timeout
        (generator)."""
        yield Enter(self.monitor)
        try:
            while self._size == 0:
                notified = yield Wait(self.nonempty, timeout)
                if not notified and self._size == 0:
                    return None
            item = self._dequeue()
            if self.carry is not None:
                self.carry[item.rid] = item
            # Putters wait on their own sub-queue's occupancy; broadcast
            # keeps the Mesa WHILE loops honest without per-tenant CVs.
            yield Notify(self.nonfull)
            return item
        finally:
            yield Exit(self.monitor)

    def prune(self, predicate: Any):
        """Remove and return every queued item matching ``predicate``
        (generator) — deadline sweeps and wedged-shard drains."""
        yield Enter(self.monitor)
        try:
            removed: list[Any] = []
            for tenant, queue in self.queues.items():
                kept: deque[tuple[int, int, Any]] = deque()
                for entry in queue:
                    if predicate(entry[2]):
                        removed.append(entry[2])
                    else:
                        kept.append(entry)
                self.queues[tenant] = kept
            self._size -= len(removed)
            for _ in removed:
                yield Notify(self.nonfull)
            return removed
        finally:
            yield Exit(self.monitor)

    def depth_of(self, tenant: str) -> int:
        queue = self.queues.get(tenant)
        return len(queue) if queue is not None else 0

    def __len__(self) -> int:
        return self._size
