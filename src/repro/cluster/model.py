"""Cluster scenario mixes: the pinned multi-shard tenant populations.

Rates are *cluster-wide* and fixed regardless of shard count, so sweeps
over ``shards`` hold offered load constant and measure capacity.  Both
mixes are sized against the default two-shard, two-processor cluster:

``steady``
    Aggregate offered load ~1.2 processors — more than one simulated
    machine can serve (the single-server world saturates and sheds) but
    comfortably inside two.  This is the scaling witness: the same mix
    run through ``repro serve`` versus ``repro cluster --shards 2``
    shows the throughput a shard boundary buys.

``skewed``
    One open-loop tenant ("bulk") alone offers ~3 processors of work —
    twice the whole cluster — while four well-behaved tenants offer a
    trickle.  Under drop-tail admission bulk owns the shared queue and
    everyone sheds; per-tenant WFQ bounds bulk to its weighted share
    and the well-behaved tails recover.  The "metered" tenant also
    carries a token-bucket rate limit, exercising the hard-cap path in
    both admission modes.
"""

from __future__ import annotations

from repro.kernel.simtime import msec, usec
from repro.server.model import TenantSpec

CLUSTER_SCENARIOS = ("steady", "skewed", "failover")


def cluster_tenants(scenario: str) -> tuple[TenantSpec, ...]:
    """The pinned cluster tenant mixes (see module docstring)."""
    base = (
        TenantSpec(
            name="ordered",
            mode="open",
            rate_per_sec=120.0,
            cost=usec(500),
            deadline=msec(400),
            ordered=True,
            weight=1,
        ),
        TenantSpec(
            name="interactive",
            mode="closed",
            clients=6,
            think_time=msec(100),
            cost=usec(400),
            deadline=msec(300),
            priority=5,
            weight=2,
        ),
    )
    if scenario == "steady":
        return (
            TenantSpec(
                name="api",
                mode="open",
                rate_per_sec=1800.0,
                cost=usec(600),
                deadline=msec(400),
                weight=2,
            ),
            TenantSpec(
                name="writes",
                mode="open",
                rate_per_sec=150.0,
                cost=usec(250),
                deadline=msec(600),
                writes=True,
                write_keys=6,
                max_retries=1,
                weight=1,
            ),
            *base,
        )
    if scenario == "skewed":
        return (
            TenantSpec(
                name="bulk",
                mode="open",
                rate_per_sec=5000.0,
                cost=usec(600),
                deadline=msec(400),
                weight=1,
            ),
            TenantSpec(
                name="api",
                mode="open",
                rate_per_sec=400.0,
                cost=usec(600),
                deadline=msec(400),
                weight=2,
            ),
            TenantSpec(
                name="metered",
                mode="open",
                rate_per_sec=600.0,
                cost=usec(300),
                deadline=msec(400),
                rate_limit_per_sec=200.0,
                burst=32,
                weight=1,
            ),
            *base,
        )
    if scenario == "failover":
        # A lighter steady mix, sized so the cluster rides through a
        # shard loss: the surviving machines (replica included) can
        # absorb the whole offered load while a promotion is in flight.
        return (
            TenantSpec(
                name="api",
                mode="open",
                rate_per_sec=1200.0,
                cost=usec(600),
                deadline=msec(400),
                weight=2,
            ),
            TenantSpec(
                name="writes",
                mode="open",
                rate_per_sec=150.0,
                cost=usec(250),
                deadline=msec(600),
                writes=True,
                write_keys=6,
                max_retries=1,
                weight=1,
            ),
            *base,
        )
    raise ValueError(f"unknown cluster scenario {scenario!r}")
