"""The cache tier: a cache process in front of the cluster front door.

:class:`CacheTier` speaks the same frontend protocol as
:class:`~repro.server.server.RpcServer` and the cluster
:class:`~repro.cluster.balancer.LoadBalancer` (``net``/``ingress``,
``make_request``, ``stats``, ``poll``, ``world``/``kernel``, ``name``),
so every traffic generator — the closed-loop client threads, the
open-loop Poisson events, the workload compiler's aggregate pumps —
drives it unchanged.  Internally it is the paper's paradigms once more:
a listener pump drains the device channel, a small worker pool probes
the entry map, a fill pump completes parked waiters, an invalidation
pump drains a device channel of invalidation messages, and a TTL
sleeper sweeps stale entries.

**Hit/miss service-time split.**  A hit pays ``HIT_COST`` and completes
at the cache; a miss mints a *separate* backend fetch request (its own
rid, the tenant's full cost envelope) and parks the original.  Custody
stays clean: originals terminate at the cache, fetches terminate at the
backend, and the two layers' statistics never double count.

**Single flight.**  With the guard on, at most one fetch per key is in
flight; concurrent misses on that key park on the same fetch and all
complete from its fill ("request coalescing").  With it *off*, every
miss fetches — under a hot-key TTL expiry or a mass invalidation the
duplicate fetches saturate the backend, fills slow down, the miss
window widens, and the feedback loop is a reproducible, explorable
cache stampede (the metastable failure the chaos scenario pins).

Waiters are completed whenever the fill lands, even past their
deadline: the cache does not silently drop slow waiters, so the p99 a
stampede causes appears in the recorded histogram instead of vanishing
into coordinated omission.
"""

from __future__ import annotations

from typing import Any

from repro.kernel.primitives import Channelreceive, Compute, GetTime, Pause
from repro.kernel.rng import DeterministicRng
from repro.kernel.simtime import usec
from repro.server.model import (
    DONE,
    FAILED,
    Request,
    RequestFactory,
    ServerStats,
    TenantSpec,
)
from repro.sync.queues import UnboundedQueue

#: Map probe paid by every request through the cache.
LOOKUP_COST = usec(20)
#: Serving a hit from memory (the fast path the tier exists for).
HIT_COST = usec(40)
#: Installing a fill and fanning out to waiters (base; waiter completion
#: accounting itself is costed per waiter).
FILL_COST = usec(30)
#: Accounting cost per completed waiter.
WAITER_COST = usec(10)
#: Processing one invalidation message.
INVALIDATE_COST = usec(10)

#: Wildcard invalidation message: drop every entry.
INVALIDATE_ALL = "*"

PRIO_LISTENER = 6
PRIO_WORKER = 4
PRIO_PUMP = 5


class CacheTier:
    """A read cache fronting any backend that speaks the frontend
    protocol (a single :class:`RpcServer` or a cluster balancer)."""

    def __init__(
        self,
        world: Any,
        backend: Any,
        tenants: tuple[TenantSpec, ...],
        *,
        name: str = "cache",
        workers: int = 2,
        single_flight: bool = True,
        capacity: "int | None" = None,
    ) -> None:
        self.world = world
        self.kernel = world.kernel
        self.backend = backend
        self.name = name
        self.workers = workers
        self.single_flight = single_flight
        self.tenants = {tenant.name: tenant for tenant in tenants}
        self.stats = ServerStats()
        self.poll = self.kernel.config.quantum
        seed = self.kernel.config.seed
        self.factory = RequestFactory(seed, name)
        self.key_rng = DeterministicRng(seed).fork(f"{name}:keys")
        self.net = world.add_device(f"{name}.net")
        #: Channel-driven invalidation: external events post keys (or
        #: :data:`INVALIDATE_ALL`) here; the invalidation pump applies
        #: them — writes elsewhere in the system stay decoupled from
        #: the cache's thread world, like every other device.
        self.invalidations = world.add_device(f"{name}.invalidate")
        self.ingress = UnboundedQueue(
            f"{name}.ingress", get_timeout=self.poll
        )
        #: Backend fetch verdicts land here ((verdict, fetch) pairs).
        self.fill_q = UnboundedQueue(f"{name}.fill", get_timeout=self.poll)
        #: key -> absolute expiry time of the cached entry, in LRU order
        #: (oldest first): hits reinsert, fills append, and a fill into a
        #: full cache evicts the front.  ``capacity=None`` means
        #: unbounded (TTL and invalidation are then the only eviction).
        self.capacity = capacity
        self.entries: dict[str, int] = {}
        #: key -> in-flight fetch rid (single-flight guard state).
        self.inflight: dict[str, str] = {}
        #: fetch rid -> original requests parked on that fetch.
        self.waiters: dict[str, list[Request]] = {}
        #: key -> live fetch count; its high-water mark is the
        #: single-flight invariant witness (== 1 with the guard on).
        self.inflight_by_key: dict[str, int] = {}
        self.max_inflight_per_key = 0
        #: Fetches minted while no fetch for that key was in flight —
        #: the number of distinct miss windows.  One fetch per window is
        #: the coalescing ideal; ``fetches / fetch_windows`` is the
        #: backend amplification factor.
        self.fetch_windows = 0
        # Cache-specific counters (the frontend ServerStats carries the
        # per-tenant request outcomes; these count cache mechanics).
        self.hits = 0
        self.misses = 0
        self.coalesced_waits = 0
        self.fetches = 0
        self.fills = 0
        self.failed_fills = 0
        #: Fills that landed after their own TTL had already passed
        #: (dead on arrival — served to waiters but not cached).
        self.stale_fills = 0
        self.expired_entries = 0
        self.invalidated = 0
        self.passthrough = 0
        #: Entries pushed out by a fill landing in a full cache.
        self.evictions = 0

    # -- construction -------------------------------------------------------

    def start(self) -> None:
        self.world.add_eternal(
            self._listener_proc, (), name=f"{self.name}.listener",
            priority=PRIO_LISTENER,
        )
        for wid in range(self.workers):
            self.world.add_eternal(
                self._worker_proc, (wid,), name=f"{self.name}.worker.{wid}",
                priority=PRIO_WORKER,
            )
        self.world.add_eternal(
            self._fill_proc, (), name=f"{self.name}.fill",
            priority=PRIO_PUMP,
        )
        self.world.add_eternal(
            self._invalidation_proc, (), name=f"{self.name}.invalidation",
            priority=PRIO_PUMP,
        )
        self.world.add_eternal(
            self._ttl_sweep_proc, (), name=f"{self.name}.ttl",
            priority=PRIO_PUMP,
        )

    # -- the frontend protocol ----------------------------------------------

    def make_request(
        self,
        tenant: TenantSpec,
        now: int,
        *,
        reply_to: object = None,
        intended: int | None = None,
    ) -> Request:
        """Mint a request; cached tenants' reads draw a cache key from
        a hot-skewed distribution (key 0 is the hot key)."""
        req = self.factory.make(
            tenant, now, reply_to=reply_to, intended=intended
        )
        if tenant.cached and req.key is None:
            req.key = self._draw_key(tenant)
        return req

    def _draw_key(self, tenant: TenantSpec) -> str:
        span = max(1, tenant.cache_keys)
        if tenant.cache_hot_frac > 0.0 and self.key_rng.chance(
            tenant.cache_hot_frac
        ):
            index = 0
        else:
            index = self.key_rng.randint(0, span - 1)
        return f"{tenant.name}:c{index}"

    # -- threads -------------------------------------------------------------

    def _listener_proc(self):
        while True:
            req = yield Channelreceive(self.net, timeout=self.poll)
            if req is None:
                continue
            yield Compute(usec(10))
            yield from self.ingress.put(req)

    def _worker_proc(self, wid: int):
        while True:
            req = yield from self.ingress.get()
            if req is None:
                continue
            yield Compute(LOOKUP_COST)
            tenant = req.tenant
            if not tenant.cached or req.key is None:
                # Not a cacheable read: hand straight to the backend,
                # which owns the verdict end to end.
                self.passthrough += 1
                self.backend.stats.bump(tenant.name, "offered")
                yield from self.backend.ingress.put(req)
                continue
            now = yield GetTime()
            expiry = self.entries.get(req.key)
            if expiry is not None and now < expiry:
                self.hits += 1
                if self.capacity is not None:
                    # LRU touch: reinsert at the back of the dict order.
                    self.entries[req.key] = self.entries.pop(req.key)
                yield Compute(HIT_COST)
                yield from self._complete(req)
                continue
            if expiry is not None:
                del self.entries[req.key]
                self.expired_entries += 1
            self.misses += 1
            if self.single_flight and req.key in self.inflight:
                self.waiters[self.inflight[req.key]].append(req)
                self.coalesced_waits += 1
                self.stats.bump(tenant.name, "coalesced")
                continue
            yield from self._fetch(req, now)

    def _fetch(self, req: Request, now: int):
        """Mint a backend fetch for ``req.key`` and park ``req`` on it."""
        tenant = req.tenant
        fetch = self.factory.make(tenant, now, reply_to=self.fill_q)
        fetch.key = req.key
        self.fetches += 1
        self.waiters[fetch.rid] = [req]
        if self.single_flight:
            self.inflight[req.key] = fetch.rid
        depth = self.inflight_by_key.get(req.key, 0) + 1
        self.inflight_by_key[req.key] = depth
        if depth == 1:
            self.fetch_windows += 1
        if depth > self.max_inflight_per_key:
            self.max_inflight_per_key = depth
        self.backend.stats.bump(tenant.name, "offered")
        yield from self.backend.ingress.put(fetch)

    def _fill_proc(self):
        while True:
            msg = yield from self.fill_q.get()
            if msg is None:
                continue
            verdict, fetch = msg
            yield Compute(FILL_COST)
            key = fetch.key
            parked = self.waiters.pop(fetch.rid, [])
            if self.single_flight and self.inflight.get(key) == fetch.rid:
                del self.inflight[key]
            depth = self.inflight_by_key.get(key, 0)
            if depth <= 1:
                self.inflight_by_key.pop(key, None)
            else:
                self.inflight_by_key[key] = depth - 1
            if verdict == DONE:
                self.fills += 1
                now = yield GetTime()
                # Freshness dates from when the fetch was *initiated*,
                # not when the fill landed: the backend read the value
                # then.  A fill that took longer than the TTL is dead on
                # arrival — its waiters are served (stale-but-served)
                # but nothing is cached, which is precisely what makes
                # an un-guarded stampede metastable: slow fills stop
                # restocking the cache, so the misses never stop.
                expiry = fetch.intended + fetch.tenant.cache_ttl
                if expiry > now:
                    if self.capacity is not None:
                        # A fill is a use: refreshes move to the back,
                        # and a fill into a full cache evicts the LRU
                        # entry (the dict front).
                        self.entries.pop(key, None)
                        if len(self.entries) >= self.capacity:
                            evicted = next(iter(self.entries))
                            del self.entries[evicted]
                            self.evictions += 1
                    self.entries[key] = expiry
                else:
                    self.stale_fills += 1
                for waiter in parked:
                    yield Compute(WAITER_COST)
                    yield from self._complete(waiter)
            else:
                # The fetch was shed or failed by the backend: every
                # parked waiter inherits the verdict (and a resubmit
                # sink may storm them right back — that is the point).
                self.failed_fills += 1
                for waiter in parked:
                    yield Compute(WAITER_COST)
                    yield from self._reject(waiter, verdict)

    def _invalidation_proc(self):
        while True:
            key = yield Channelreceive(self.invalidations, timeout=self.poll)
            if key is None:
                continue
            yield Compute(INVALIDATE_COST)
            if key == INVALIDATE_ALL:
                self.invalidated += len(self.entries)
                self.entries.clear()
            elif key in self.entries:
                del self.entries[key]
                self.invalidated += 1

    def _ttl_sweep_proc(self):
        """Bookkeeping sweep: retire entries whose TTL has passed (a
        lookup would treat them as misses anyway; sweeping bounds the
        map and keeps ``entries`` an honest freshness witness)."""
        while True:
            yield Pause(self.poll)
            now = yield GetTime()
            stale = [
                key for key, expiry in self.entries.items() if expiry <= now
            ]
            for key in stale:
                del self.entries[key]
            if stale:
                self.expired_entries += len(stale)
                yield Compute(usec(5) * len(stale))

    # -- outcomes ------------------------------------------------------------

    def _complete(self, req: Request):
        now = yield GetTime()
        req.completed_at = now
        req.status = DONE
        self.stats.bump(req.tenant.name, "completed")
        self.stats.note_latency(req.tenant.name, now - req.intended)
        if req.reply_to is not None:
            yield from req.reply_to.put((DONE, req))

    def _reject(self, req: Request, verdict: str):
        req.status = verdict
        kind = "failed" if verdict == FAILED else "shed"
        self.stats.bump(req.tenant.name, kind)
        if req.reply_to is not None:
            yield from req.reply_to.put((verdict, req))

    # -- reporting -----------------------------------------------------------

    @property
    def amplification(self) -> float:
        """Backend fetches per distinct miss window.

        A window opens when a fetch is minted for a key with none in
        flight and closes when the key's in-flight count drains; one
        fetch per window is the ideal the single-flight guard enforces
        (so with the guard on this is exactly 1.0).  With the guard off
        every concurrent miss in the window fetches too, and the factor
        measures how hard the stampede hammers the backend."""
        return self.fetches / self.fetch_windows if self.fetch_windows else 0.0

    def cache_counters(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(
                self.hits / (self.hits + self.misses), 6
            ) if (self.hits + self.misses) else 0.0,
            "coalesced_waits": self.coalesced_waits,
            "fetches": self.fetches,
            "fetch_windows": self.fetch_windows,
            "fills": self.fills,
            "failed_fills": self.failed_fills,
            "stale_fills": self.stale_fills,
            "expired_entries": self.expired_entries,
            "invalidated": self.invalidated,
            "passthrough": self.passthrough,
            "evictions": self.evictions,
            "capacity": self.capacity,
            "amplification": round(self.amplification, 6),
            "max_inflight_per_key": self.max_inflight_per_key,
            "single_flight": self.single_flight,
            "live_entries": len(self.entries),
        }

    def to_dict(self) -> dict:
        return {**self.stats.to_dict(), "cache": self.cache_counters()}
