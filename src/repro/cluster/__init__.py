"""The sharded cluster world: balancer, admission policy, SLO rollups.

One layer up from :mod:`repro.server`: N RPC-server shards on one
simulated kernel (``ncpus == shards`` by default — a shard per machine)
behind a load-balancer thread pipeline with pluggable routing (static
hash / round robin / power of two choices), per-tenant weighted-fair
or drop-tail admission with optional token-bucket rate limits, and a
sleeper-driven shard health breaker that evacuates and re-routes the
queued work of a wedged shard.

With ``replicas=True`` every shard gets a replica fed by deterministic
op-log shipping over a kernel channel; a tripped primary is *promoted
away from* instead of evacuated — the replica replays un-acked work,
idempotent by rid — and a standby balancer watches a kernel-timer lease
so the front door itself is no longer a single point of failure (see
:mod:`repro.cluster.replication` and docs/CLUSTER.md).
"""

from repro.cluster.admission import TokenBucket, WfqQueue
from repro.cluster.cache import CacheTier
from repro.cluster.balancer import (
    ADMISSION_POLICIES,
    BALANCER_POLICIES,
    LoadBalancer,
)
from repro.cluster.feedback import (
    AdaptationResult,
    adapt_weights,
    attainment_by_tenant,
    next_weights,
)
from repro.cluster.model import CLUSTER_SCENARIOS, cluster_tenants
from repro.cluster.replication import (
    BalancerLease,
    ReplicationLink,
    StandbyBalancer,
    install_balancer_kill,
    install_primary_kill,
    live_requests,
    lost_requests,
)
from repro.cluster.world import (
    ClusterReport,
    build_cluster_world,
    merge_cluster_stats,
    run_cluster,
    summarize_cluster,
)

__all__ = [
    "ADMISSION_POLICIES",
    "BALANCER_POLICIES",
    "CLUSTER_SCENARIOS",
    "AdaptationResult",
    "BalancerLease",
    "CacheTier",
    "ClusterReport",
    "LoadBalancer",
    "ReplicationLink",
    "StandbyBalancer",
    "TokenBucket",
    "WfqQueue",
    "adapt_weights",
    "attainment_by_tenant",
    "build_cluster_world",
    "cluster_tenants",
    "install_balancer_kill",
    "install_primary_kill",
    "live_requests",
    "lost_requests",
    "merge_cluster_stats",
    "next_weights",
    "run_cluster",
    "summarize_cluster",
]
