"""The sharded cluster world: balancer, admission policy, SLO rollups.

One layer up from :mod:`repro.server`: N RPC-server shards on one
simulated kernel (``ncpus == shards`` by default — a shard per machine)
behind a load-balancer thread pipeline with pluggable routing (static
hash / round robin / power of two choices), per-tenant weighted-fair
or drop-tail admission with optional token-bucket rate limits, and a
sleeper-driven shard health breaker that evacuates and re-routes the
queued work of a wedged shard.
"""

from repro.cluster.admission import TokenBucket, WfqQueue
from repro.cluster.balancer import (
    ADMISSION_POLICIES,
    BALANCER_POLICIES,
    LoadBalancer,
)
from repro.cluster.model import CLUSTER_SCENARIOS, cluster_tenants
from repro.cluster.world import (
    ClusterReport,
    build_cluster_world,
    merge_cluster_stats,
    run_cluster,
    summarize_cluster,
)

__all__ = [
    "ADMISSION_POLICIES",
    "BALANCER_POLICIES",
    "CLUSTER_SCENARIOS",
    "ClusterReport",
    "LoadBalancer",
    "TokenBucket",
    "WfqQueue",
    "build_cluster_world",
    "cluster_tenants",
    "merge_cluster_stats",
    "run_cluster",
    "summarize_cluster",
]
