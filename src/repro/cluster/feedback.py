"""SLO-attainment feedback into WFQ admission weights.

The weighted-fair queue's weights are an operator knob; this module
closes the loop: measure each tenant's SLO attainment from a cluster
run, nudge the weights by a deterministic rule, run again, repeat until
the weights stop moving.  The rule is deliberately an integer hill
climb, not a controller with gains to tune:

* attainment below ``target - deadband``  ->  weight + 1 (capped),
* attainment above ``target + deadband``  ->  weight - 1 (floored at 1),
* inside the deadband  ->  unchanged.

Attainment here is the honest composite the workload reports use:
latency attainment (fraction of completions within the tenant's SLO
target, read straight off the merged histogram) scaled by the
completion rate, so a tenant whose traffic is mostly shed scores low
even if its few completions were fast.  A structurally overloaded
tenant pegs at the cap without starving the rest — WFQ stays
work-conserving, so the interesting converged state is the *relative*
weight vector, which the regression test pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.model import cluster_tenants
from repro.cluster.world import (
    DEFAULT_ADMISSION_CAPACITY,
    DEFAULT_WORKERS_PER_SHARD,
    ClusterReport,
    run_cluster,
)
from repro.kernel.simtime import sec
from repro.server.latency import attainment_from_dict
from repro.server.model import TenantSpec

#: Default attainment target and deadband for the update rule.
TARGET = 0.9
DEADBAND = 0.05

#: Weight bounds: WFQ weights are small positive integers.
MIN_WEIGHT = 1
MAX_WEIGHT = 8


def attainment_by_tenant(
    report: ClusterReport, tenants: tuple[TenantSpec, ...]
) -> dict[str, float]:
    """Composite SLO attainment per tenant from a cluster report."""
    out: dict[str, float] = {}
    for tenant in tenants:
        row = report.merged["tenants"].get(tenant.name)
        if not row:
            out[tenant.name] = 1.0
            continue
        offered = row.get("offered", 0)
        completed = row.get("completed", 0)
        latency_att = attainment_from_dict(row.get("latency"), tenant.slo_us)
        completion = completed / offered if offered else 1.0
        out[tenant.name] = latency_att * completion
    return out


def next_weights(
    weights: dict[str, int],
    attainment: dict[str, float],
    *,
    target: float = TARGET,
    deadband: float = DEADBAND,
    max_weight: int = MAX_WEIGHT,
) -> dict[str, int]:
    """One deterministic hill-climb step (see module docstring)."""
    out: dict[str, int] = {}
    for name, weight in weights.items():
        att = attainment.get(name, 1.0)
        if att < target - deadband:
            out[name] = min(max_weight, weight + 1)
        elif att > target + deadband:
            out[name] = max(MIN_WEIGHT, weight - 1)
        else:
            out[name] = weight
    return out


@dataclass
class AdaptationResult:
    """The feedback loop's transcript: per-round weights + attainment."""

    scenario: str
    seed: int
    rounds_run: int
    converged: bool
    weights: dict[str, int] = field(default_factory=dict)
    #: One entry per round: {"weights": ..., "attainment": ...}.
    history: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "rounds_run": self.rounds_run,
            "converged": self.converged,
            "weights": self.weights,
            "history": self.history,
        }


def adapt_weights(
    *,
    seed: int = 0,
    scenario: str = "skewed",
    rounds: int = 6,
    duration: int = sec(1),
    shards: int = 2,
    workers_per_shard: int = DEFAULT_WORKERS_PER_SHARD,
    policy: str = "p2c",
    admission_capacity: int = DEFAULT_ADMISSION_CAPACITY,
    target: float = TARGET,
    deadband: float = DEADBAND,
) -> AdaptationResult:
    """Run the measure -> nudge -> rerun loop until weights settle.

    Each round is a fresh deterministic cluster run (same seed) with the
    current weight vector substituted into the tenant mix; convergence
    is weight-vector fixpoint, so the whole trajectory is reproducible
    and the converged weights can be pinned by a test.
    """
    base_mix = cluster_tenants(scenario)
    weights = {t.name: t.weight for t in base_mix}
    history: list[dict] = []
    converged = False
    rounds_run = 0
    for _ in range(rounds):
        rounds_run += 1
        mix = tuple(
            replace(t, weight=weights[t.name]) for t in base_mix
        )
        report = run_cluster(
            seed=seed,
            scenario=scenario,
            shards=shards,
            workers_per_shard=workers_per_shard,
            policy=policy,
            admission="wfq",
            admission_capacity=admission_capacity,
            duration=duration,
            tenants=mix,
        )
        attainment = attainment_by_tenant(report, mix)
        history.append(
            {
                "weights": dict(weights),
                "attainment": {
                    name: round(value, 6)
                    for name, value in sorted(attainment.items())
                },
            }
        )
        updated = next_weights(
            weights,
            attainment,
            target=target,
            deadband=deadband,
        )
        if updated == weights:
            converged = True
            break
        weights = updated
    return AdaptationResult(
        scenario=scenario,
        seed=seed,
        rounds_run=rounds_run,
        converged=converged,
        weights=weights,
        history=history,
    )
