"""The cluster front door: admission, routing, and shard health.

The balancer is the same pipeline shape as the server it fronts — every
stage is one of the paper's paradigms, one layer up:

* a listener :class:`~repro.paradigms.pump.Pump` moves arrivals from the
  cluster's network channel into the balancer ingress queue;
* an **admission** thread applies per-tenant policy at the mouth of the
  cluster: a :class:`~repro.cluster.admission.TokenBucket` hard-caps any
  tenant with a configured rate limit, then the request enters either a
  shared drop-tail :class:`~repro.sync.queues.BoundedQueue` or a
  per-tenant :class:`~repro.cluster.admission.WfqQueue` (the policy
  under test);
* a **dispatcher** thread drains the admission queue and routes each
  request to a shard chosen by the configured policy — ``hash`` (static
  tenant affinity), ``rr`` (round robin), or ``p2c`` (power of two
  choices over outstanding work).  Dispatch is *credit gated*: a shard
  with a full window of outstanding requests is ineligible, so cluster
  backlog accumulates in the balancer's admission queue — where WFQ can
  see tenants — rather than in anonymous shard queues;
* a **health** :class:`~repro.paradigms.sleeper.Sleeper` probes each
  shard's completion counters.  A shard holding queued work while its
  counters sit still collects strikes; enough strikes trip the breaker:
  the shard is marked unhealthy, its queued requests are pruned and
  re-dispatched through the balancer via detached one-shot threads with
  jittered backoff (bounded by :data:`MAX_REROUTES` — a request is
  failed rather than bounced forever).  The breaker closes only when
  the shard's counters *advance*, never on depth alone, so a wedged
  shard that merely drained does not win traffic back.

The balancer exposes the same frontend protocol as
:class:`~repro.server.server.RpcServer` (``net``/``ingress``,
``make_request``, ``stats``, ``poll``, ``world``/``kernel``, ``name``),
so the traffic generators in :mod:`repro.server.clients` drive a cluster
and a single server interchangeably.
"""

from __future__ import annotations

from typing import Any
from zlib import crc32

from repro.kernel.primitives import (
    Compute,
    Enter,
    Exit,
    Fork,
    GetTime,
    Notify,
    Pause,
    Wait,
)
from repro.kernel.rng import DeterministicRng
from repro.kernel.simtime import msec, usec
from repro.paradigms.pump import Pump
from repro.paradigms.sleeper import Sleeper
from repro.server.model import (
    FAILED,
    PENDING,
    SHED,
    Request,
    RequestFactory,
    ServerStats,
    TenantSpec,
)
from repro.server.server import RpcServer
from repro.cluster.admission import TokenBucket, WfqQueue
from repro.sync.condition import ConditionVariable
from repro.sync.monitor import Monitor
from repro.sync.queues import BoundedQueue, UnboundedQueue

#: Balancer bookkeeping costs — small next to request service costs.
ADMIT_COST = usec(15)
DISPATCH_COST = usec(20)

#: Outstanding-request credit per shard worker: the dispatcher keeps at
#: most ``window = CREDITS_PER_WORKER * workers`` requests in flight per
#: shard — enough to keep every worker fed through a dispatch round
#: trip, small enough that backlog pools at the balancer (where the
#: admission policy can see tenants) instead of in anonymous shard
#: queues.
CREDITS_PER_WORKER = 4

#: Health probe: consecutive no-progress-while-loaded observations
#: before the breaker trips, and the backoff envelope for re-dispatch.
PROBE_STRIKES = 2
MAX_REROUTES = 2
REROUTE_BACKOFF = msec(20)

#: Same priority bands as the server: ingress above the pool, the
#: sleeper in between, everything >= 4 for the starvation monitor.
PRIO_FRONT = 6
PRIO_SLEEPER = 5

BALANCER_POLICIES = ("hash", "rr", "p2c")
ADMISSION_POLICIES = ("drop_tail", "wfq")


class LoadBalancer:
    """Route requests across ``shards`` with pluggable pick policy and
    per-tenant admission (see module docstring)."""

    def __init__(
        self,
        world: Any,
        shards: tuple[RpcServer, ...],
        tenants: tuple[TenantSpec, ...],
        *,
        policy: str = "p2c",
        admission_policy: str = "wfq",
        admission_capacity: int = 64,
        name: str = "lb",
    ) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        if policy not in BALANCER_POLICIES:
            raise ValueError(f"unknown balancer policy {policy!r}")
        if admission_policy not in ADMISSION_POLICIES:
            raise ValueError(f"unknown admission policy {admission_policy!r}")
        self.world = world
        self.kernel = world.kernel
        self.shards = shards
        self.tenants = {t.name: t for t in tenants}
        self.policy = policy
        self.admission_policy = admission_policy
        self.name = name
        self.stats = ServerStats()
        self.poll = self.kernel.config.quantum

        self.net = world.add_device(f"{name}.net")
        self.ingress = UnboundedQueue(f"{name}.ingress")
        if admission_policy == "wfq":
            self.admission: Any = WfqQueue(
                f"{name}.admission",
                max(1, admission_capacity // max(1, len(tenants))),
                {t.name: t.weight for t in tenants},
            )
        else:
            self.admission = BoundedQueue(
                f"{name}.admission", admission_capacity
            )
        #: Per-tenant token buckets; only tenants with a configured rate
        #: limit get one (0 disables).
        self.buckets: dict[str, TokenBucket] = {
            t.name: TokenBucket(t.rate_limit_per_sec, t.burst)
            for t in tenants
            if t.rate_limit_per_sec > 0
        }

        self.factory = RequestFactory(self.kernel.config.seed, name)
        self.retry_rng = self.factory.retry_rng
        self.pick_rng = DeterministicRng(self.kernel.config.seed).fork(
            f"{name}:pick"
        )

        nshards = len(shards)
        #: Credit window per shard (see CREDITS_PER_WORKER).
        self.window = max(
            CREDITS_PER_WORKER, CREDITS_PER_WORKER * shards[0].workers
        )
        self.healthy = [True] * nshards
        #: Requests handed to each shard since boot (never decremented;
        #: inflight is derived against the shard's outcome counters).
        self.dispatched = [0] * nshards
        #: Requests pruned back out of a tripped shard's queues.
        self.rerouted_away = [0] * nshards
        self._strikes = [0] * nshards
        self._last_done = [0] * nshards
        self._rr = 0
        #: Breaker events, for reports and the chaos invariants.
        self.trips = 0
        self.recoveries = 0
        self.reroutes = 0

        #: Credit wakeup: every shard terminal outcome (complete, shed,
        #: fail) notifies here, so the dispatcher blocks *on an event*
        #: when every shard is at its window — timed waits alone would
        #: quantize dispatch to scheduler ticks (timeouts have timeslice
        #: granularity) and cap throughput at one window per quantum.
        self.credit_mon = Monitor(f"{name}.credit")
        self.credit_cv = ConditionVariable(self.credit_mon, f"{name}.credit.cv")
        for shard in shards:
            shard.on_outcome = self._credit_hook

        self.listener = Pump(
            f"{name}.listener",
            self.net,
            self.ingress,
            cost_per_item=usec(10),
        )
        self.health = Sleeper(
            f"{name}.health", 2 * self.poll, self._probe, work_cost=usec(30)
        )

    # -- population --------------------------------------------------------

    def start(self) -> None:
        """Fork the balancer's thread population (shards start themselves)."""
        self.world.add_eternal(
            self.listener.proc, name=self.listener.name, priority=PRIO_FRONT
        )
        self.world.add_eternal(
            self._admit_proc, name=f"{self.name}.admit", priority=PRIO_FRONT
        )
        self.world.add_eternal(
            self._dispatch_proc,
            name=f"{self.name}.dispatch",
            priority=PRIO_FRONT,
        )
        self.world.add_eternal(
            self.health.proc, name=self.health.name, priority=PRIO_SLEEPER
        )

    # -- the frontend protocol ---------------------------------------------

    def make_request(
        self,
        tenant: TenantSpec,
        now: int,
        *,
        reply_to: Any = None,
        intended: int | None = None,
    ) -> Request:
        return self.factory.make(
            tenant, now, reply_to=reply_to, intended=intended
        )

    # -- shard accounting ---------------------------------------------------

    def shard_done(self, sid: int) -> int:
        """Terminal outcomes a shard has produced (its progress counter)."""
        stats = self.shards[sid].stats
        return (
            stats.total("completed")
            + stats.total("shed")
            + stats.total("failed")
        )

    def inflight(self, sid: int) -> int:
        """Requests dispatched to a shard and not yet resolved there."""
        return max(
            0,
            self.dispatched[sid]
            - self.shard_done(sid)
            - self.rerouted_away[sid],
        )

    def shard_depth(self, sid: int) -> int:
        """Queued (not yet executing) requests held by a shard."""
        shard = self.shards[sid]
        depth = len(shard.ingress) + len(shard.admission)
        for queue in shard.serial_queues.values():
            depth += len(queue)
        return depth

    # -- thread bodies -----------------------------------------------------

    def _admit_proc(self):
        """Token-bucket gate, then the admission queue (or shed)."""
        while True:
            req = yield from self.ingress.get(timeout=self.poll)
            if req is None:
                continue
            yield Compute(ADMIT_COST)
            tenant = req.tenant
            bucket = self.buckets.get(tenant.name)
            if bucket is not None:
                now = yield GetTime()
                if not bucket.take(now):
                    yield from self._shed(req)
                    continue
            ok = yield from self.admission.put(
                req, timeout=tenant.admission_timeout
            )
            if not ok:
                yield from self._shed(req)

    def _dispatch_proc(self):
        """Drain admission in policy order; route to an eligible shard."""
        while True:
            req = yield from self.admission.get(timeout=self.poll)
            if req is None:
                continue
            yield Compute(DISPATCH_COST)
            while True:
                sid = self._pick_shard(req)
                if sid is not None:
                    break
                # Every shard tripped or at its window: hold the request
                # until an outcome hook signals a freed credit.  The
                # timeout is a backstop (health recovery does not signal
                # this CV), not the cadence.
                yield Enter(self.credit_mon)
                try:
                    yield Wait(self.credit_cv, self.poll)
                finally:
                    yield Exit(self.credit_mon)
            self.dispatched[sid] += 1
            yield from self.shards[sid].ingress.put(req)

    def _credit_hook(self):
        """Installed as every shard's ``on_outcome``: wake the dispatcher."""
        yield Enter(self.credit_mon)
        try:
            yield Notify(self.credit_cv)
        finally:
            yield Exit(self.credit_mon)

    def _pick_shard(self, req: Request) -> int | None:
        eligible = [
            sid
            for sid in range(len(self.shards))
            if self.healthy[sid] and self.inflight(sid) < self.window
        ]
        if not eligible:
            return None
        if self.policy == "hash":
            start = crc32(req.tenant.name.encode()) % len(self.shards)
            for offset in range(len(self.shards)):
                sid = (start + offset) % len(self.shards)
                if sid in eligible:
                    return sid
            return None  # pragma: no cover - eligible is non-empty
        if self.policy == "rr":
            for _ in range(len(self.shards)):
                sid = self._rr % len(self.shards)
                self._rr += 1
                if sid in eligible:
                    return sid
            return None  # pragma: no cover - eligible is non-empty
        # p2c: probe two (deterministic) picks, take the shorter queue.
        first = eligible[self.pick_rng.randint(0, len(eligible) - 1)]
        second = eligible[self.pick_rng.randint(0, len(eligible) - 1)]
        return first if self.inflight(first) <= self.inflight(second) else second

    # -- the health sleeper -------------------------------------------------

    def _probe(self):
        """Per-tick probe: strike wedged shards, trip, reroute, recover.

        Also sweeps the balancer's own admission queue for requests that
        expired while waiting for credit (mirroring the shard deadline
        sleeper), so cluster-level queueing honours the same deadlines.
        """
        now = yield GetTime()
        self.stats.depth_samples.append(
            (now, len(self.admission), self.stats.total("shed"))
        )
        for sid in range(len(self.shards)):
            done = self.shard_done(sid)
            if done > self._last_done[sid]:
                self._last_done[sid] = done
                self._strikes[sid] = 0
                if not self.healthy[sid]:
                    # Progress is the only way back in.
                    self.healthy[sid] = True
                    self.recoveries += 1
                continue
            if not self.healthy[sid]:
                continue
            if self.shard_depth(sid) == 0 and self.inflight(sid) == 0:
                self._strikes[sid] = 0  # idle, not wedged
                continue
            self._strikes[sid] += 1
            if self._strikes[sid] >= PROBE_STRIKES:
                self.healthy[sid] = False
                self.trips += 1
                yield from self._evacuate(sid)
        cut = lambda r: r.expires_at <= now and r.status == PENDING
        expired = yield from self.admission.prune(cut)
        for req in expired:
            yield from self._expire(req)

    def _evacuate(self, sid: int):
        """Pull queued work off a tripped shard and re-dispatch it."""
        shard = self.shards[sid]
        queued = lambda r: r.status == PENDING
        moved = yield from shard.ingress.prune(queued)
        moved += yield from shard.admission.prune(queued)
        for queue in shard.serial_queues.values():
            moved += yield from queue.prune(queued)
        for req in moved:
            self.rerouted_away[sid] += 1
            req.reroutes += 1
            if req.reroutes > MAX_REROUTES:
                yield from self._fail(req)
                continue
            self.reroutes += 1
            self.stats.bump(req.tenant.name, "retries")
            delay = REROUTE_BACKOFF * req.reroutes
            delay += self.retry_rng.randint(0, REROUTE_BACKOFF)
            yield Fork(
                self._reroute_proc,
                (req, delay),
                name=f"{self.name}.reroute.{req.rid}.{req.reroutes}",
                priority=PRIO_SLEEPER,
                detached=True,
            )

    def _reroute_proc(self, req: Request, delay: int):
        """One-shot: back off, rearm the deadline, rejoin at the front."""
        yield Pause(delay)
        now = yield GetTime()
        req.rearm(now)
        yield from self.ingress.put(req)

    # -- outcomes ----------------------------------------------------------

    def _shed(self, req: Request):
        """Cluster admission refused (bucket dry or queue full)."""
        req.status = SHED
        self.stats.bump(req.tenant.name, "shed")
        if req.reply_to is not None:
            yield from req.reply_to.put((SHED, req))

    def _fail(self, req: Request):
        """Reroute budget exhausted: the cluster gives up on it."""
        req.status = FAILED
        self.stats.bump(req.tenant.name, "failed")
        if req.reply_to is not None:
            yield from req.reply_to.put((FAILED, req))

    def _expire(self, req: Request):
        """Deadline passed while waiting for credit: bounded retry."""
        tenant = req.tenant
        self.stats.bump(tenant.name, "timeouts")
        if req.attempt < tenant.max_retries:
            self.stats.bump(tenant.name, "retries")
            delay = tenant.backoff * (2 ** req.attempt)
            delay += self.retry_rng.randint(0, tenant.backoff)
            yield Fork(
                self._reroute_proc,
                (req, delay),
                name=f"{self.name}.retry.{req.rid}.{req.attempt}",
                priority=PRIO_SLEEPER,
                detached=True,
            )
        else:
            yield from self._fail(req)
