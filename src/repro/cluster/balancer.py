"""The cluster front door: admission, routing, and shard health.

The balancer is the same pipeline shape as the server it fronts — every
stage is one of the paper's paradigms, one layer up:

* a listener :class:`~repro.paradigms.pump.Pump` moves arrivals from the
  cluster's network channel into the balancer ingress queue;
* an **admission** thread applies per-tenant policy at the mouth of the
  cluster: a :class:`~repro.cluster.admission.TokenBucket` hard-caps any
  tenant with a configured rate limit, then the request enters either a
  shared drop-tail :class:`~repro.sync.queues.BoundedQueue` or a
  per-tenant :class:`~repro.cluster.admission.WfqQueue` (the policy
  under test);
* a **dispatcher** thread drains the admission queue and routes each
  request to a shard chosen by the configured policy — ``hash`` (static
  tenant affinity), ``rr`` (round robin), or ``p2c`` (power of two
  choices over outstanding work).  Dispatch is *credit gated*: a shard
  with a full window of outstanding requests is ineligible, so cluster
  backlog accumulates in the balancer's admission queue — where WFQ can
  see tenants — rather than in anonymous shard queues;
* a **health** :class:`~repro.paradigms.sleeper.Sleeper` probes each
  shard's completion counters.  A shard holding queued work while its
  counters sit still collects strikes; enough strikes trip the breaker:
  the shard is marked unhealthy, its queued requests are pruned and
  re-dispatched through the balancer via detached one-shot threads with
  jittered backoff (bounded by :data:`MAX_REROUTES` — a request is
  failed rather than bounced forever).  The breaker closes only when
  the shard's counters *advance*, never on depth alone, so a wedged
  shard that merely drained does not win traffic back.

The balancer exposes the same frontend protocol as
:class:`~repro.server.server.RpcServer` (``net``/``ingress``,
``make_request``, ``stats``, ``poll``, ``world``/``kernel``, ``name``),
so the traffic generators in :mod:`repro.server.clients` drive a cluster
and a single server interchangeably.
"""

from __future__ import annotations

from typing import Any
from zlib import crc32

from repro.kernel.primitives import (
    Compute,
    Enter,
    Exit,
    Fork,
    GetTime,
    Notify,
    Pause,
    Wait,
)
from repro.kernel.rng import DeterministicRng
from repro.kernel.simtime import msec, usec
from repro.paradigms.pump import Pump
from repro.paradigms.sleeper import Sleeper
from repro.server.model import (
    FAILED,
    PENDING,
    SHED,
    Request,
    RequestFactory,
    ServerStats,
    TenantSpec,
)
from repro.server.server import RpcServer
from repro.cluster.admission import TokenBucket, WfqQueue
from repro.sync.condition import ConditionVariable
from repro.sync.monitor import Monitor
from repro.sync.queues import BoundedQueue, UnboundedQueue

#: Balancer bookkeeping costs — small next to request service costs.
ADMIT_COST = usec(15)
DISPATCH_COST = usec(20)

#: Outstanding-request credit per shard worker: the dispatcher keeps at
#: most ``window = CREDITS_PER_WORKER * workers`` requests in flight per
#: shard — enough to keep every worker fed through a dispatch round
#: trip, small enough that backlog pools at the balancer (where the
#: admission policy can see tenants) instead of in anonymous shard
#: queues.
CREDITS_PER_WORKER = 4

#: Health probe: consecutive no-progress-while-loaded observations
#: before the breaker trips, and the backoff envelope for re-dispatch.
PROBE_STRIKES = 2
MAX_REROUTES = 2
REROUTE_BACKOFF = msec(20)

#: Consecutive progress observations a tripped shard must string
#: together before the breaker closes.  One completion is not health: a
#: wedged shard draining a single slow request used to flap healthy,
#: re-attract a window of traffic, and strand it all over again.
RECOVERY_CLEAN_TICKS = 3

#: Same priority bands as the server: ingress above the pool, the
#: sleeper in between, everything >= 4 for the starvation monitor.
PRIO_FRONT = 6
PRIO_SLEEPER = 5

BALANCER_POLICIES = ("hash", "rr", "p2c")
ADMISSION_POLICIES = ("drop_tail", "wfq")


class LoadBalancer:
    """Route requests across ``shards`` with pluggable pick policy and
    per-tenant admission (see module docstring)."""

    def __init__(
        self,
        world: Any,
        shards: tuple[RpcServer, ...],
        tenants: tuple[TenantSpec, ...],
        *,
        policy: str = "p2c",
        admission_policy: str = "wfq",
        admission_capacity: int = 64,
        name: str = "lb",
        links: tuple | None = None,
        lease: Any = None,
    ) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        if policy not in BALANCER_POLICIES:
            raise ValueError(f"unknown balancer policy {policy!r}")
        if admission_policy not in ADMISSION_POLICIES:
            raise ValueError(f"unknown admission policy {admission_policy!r}")
        if links is not None and len(links) != len(shards):
            raise ValueError("need one replication link per shard")
        self.world = world
        self.kernel = world.kernel
        #: Mutable on purpose: promotion swaps a slot's server in place.
        self.shards = list(shards)
        #: Per-shard replication links (None without ``--replicas``) and
        #: the balancer-role lease the health sleeper renews.
        self.links = links
        self.lease = lease
        self.standby: Any = None
        self.tenants = {t.name: t for t in tenants}
        self.policy = policy
        self.admission_policy = admission_policy
        self.name = name
        self.stats = ServerStats()
        self.poll = self.kernel.config.quantum

        #: Per-stage custody ledgers: each records the request a pipeline
        #: thread is holding between its get and its put (the listener
        #: between channel and ingress, the admit thread between ingress
        #: and admission, the dispatcher between admission and a shard).
        #: One ledger per stage — a shared dict would let one stage's
        #: cleanup erase another's entry for the same rid.  Transient in
        #: normal operation; after a balancer partition they hold exactly
        #: what the dead threads took down, which the standby re-injects
        #: at takeover.
        self.carry_ledgers: dict[str, dict[str, Request]] = {
            "net": {},
            "ingress": {},
            "admission": {},
        }
        self.net = world.add_device(f"{name}.net")
        self.ingress = UnboundedQueue(
            f"{name}.ingress", carry=self.carry_ledgers["ingress"]
        )
        if admission_policy == "wfq":
            self.admission: Any = WfqQueue(
                f"{name}.admission",
                max(1, admission_capacity // max(1, len(tenants))),
                {t.name: t.weight for t in tenants},
                carry=self.carry_ledgers["admission"],
            )
        else:
            self.admission = BoundedQueue(
                f"{name}.admission", admission_capacity,
                carry=self.carry_ledgers["admission"],
            )
        #: Per-tenant token buckets; only tenants with a configured rate
        #: limit get one (0 disables).
        self.buckets: dict[str, TokenBucket] = {
            t.name: TokenBucket(t.rate_limit_per_sec, t.burst)
            for t in tenants
            if t.rate_limit_per_sec > 0
        }

        self.factory = RequestFactory(self.kernel.config.seed, name)
        self.retry_rng = self.factory.retry_rng
        self.pick_rng = DeterministicRng(self.kernel.config.seed).fork(
            f"{name}:pick"
        )

        nshards = len(shards)
        #: Credit window per shard (see CREDITS_PER_WORKER).
        self.window = max(
            CREDITS_PER_WORKER, CREDITS_PER_WORKER * shards[0].workers
        )
        self.healthy = [True] * nshards
        #: Requests handed to each shard since boot (never decremented;
        #: inflight is derived against the shard's outcome counters).
        self.dispatched = [0] * nshards
        #: Requests pruned back out of a tripped shard's queues.
        self.rerouted_away = [0] * nshards
        #: Per-shard retransmit buffer: every dispatched request, keyed
        #: by rid, until the shard's outcome hook releases it.  On
        #: promotion this is the authoritative replay set, cross-checked
        #: against the replica's acked log.
        self.outstanding: list[dict[str, Request]] = [
            {} for _ in range(nshards)
        ]
        #: Requests parked in detached retry/reroute one-shots — custody
        #: no queue scan can see (see repro.cluster.replication).
        self.limbo: dict[str, Request] = {}
        self._strikes = [0] * nshards
        self._clean = [0] * nshards
        self._last_done = [0] * nshards
        self._rr = 0
        #: Breaker events, for reports and the chaos invariants.
        self.trips = 0
        self.recoveries = 0
        self.reroutes = 0
        #: Dispatched requests a tripped shard took down with it — work
        #: the cluster acknowledged and then lost.  Replication exists
        #: to hold this at zero; without a replica it is the observable
        #: cost of the old silent-drop evacuation.
        self.lost_inflight = [0] * nshards
        #: Replication events: replica promotions, un-acked requests
        #: re-executed on promotion, and un-acked requests terminally
        #: failed because no replica remained to replay them into.
        self.promotions = 0
        self.replayed = 0
        self.quarantined = 0
        self.promoted_at: list[int] = []
        #: Demoted primaries, kept so merged cluster stats stay
        #: conservation-complete after a promotion.
        self.retired: list[RpcServer] = []
        #: Threads forked by :meth:`start` (fault injection targets).
        self.threads: list[Any] = []

        #: Credit wakeup: every shard terminal outcome (complete, shed,
        #: fail) notifies here, so the dispatcher blocks *on an event*
        #: when every shard is at its window — timed waits alone would
        #: quantize dispatch to scheduler ticks (timeouts have timeslice
        #: granularity) and cap throughput at one window per quantum.
        self.credit_mon = Monitor(f"{name}.credit")
        self.credit_cv = ConditionVariable(self.credit_mon, f"{name}.credit.cv")
        for sid, shard in enumerate(self.shards):
            shard.on_outcome = self._make_credit_hook(sid)
        for link in links or ():
            # Replicas release the same slot's credit once promoted.
            link.replica.on_outcome = self._make_credit_hook(link.sid)

        self.listener = Pump(
            f"{name}.listener",
            self.net,
            self.ingress,
            cost_per_item=usec(10),
            carry=self.carry_ledgers["net"],
        )
        self.health = Sleeper(
            f"{name}.health", 2 * self.poll, self._probe, work_cost=usec(30)
        )

    # -- population --------------------------------------------------------

    def start(self) -> None:
        """Fork the balancer's thread population (shards start themselves)."""
        add = self.threads.append
        add(self.world.add_eternal(
            self.listener.proc, name=self.listener.name, priority=PRIO_FRONT
        ))
        add(self.world.add_eternal(
            self._admit_proc, name=f"{self.name}.admit", priority=PRIO_FRONT
        ))
        add(self.world.add_eternal(
            self._dispatch_proc,
            name=f"{self.name}.dispatch",
            priority=PRIO_FRONT,
        ))
        add(self.world.add_eternal(
            self.health.proc, name=self.health.name, priority=PRIO_SLEEPER
        ))

    # -- the frontend protocol ---------------------------------------------

    def make_request(
        self,
        tenant: TenantSpec,
        now: int,
        *,
        reply_to: Any = None,
        intended: int | None = None,
    ) -> Request:
        return self.factory.make(
            tenant, now, reply_to=reply_to, intended=intended
        )

    # -- shard accounting ---------------------------------------------------

    def shard_done(self, sid: int) -> int:
        """Terminal outcomes a shard has produced (its progress counter)."""
        stats = self.shards[sid].stats
        return (
            stats.total("completed")
            + stats.total("shed")
            + stats.total("failed")
        )

    def inflight(self, sid: int) -> int:
        """Requests dispatched to a shard and not yet resolved there."""
        return max(
            0,
            self.dispatched[sid]
            - self.shard_done(sid)
            - self.rerouted_away[sid],
        )

    def shard_depth(self, sid: int) -> int:
        """Queued (not yet executing) requests held by a shard."""
        shard = self.shards[sid]
        depth = len(shard.ingress) + len(shard.admission)
        for queue in shard.serial_queues.values():
            depth += len(queue)
        return depth

    # -- thread bodies -----------------------------------------------------

    def _admit_proc(self):
        """Token-bucket gate, then the admission queue (or shed)."""
        while True:
            req = yield from self.ingress.get(timeout=self.poll)
            if req is None:
                continue
            yield Compute(ADMIT_COST)
            tenant = req.tenant
            bucket = self.buckets.get(tenant.name)
            if bucket is not None:
                now = yield GetTime()
                if not bucket.take(now):
                    yield from self._shed(req)
                    continue
            ok = yield from self.admission.put(
                req, timeout=tenant.admission_timeout
            )
            if ok:
                self.carry_ledgers["ingress"].pop(req.rid, None)
            else:
                yield from self._shed(req)

    def _dispatch_proc(self):
        """Drain admission in policy order; route to an eligible shard."""
        while True:
            req = yield from self.admission.get(timeout=self.poll)
            if req is None:
                continue
            yield Compute(DISPATCH_COST)
            while True:
                sid = self._pick_shard(req)
                if sid is not None:
                    break
                # Every shard tripped or at its window: hold the request
                # until an outcome hook signals a freed credit.  The
                # timeout is a backstop (health recovery does not signal
                # this CV), not the cadence.
                yield Enter(self.credit_mon)
                try:
                    yield Wait(self.credit_cv, self.poll)
                finally:
                    yield Exit(self.credit_mon)
            self.dispatched[sid] += 1
            self.outstanding[sid][req.rid] = req
            yield from self.shards[sid].ingress.put(req)
            self.carry_ledgers["admission"].pop(req.rid, None)

    def _make_credit_hook(self, sid: int):
        """Build a shard's ``on_outcome``: release the retransmit-buffer
        slot, wake the dispatcher (a credit just freed)."""

        def hook(req: Request):
            self.outstanding[sid].pop(req.rid, None)
            yield Enter(self.credit_mon)
            try:
                yield Notify(self.credit_cv)
            finally:
                yield Exit(self.credit_mon)

        return hook

    def _pick_shard(self, req: Request) -> int | None:
        eligible = [
            sid
            for sid in range(len(self.shards))
            if self.healthy[sid] and self.inflight(sid) < self.window
        ]
        if not eligible:
            return None
        if self.policy == "hash":
            start = crc32(req.tenant.name.encode()) % len(self.shards)
            for offset in range(len(self.shards)):
                sid = (start + offset) % len(self.shards)
                if sid in eligible:
                    return sid
            return None  # pragma: no cover - eligible is non-empty
        if self.policy == "rr":
            for _ in range(len(self.shards)):
                sid = self._rr % len(self.shards)
                self._rr += 1
                if sid in eligible:
                    return sid
            return None  # pragma: no cover - eligible is non-empty
        # p2c: probe two (deterministic) picks, take the shorter queue.
        first = eligible[self.pick_rng.randint(0, len(eligible) - 1)]
        second = eligible[self.pick_rng.randint(0, len(eligible) - 1)]
        return first if self.inflight(first) <= self.inflight(second) else second

    # -- the health sleeper -------------------------------------------------

    def _probe(self):
        """Per-tick probe: strike wedged shards, trip, reroute, recover.

        Also sweeps the balancer's own admission queue for requests that
        expired while waiting for credit (mirroring the shard deadline
        sleeper), so cluster-level queueing honours the same deadlines.
        """
        now = yield GetTime()
        if self.lease is not None:
            self.lease.renew(now)
        self.stats.depth_samples.append(
            (now, len(self.admission), self.stats.total("shed"))
        )
        for sid in range(len(self.shards)):
            done = self.shard_done(sid)
            if done > self._last_done[sid]:
                self._last_done[sid] = done
                self._strikes[sid] = 0
                if not self.healthy[sid]:
                    # Progress is the only way back in — but one
                    # completion is not progress, it's a drip.  The
                    # breaker closes only after a clean-strike window of
                    # consecutive advancing ticks.
                    self._clean[sid] += 1
                    if self._clean[sid] >= RECOVERY_CLEAN_TICKS:
                        self.healthy[sid] = True
                        self.recoveries += 1
                        self._clean[sid] = 0
                continue
            if not self.healthy[sid]:
                self._clean[sid] = 0  # stalled again: the window restarts
                continue
            if self.shard_depth(sid) == 0 and self.inflight(sid) == 0:
                self._strikes[sid] = 0  # idle, not wedged
                continue
            self._strikes[sid] += 1
            if self._strikes[sid] >= PROBE_STRIKES:
                self.healthy[sid] = False
                self._clean[sid] = 0
                self.trips += 1
                link = self.links[sid] if self.links is not None else None
                if link is not None and not link.promoted:
                    yield from self._promote(sid)
                else:
                    yield from self._evacuate(sid)
        cut = lambda r: r.expires_at <= now and r.status == PENDING
        expired = yield from self.admission.prune(cut)
        for req in expired:
            yield from self._expire(req)

    def _promote(self, sid: int):
        """Fail over a tripped primary to its replica.

        The replica takes the slot; un-acked outstanding requests — sent
        to the primary, no terminal record shipped back — are replayed
        into it, idempotent by rid (anything the replica's log already
        acked is skipped, so a completion whose record was in flight at
        the cut never runs twice).  The demoted primary is retired but
        keeps its stats, so merged cluster counters stay whole.
        """
        link = self.links[sid]
        link.promoted = True
        old = self.shards[sid]
        old.on_oplog = None  # fence: the demoted primary stops shipping
        self.retired.append(old)
        self.shards[sid] = link.replica
        now = yield GetTime()
        self.promotions += 1
        self.promoted_at.append(now)
        replay = [
            req
            for req in self.outstanding[sid].values()
            if not link.is_acked(req.rid) and req.status == PENDING
        ]
        # Reset the slot's ledgers to the replica's ground state; the
        # replay below re-enters each request through normal dispatch
        # accounting.
        self.outstanding[sid] = {}
        self.dispatched[sid] = 0
        self.rerouted_away[sid] = 0
        self._last_done[sid] = self.shard_done(sid)
        self._strikes[sid] = 0
        self._clean[sid] = 0
        self.healthy[sid] = True
        for req in replay:
            req.renew(now)
            req.replays += 1
            self.replayed += 1
            self.dispatched[sid] += 1
            self.outstanding[sid][req.rid] = req
            yield from self.shards[sid].ingress.put(req)

    def _evacuate(self, sid: int):
        """Pull queued work off a tripped shard and re-dispatch it.

        Only *queued* (PENDING, still in a scannable queue) requests can
        be pruned back out.  What remains charged to the slot afterwards
        was in a worker's or the batcher's hands when the shard wedged:
        with a replica that work fails over via :meth:`_promote`; with
        none it is either quarantined (failed loudly, replicated mode)
        or — the original bug — silently lost, now at least counted in
        ``lost_inflight``.
        """
        shard = self.shards[sid]
        queued = lambda r: r.status == PENDING
        moved = yield from shard.ingress.prune(queued)
        moved += yield from shard.admission.prune(queued)
        for queue in shard.serial_queues.values():
            moved += yield from queue.prune(queued)
        moved += yield from shard.batch_queue.prune(queued)
        for req in moved:
            self.outstanding[sid].pop(req.rid, None)
            self.rerouted_away[sid] += 1
            req.reroutes += 1
            if req.reroutes > MAX_REROUTES:
                yield from self._fail(req)
                continue
            self.reroutes += 1
            # "rerouted", not "retries": a reroute is the cluster's doing
            # and must not be conflated with the tenant's retry spend.
            self.stats.bump(req.tenant.name, "rerouted")
            delay = REROUTE_BACKOFF * req.reroutes
            delay += self.retry_rng.randint(0, REROUTE_BACKOFF)
            self.limbo[req.rid] = req
            yield Fork(
                self._reroute_proc,
                (req, delay),
                name=f"{self.name}.reroute.{req.rid}.{req.reroutes}",
                priority=PRIO_SLEEPER,
                detached=True,
            )
        if self.links is not None:
            # Replicated cluster, but this slot has no replica left to
            # promote: quarantine the stranded work instead of dropping
            # it — the client hears FAILED, nothing vanishes.
            stranded = [
                req
                for req in self.outstanding[sid].values()
                if req.status == PENDING
            ]
            for req in stranded:
                self.outstanding[sid].pop(req.rid, None)
                self.rerouted_away[sid] += 1  # release the slot's credit
                self.quarantined += 1
                yield from self._fail(req)
        else:
            self.lost_inflight[sid] += self.inflight(sid)

    def _reroute_proc(self, req: Request, delay: int):
        """One-shot: back off, renew the deadline, rejoin at the front.

        ``renew``, not ``rearm``: a reroute is the cluster's fault, so it
        must not charge the tenant's retry budget (rearm's ``attempt``
        bump used to let ``_expire`` fail a twice-rerouted request that
        had never actually timed out).
        """
        yield Pause(delay)
        now = yield GetTime()
        req.renew(now)
        yield from self.ingress.put(req)
        self.limbo.pop(req.rid, None)

    def _retry_proc(self, req: Request, delay: int):
        """One-shot: back off, rearm (a real retry — budget charged),
        rejoin at the front."""
        yield Pause(delay)
        now = yield GetTime()
        req.rearm(now)
        yield from self.ingress.put(req)
        self.limbo.pop(req.rid, None)

    # -- outcomes ----------------------------------------------------------

    def _shed(self, req: Request):
        """Cluster admission refused (bucket dry or queue full)."""
        req.status = SHED
        for ledger in self.carry_ledgers.values():
            ledger.pop(req.rid, None)
        self.stats.bump(req.tenant.name, "shed")
        if req.reply_to is not None:
            yield from req.reply_to.put((SHED, req))

    def _fail(self, req: Request):
        """Reroute budget exhausted: the cluster gives up on it."""
        req.status = FAILED
        for ledger in self.carry_ledgers.values():
            ledger.pop(req.rid, None)
        self.stats.bump(req.tenant.name, "failed")
        if req.reply_to is not None:
            yield from req.reply_to.put((FAILED, req))

    def _expire(self, req: Request):
        """Deadline passed while waiting for credit: bounded retry."""
        tenant = req.tenant
        self.stats.bump(tenant.name, "timeouts")
        if req.attempt < tenant.max_retries:
            self.stats.bump(tenant.name, "retries")
            delay = tenant.backoff * (2 ** req.attempt)
            delay += self.retry_rng.randint(0, tenant.backoff)
            self.limbo[req.rid] = req
            yield Fork(
                self._retry_proc,
                (req, delay),
                name=f"{self.name}.retry.{req.rid}.{req.attempt}",
                priority=PRIO_SLEEPER,
                detached=True,
            )
        else:
            yield from self._fail(req)
