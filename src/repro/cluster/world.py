"""Assembling and running the sharded cluster world.

:func:`build_cluster_world` wires N :class:`~repro.server.server.RpcServer`
shards plus a :class:`~repro.cluster.balancer.LoadBalancer` onto one
:class:`~repro.runtime.pcr.World`; :func:`run_cluster` is the one-call
entry point used by the CLI, the benchmarks, the golden scenarios and
the chaos sweep.

By default the world gets ``ncpus == shards`` — each shard is "its own
machine", which is the point of sharding: the steady mix overloads one
simulated processor but fits two, so the cluster's throughput win over
the single-server world is capacity, not accounting.

The :class:`ClusterReport` folds the run down: per-shard statistics,
the balancer's admission/health story, *merged* per-tenant counters
(balancer + every shard, no double counting — the balancer never bumps
``admitted``) and latency histograms folded together with
:meth:`~repro.server.latency.LatencyHistogram.merge`.  Its ``digest``
is the cluster-level determinism witness.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.balancer import LoadBalancer
from repro.cluster.model import cluster_tenants
from repro.cluster.replication import (
    LEASE_TTL_POLLS,
    BalancerLease,
    ReplicationLink,
    StandbyBalancer,
)
from repro.kernel.config import KernelConfig
from repro.kernel.simtime import sec
from repro.runtime.pcr import World
from repro.server.clients import install_closed_loop, install_open_loop
from repro.server.latency import LatencyHistogram
from repro.server.model import ServerStats, TenantSpec
from repro.server.server import RpcServer

#: Default simulated run length, matching the single-server world.
DEFAULT_DURATION = sec(2)

#: Default balancer admission capacity (shared or per-tenant-divided).
DEFAULT_ADMISSION_CAPACITY = 64

#: Default per-shard worker pool.
DEFAULT_WORKERS_PER_SHARD = 4


@dataclass
class ClusterReport:
    """One cluster run, folded down to its SLO story."""

    scenario: str
    seed: int
    policy: str
    admission: str
    shards: int
    workers_per_shard: int
    duration: int
    #: Merged per-tenant counters (balancer + shards) and latency.
    merged: dict = field(default_factory=dict)
    #: The balancer's own counters, depth samples and health events.
    balancer: dict = field(default_factory=dict)
    #: Per-shard ``ServerStats.to_dict()`` snapshots, in shard order.
    per_shard: list = field(default_factory=list)
    #: Demoted primaries' snapshots (non-empty only after a promotion).
    retired: list = field(default_factory=list)
    digest: str = ""

    @property
    def completed(self) -> int:
        return self.merged["totals"]["completed"]

    @property
    def throughput_per_sec(self) -> float:
        seconds = self.duration / 1_000_000
        return self.completed / seconds if seconds else 0.0

    @property
    def quantiles(self) -> dict[str, int]:
        latency = self.merged["latency"]
        return {name: latency[name] for name in ("p50", "p95", "p99", "p999")}

    @property
    def shed_fraction(self) -> float:
        offered = self.merged["totals"]["offered"]
        return self.merged["totals"]["shed"] / offered if offered else 0.0

    def tenant_share(self, tenant: str) -> float:
        """This tenant's fraction of all completed requests."""
        total = self.completed
        row = self.merged["tenants"].get(tenant)
        return row["completed"] / total if row and total else 0.0

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "policy": self.policy,
            "admission": self.admission,
            "shards": self.shards,
            "workers_per_shard": self.workers_per_shard,
            "duration_us": self.duration,
            "throughput_per_sec": round(self.throughput_per_sec, 3),
            "shed_fraction": round(self.shed_fraction, 6),
            "digest": self.digest,
            "merged": self.merged,
            "balancer": self.balancer,
            "per_shard": self.per_shard,
            "retired": self.retired,
        }


def merge_cluster_stats(
    balancer: LoadBalancer, shards: tuple[RpcServer, ...]
) -> dict:
    """Cluster-wide rollup: counters summed, histograms merged.

    The balancer contributes ``offered``/``shed``/``failed``/``retries``
    (it never bumps ``admitted`` or records latency), each shard
    contributes everything downstream of dispatch, so summing the layers
    counts each event exactly once.
    """
    latency = LatencyHistogram()
    tenant_latency: dict[str, LatencyHistogram] = {}
    counters: dict[str, dict[str, int]] = {}
    batches = 0
    sources = [balancer.stats]
    sources += [s.stats for s in shards]
    # After a promotion the demoted primary leaves the routing table but
    # its counters must not leave the books; un-promoted replicas are
    # normally all-zero but are folded in for the same conservation
    # argument.
    sources += [s.stats for s in getattr(balancer, "retired", ())]
    for link in getattr(balancer, "links", None) or ():
        if not link.promoted:
            sources.append(link.replica.stats)
    for stats in sources:
        latency.merge(stats.latency)
        for name, hist in stats.tenant_latency.items():
            tenant_latency.setdefault(name, LatencyHistogram()).merge(hist)
        for name, row in stats.per_tenant.items():
            out = counters.setdefault(
                name, dict.fromkeys(ServerStats.KINDS, 0)
            )
            for kind, value in row.items():
                out[kind] += value
        batches += stats.batches
    totals = {
        kind: sum(row[kind] for row in counters.values())
        for kind in ServerStats.KINDS
    }
    return {
        "latency": latency.to_dict(),
        "tenants": {
            name: {
                **row,
                "latency": tenant_latency[name].to_dict()
                if name in tenant_latency
                else None,
            }
            for name, row in sorted(counters.items())
        },
        "totals": totals,
        "batches": batches,
    }


def build_cluster_world(
    config: KernelConfig | None = None,
    *,
    scenario: str = "steady",
    shards: int = 2,
    workers_per_shard: int = DEFAULT_WORKERS_PER_SHARD,
    policy: str = "p2c",
    admission: str = "wfq",
    admission_capacity: int = DEFAULT_ADMISSION_CAPACITY,
    tenants: tuple[TenantSpec, ...] | None = None,
    replicas: bool = False,
    standby: bool | None = None,
    install_traffic: bool = True,
) -> tuple[World, LoadBalancer]:
    """Build the cluster: shards started, balancer fronted, traffic on.

    ``install_traffic=False`` skips the per-tenant client loops — the
    workload compiler drives such a cluster with its own aggregate
    arrival chains (and possibly a cache tier in front), without the
    default generators double-offering traffic.

    ``replicas=True`` pairs every shard with a replica fed by a
    log-shipping :class:`~repro.cluster.replication.ReplicationLink` and
    arms the balancer lease; ``standby`` (defaults to ``replicas``)
    additionally parks a
    :class:`~repro.cluster.replication.StandbyBalancer` on the lease.
    With both off, the construction sequence is byte-identical to the
    pre-replication cluster — the pinned golden schedules depend on it.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    world = World(config)
    mix = tenants if tenants is not None else cluster_tenants(scenario)
    pool = tuple(
        RpcServer(
            world,
            mix,
            workers=workers_per_shard,
            name=f"shard{sid}",
        )
        for sid in range(shards)
    )
    for shard in pool:
        shard.start()
    links: tuple[ReplicationLink, ...] | None = None
    if replicas:
        built = []
        for sid, primary in enumerate(pool):
            replica = RpcServer(
                world,
                mix,
                workers=workers_per_shard,
                name=f"shard{sid}r",
            )
            replica.start()
            built.append(ReplicationLink(world, primary, replica, sid))
        links = tuple(built)
    use_standby = replicas if standby is None else standby
    lease = None
    if replicas or use_standby:
        lease = BalancerLease(LEASE_TTL_POLLS * world.kernel.config.quantum)
    balancer = LoadBalancer(
        world,
        pool,
        mix,
        policy=policy,
        admission_policy=admission,
        admission_capacity=admission_capacity,
        links=links,
        lease=lease,
    )
    for link in links or ():
        link.install()
    balancer.start()
    if use_standby:
        balancer.standby = StandbyBalancer(world, balancer, lease)
        balancer.standby.start()
    if install_traffic:
        for tenant in mix:
            if tenant.mode == "open":
                install_open_loop(balancer, tenant)
            else:
                install_closed_loop(balancer, tenant)
    return world, balancer


def summarize_cluster(
    balancer: LoadBalancer,
    *,
    scenario: str,
    seed: int,
    duration: int,
) -> ClusterReport:
    """Fold a finished (or still-live) cluster into a report."""
    shards = balancer.shards
    merged = merge_cluster_stats(balancer, shards)
    balancer_view = {
        **balancer.stats.to_dict(),
        "policy": balancer.policy,
        "admission": balancer.admission_policy,
        "window": balancer.window,
        "healthy": list(balancer.healthy),
        "dispatched": list(balancer.dispatched),
        "rerouted_away": list(balancer.rerouted_away),
        "trips": balancer.trips,
        "recoveries": balancer.recoveries,
        "reroutes": balancer.reroutes,
        "lost_inflight": list(balancer.lost_inflight),
        "promotions": balancer.promotions,
        "replayed": balancer.replayed,
        "quarantined": balancer.quarantined,
        "promoted_at": list(balancer.promoted_at),
        "throttled": {
            name: bucket.throttled
            for name, bucket in sorted(balancer.buckets.items())
        },
    }
    if balancer.links is not None:
        balancer_view["replication"] = [
            {
                "shard": link.sid,
                "shipped": link.shipped,
                "applied": link.applied,
                "acked": len(link.acked),
                "promoted": link.promoted,
            }
            for link in balancer.links
        ]
    if balancer.lease is not None:
        balancer_view["lease"] = balancer.lease.to_dict()
    if balancer.standby is not None:
        balancer_view["standby"] = balancer.standby.to_dict()
    per_shard = [shard.stats.to_dict() for shard in shards]
    retired = [server.stats.to_dict() for server in balancer.retired]
    report = ClusterReport(
        scenario=scenario,
        seed=seed,
        policy=balancer.policy,
        admission=balancer.admission_policy,
        shards=len(shards),
        workers_per_shard=shards[0].workers,
        duration=duration,
        merged=merged,
        balancer=balancer_view,
        per_shard=per_shard,
        retired=retired,
    )
    canonical = {
        "merged": merged,
        "balancer": balancer_view,
        "per_shard": per_shard,
        "retired": retired,
    }
    report.digest = hashlib.sha256(
        json.dumps(canonical, sort_keys=True).encode()
    ).hexdigest()
    return report


def run_cluster(
    *,
    seed: int = 0,
    scenario: str = "steady",
    shards: int = 2,
    workers_per_shard: int = DEFAULT_WORKERS_PER_SHARD,
    policy: str = "p2c",
    admission: str = "wfq",
    admission_capacity: int = DEFAULT_ADMISSION_CAPACITY,
    duration: int = DEFAULT_DURATION,
    ncpus: int | None = None,
    config_overrides: dict | None = None,
    raise_on_deadlock: bool = True,
    keep_world: bool = False,
    replicas: bool = False,
    standby: bool | None = None,
    tenants: tuple[TenantSpec, ...] | None = None,
) -> ClusterReport | tuple[ClusterReport, World, LoadBalancer]:
    """Run one cluster experiment and fold it into a report.

    ``ncpus`` defaults to ``shards`` (each shard is its own machine; a
    replicated cluster gets one more per replica machine);
    ``keep_world`` hands back the live world and balancer (caller owns
    shutdown) for tests that inspect queues and health state directly.
    """
    if ncpus is None:
        ncpus = shards * 2 if replicas else shards
    base = dict(seed=seed, ncpus=ncpus)
    if config_overrides:
        base.update(config_overrides)
    config = KernelConfig(**base)
    world, balancer = build_cluster_world(
        config,
        scenario=scenario,
        shards=shards,
        workers_per_shard=workers_per_shard,
        policy=policy,
        admission=admission,
        admission_capacity=admission_capacity,
        tenants=tenants,
        replicas=replicas,
        standby=standby,
    )
    world.run_for(duration, raise_on_deadlock=raise_on_deadlock)
    report = summarize_cluster(
        balancer, scenario=scenario, seed=seed, duration=duration
    )
    if keep_world:
        return report, world, balancer
    world.shutdown()
    return report
