"""Pluggable memory models for the simulated kernel (Section 5.5).

"We saw several places where the correctness of threaded code depended
on strong memory ordering, an assumption no longer true in some modern
multiprocessors with weakly ordered memory."

``KernelConfig(memory_model=...)`` selects how ``MemWrite``/``MemRead``
/``Fence`` traps behave:

=========  ==========================================================
``sc``     Sequential consistency (the default): every store commits
           globally at once; fences are no-ops.  Byte-identical to the
           seed behaviour — the golden-schedule guard pins it.
``tso``    x86-TSO: per-thread FIFO store buffers with store-to-load
           forwarding (:class:`StoreBufferMemory`).  Only store→load
           reordering is observable; the §5.5 hazards cannot occur.
``pso``    Per-thread buffers, FIFO per variable only: stores to
           different variables drain out of program order — the
           machine on which both §5.5 examples break.
``weak``   The legacy per-CPU randomly-delayed buffer
           (:class:`~repro.kernel.memory.MemorySystem`), kept
           byte-identical for the original case studies;
           ``memory_order="weak"`` is an alias.
=========  ==========================================================

The buffered models expose controller-visible ``mem.drain`` decision
points, so :mod:`repro.explore` can enumerate drain interleavings; the
litmus harness (:mod:`repro.memmodel.litmus`, ``python -m repro
litmus``) uses that to compute *reachable outcome sets* for the classic
SB/MP/LB/IRIW tests and check them against pinned expectation tables.
See ``docs/MEMORY.md``.
"""

from repro.kernel.memory import MemorySystem, SimVar, create_memory_model
from repro.memmodel.storebuffer import StoreBufferMemory

__all__ = [
    "MemorySystem",
    "SimVar",
    "StoreBufferMemory",
    "create_memory_model",
]
