"""Per-thread store-buffer memory models: x86-TSO and PSO.

The legacy :class:`~repro.kernel.memory.MemorySystem` models §5.5's
weak ordering with per-CPU buffers and randomly drawn visibility delays
— good for *reproducing* the paper's hazards, but its nondeterminism
lives in the RNG, outside the schedule-exploration seam.  These models
move the nondeterminism into the seam:

* **TSO** (``memory_model="tso"``, ``fifo=True``): each thread owns a
  FIFO store buffer.  A ``MemWrite`` enqueues locally; a ``MemRead``
  consults the thread's own buffer first (store-to-load forwarding) and
  falls back to shared memory.  Entries commit strictly in program
  order, so the only reordering a thread can observe of another is
  store→load — exactly x86-TSO.  Store-store reordering (the §5.5
  pointer-publication hazard) is *impossible*: FIFO drain means the
  record's fields always commit before the pointer.

* **PSO** (``memory_model="pso"``, ``fifo=False``): same buffers, but
  FIFO per *variable* only — stores to different variables may commit
  out of program order.  This is the §5.5 machine: the publication and
  init-once hazards are reachable, and a fence (or monitor entry/exit)
  is what restores safety.

Two drain mechanisms, both deterministic:

* **Age**: an entry becomes eligible ``[1, store_buffer_delay]`` µs
  after issue (delay drawn from the kernel's dedicated ``"memory"`` RNG
  stream), and eligible entries commit — in buffer order under TSO, in
  per-variable order under PSO — whenever the memory system is next
  consulted.  This is the behaviour of an uncontrolled run.
* **Decision**: when a :class:`~repro.explore.trace.ScheduleController`
  is attached, the kernel offers every currently committable entry as a
  ``mem.drain`` decision before each memory access (see
  ``Kernel._offer_mem_drains``), so the explorer can enumerate drain
  interleavings like any other nondeterministic choice.  Choice 0
  ("hold buffers") is the recorded default, which keeps record-mode
  runs byte-identical to uncontrolled ones.

Cross-thread commit order under pure aging is resolved in ascending
thread-id order — deterministic, and any other order is reachable
through the decision seam.
"""

from __future__ import annotations

from typing import Any

from repro.kernel.config import KernelConfig
from repro.kernel.memory import SimVar


class _Entry:
    """One buffered store."""

    __slots__ = ("var", "value", "visible_at", "token")

    def __init__(self, var: SimVar, value: Any, visible_at: int, token: Any) -> None:
        self.var = var
        self.value = value
        self.visible_at = visible_at
        self.token = token

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_Entry {self.var.name}={self.value!r} @{self.visible_at}>"


class StoreBufferMemory:
    """Per-thread store buffers, FIFO (TSO) or per-variable FIFO (PSO).

    Exposes the same counter names and call surface as
    :class:`~repro.kernel.memory.MemorySystem` plus the drain-decision
    seam (``drain_options``/``drain_option``) the kernel offers to the
    schedule controller.
    """

    #: The kernel's fence fast path keys off this.
    buffered = True
    #: Controller-visible ``mem.drain`` decision points exist.
    drainable = True

    def __init__(self, config: KernelConfig, rng: Any, *, fifo: bool) -> None:
        self.fifo = fifo
        self.weak = False  # not the legacy per-CPU model
        self._delay = max(1, config.store_buffer_delay)
        self._rng = rng
        #: Fences that actually drained a store buffer.
        self.fences = 0
        #: Every ``fence_cpu`` call, effective or not.
        self.fence_requests = 0
        self.stores = 0
        self.loads = 0
        #: Loads that missed a newer value still buffered by another
        #: thread — the §5.5 hazard counter.
        self.stale_loads = 0
        #: Entries committed through the controller's ``mem.drain`` seam.
        self.drain_decisions = 0
        self._buffers: dict[int, list[_Entry]] = {}
        self._owners: dict[int, Any] = {}

    # -- the MemorySystem surface -----------------------------------------

    def store(
        self,
        var: SimVar,
        value: Any,
        cpu_index: int,
        now: int,
        thread: Any = None,
        token: Any = None,
    ) -> None:
        self.stores += 1
        self._age(now)
        if thread is None:
            # Setup code outside any simulated thread: commit directly.
            var.committed = value
            var.token = token
            return
        buffer = self._buffers.get(thread.tid)
        if buffer is None:
            buffer = self._buffers[thread.tid] = []
            self._owners[thread.tid] = thread
        delay = self._rng.randint(1, self._delay)
        buffer.append(_Entry(var, value, now + delay, token))

    def load(self, var: SimVar, cpu_index: int, now: int) -> Any:
        return self.load_observed(var, cpu_index, now)[0]

    def load_observed(
        self, var: SimVar, cpu_index: int, now: int, thread: Any = None
    ) -> tuple[Any, Any]:
        self.loads += 1
        self._age(now)
        if thread is not None:
            buffer = self._buffers.get(thread.tid)
            if buffer:
                # Store-to-load forwarding: a thread always sees its own
                # newest buffered store.
                for entry in reversed(buffer):
                    if entry.var is var:
                        return entry.value, entry.token
        for tid, buffer in self._buffers.items():
            if thread is not None and tid == thread.tid:
                continue
            if any(entry.var is var for entry in buffer):
                # Another thread has a newer in-flight value we cannot see.
                self.stale_loads += 1
                break
        return var.committed, var.token

    def fence_cpu(
        self,
        cpu_index: int,
        vars_touched: list[SimVar] | None = None,
        thread: Any = None,
    ) -> None:
        """Drain the fencing *thread's* buffer completely, in program
        order.  Only effective fences count in ``fences`` (same
        convention as the legacy model)."""
        self.fence_requests += 1
        if thread is None:
            return
        buffer = self._buffers.get(thread.tid)
        if not buffer:
            return
        self.fences += 1
        for entry in buffer:
            self._commit(entry)
        buffer.clear()

    # -- the drain-decision seam ------------------------------------------

    def drain_options(self) -> list[tuple[tuple[int, int], str]]:
        """Every store the model could legally commit next.

        Returns ``(key, label)`` pairs; labels name the owning thread so
        decision traces read as interleavings.  Under TSO only the head
        of each thread's buffer is committable (FIFO); under PSO the
        oldest entry per (thread, variable) is.
        """
        options: list[tuple[tuple[int, int], str]] = []
        for tid in sorted(self._buffers):
            buffer = self._buffers[tid]
            if not buffer:
                continue
            owner = self._owners[tid].name
            if self.fifo:
                head = buffer[0]
                options.append(((tid, head.var.uid), f"{owner} drains {head.var.name}"))
            else:
                seen: set[int] = set()
                for entry in buffer:
                    if entry.var.uid in seen:
                        continue
                    seen.add(entry.var.uid)
                    options.append(
                        ((tid, entry.var.uid), f"{owner} drains {entry.var.name}")
                    )
        return options

    def drain_option(self, key: tuple[int, int], now: int) -> None:
        """Commit the option ``drain_options`` offered under ``key``."""
        tid, uid = key
        buffer = self._buffers.get(tid)
        if not buffer:
            raise ValueError(f"no buffered stores for thread {tid}")
        for index, entry in enumerate(buffer):
            if entry.var.uid == uid:
                if self.fifo and index != 0:
                    raise ValueError(
                        f"TSO drain must take the buffer head, not index {index}"
                    )
                self._commit(entry)
                del buffer[index]
                self.drain_decisions += 1
                return
        raise ValueError(f"thread {tid} has no buffered store to var uid {uid}")

    # -- internals ---------------------------------------------------------

    def _commit(self, entry: _Entry) -> None:
        entry.var.committed = entry.value
        entry.var.token = entry.token

    def _age(self, now: int) -> None:
        """Commit every age-eligible entry, respecting the model's
        ordering constraint (whole-buffer FIFO vs per-variable FIFO)."""
        for tid in sorted(self._buffers):
            buffer = self._buffers[tid]
            if not buffer:
                continue
            if self.fifo:
                index = 0
                while index < len(buffer) and buffer[index].visible_at <= now:
                    self._commit(buffer[index])
                    index += 1
                if index:
                    del buffer[:index]
            else:
                kept: list[_Entry] = []
                blocked: set[int] = set()
                for entry in buffer:
                    if entry.var.uid in blocked or entry.visible_at > now:
                        kept.append(entry)
                        blocked.add(entry.var.uid)
                    else:
                        self._commit(entry)
                if len(kept) != len(buffer):
                    self._buffers[tid] = kept

    def buffered_entries(self) -> int:
        """Total in-flight stores across all threads (for reports)."""
        return sum(len(buffer) for buffer in self._buffers.values())
