"""Litmus tests: reachable-outcome enumeration per memory model.

The classic four-test battery — SB (store buffering), MP (message
passing), LB (load buffering), IRIW (independent reads of independent
writes) — run as tiny kernel scenarios through the schedule-exploration
driver, so *every* source of nondeterminism (scheduler picks and
``mem.drain`` store-buffer commits alike) is enumerated rather than
sampled.  Each test carries a pinned expected-outcome table per model;
``enumerate_litmus`` reports the reachable set, and any outcome outside
the table is a violation (a soundness bug in the model).

What the tables show (see ``docs/MEMORY.md`` for the derivations):

* **SB** is the discriminating test: ``r0=r1=0`` requires both loads to
  bypass the other thread's buffered store — reachable under ``tso``
  and ``pso``, impossible under ``sc``.
* **MP** separates TSO from the §5.5 machine: the reorder outcome
  (flag observed, data missed) needs *store-store* reordering, which
  TSO's FIFO buffers forbid.  x86-TSO rescues the pointer-publication
  idiom; ``pso`` breaks it.
* **LB**'s relaxed outcome needs load-store reordering; no operational
  store-buffer model reaches it — all three tables coincide.
* **IRIW**'s disagreement outcome needs non-multi-copy-atomic stores;
  every model here commits to a single shared memory, so it stays
  unreachable everywhere.

Litmus scenarios register in :data:`repro.explore.scenarios.SCENARIOS`
as ``litmus-<test>-<model>``, which is what makes a saved witness trace
replayable through ``python -m repro explore --replay`` (and ``python
-m repro litmus --replay``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.kernel import Kernel, KernelConfig
from repro.kernel import primitives as p
from repro.kernel.config import MODEL_PSO, MODEL_SC, MODEL_TSO
from repro.kernel.memory import SimVar
from repro.kernel.simtime import msec, sec

#: The models the harness enumerates (legacy ``weak`` draws its
#: nondeterminism from the RNG, outside the decision seam, so it cannot
#: be enumerated — the weakmem case study covers it by sampling).
MODELS = (MODEL_SC, MODEL_TSO, MODEL_PSO)

#: An op is ("w", var, value) or ("r", var, register).
Op = tuple


def _all_outcomes(width: int) -> frozenset:
    outcomes = [()]
    for _ in range(width):
        outcomes = [prefix + (bit,) for prefix in outcomes for bit in (0, 1)]
    return frozenset(outcomes)


@dataclass(frozen=True)
class LitmusTest:
    """One litmus test: thread programs + pinned outcome tables."""

    name: str
    title: str
    variables: tuple[str, ...]
    threads: tuple[tuple[Op, ...], ...]
    registers: tuple[str, ...]
    #: model -> the exact reachable set of register tuples.
    expected: dict[str, frozenset]
    #: The outcome that distinguishes relaxed models from SC (shown in
    #: reports as "the interesting one"), and which models reach it.
    spotlight: tuple[int, ...]
    spotlight_models: tuple[str, ...]
    description: str = ""

    def relaxed_outcomes(self, model: str) -> frozenset:
        """Outcomes reachable under ``model`` but not under SC."""
        return self.expected[model] - self.expected[MODEL_SC]


SB = LitmusTest(
    name="sb",
    title="SB (store buffering)",
    variables=("x", "y"),
    threads=(
        (("w", "x", 1), ("r", "y", "r0")),
        (("w", "y", 1), ("r", "x", "r1")),
    ),
    registers=("r0", "r1"),
    expected={
        MODEL_SC: frozenset({(0, 1), (1, 0), (1, 1)}),
        MODEL_TSO: frozenset({(0, 0), (0, 1), (1, 0), (1, 1)}),
        MODEL_PSO: frozenset({(0, 0), (0, 1), (1, 0), (1, 1)}),
    },
    spotlight=(0, 0),
    spotlight_models=(MODEL_TSO, MODEL_PSO),
    description="each thread stores its flag then reads the other's; "
                "r0=r1=0 means both loads bypassed a buffered store — "
                "the one relaxation x86-TSO admits",
)

MP = LitmusTest(
    name="mp",
    title="MP (message passing)",
    variables=("x", "flag"),
    threads=(
        (("w", "x", 1), ("w", "flag", 1)),
        (("r", "flag", "r0"), ("r", "x", "r1")),
    ),
    registers=("r0", "r1"),
    expected={
        MODEL_SC: frozenset({(0, 0), (0, 1), (1, 1)}),
        MODEL_TSO: frozenset({(0, 0), (0, 1), (1, 1)}),
        MODEL_PSO: frozenset({(0, 0), (0, 1), (1, 0), (1, 1)}),
    },
    spotlight=(1, 0),
    spotlight_models=(MODEL_PSO,),
    description="§5.5 publication: writer fills data then raises a flag; "
                "seeing the flag but stale data needs store-store "
                "reordering — forbidden by TSO's FIFO, allowed by PSO",
)

LB = LitmusTest(
    name="lb",
    title="LB (load buffering)",
    variables=("x", "y"),
    threads=(
        (("r", "y", "r0"), ("w", "x", 1)),
        (("r", "x", "r1"), ("w", "y", 1)),
    ),
    registers=("r0", "r1"),
    expected={
        MODEL_SC: frozenset({(0, 0), (0, 1), (1, 0)}),
        MODEL_TSO: frozenset({(0, 0), (0, 1), (1, 0)}),
        MODEL_PSO: frozenset({(0, 0), (0, 1), (1, 0)}),
    },
    spotlight=(1, 1),
    spotlight_models=(),
    description="each thread loads then stores crosswise; r0=r1=1 needs "
                "load-store reordering, unreachable in any operational "
                "store-buffer model — a negative pin",
)

IRIW = LitmusTest(
    name="iriw",
    title="IRIW (independent reads of independent writes)",
    variables=("x", "y"),
    threads=(
        (("w", "x", 1),),
        (("w", "y", 1),),
        (("r", "x", "r0"), ("r", "y", "r1")),
        (("r", "y", "r2"), ("r", "x", "r3")),
    ),
    registers=("r0", "r1", "r2", "r3"),
    expected={
        MODEL_SC: _all_outcomes(4) - {(1, 0, 1, 0)},
        MODEL_TSO: _all_outcomes(4) - {(1, 0, 1, 0)},
        MODEL_PSO: _all_outcomes(4) - {(1, 0, 1, 0)},
    },
    spotlight=(1, 0, 1, 0),
    spotlight_models=(),
    description="two readers disagreeing on the order of independent "
                "writes needs non-multi-copy-atomic stores; every model "
                "here commits to one shared memory — a negative pin",
)

LITMUS_TESTS: dict[str, LitmusTest] = {t.name: t for t in (SB, MP, LB, IRIW)}

#: Sim-time horizon per schedule; litmus threads finish in microseconds.
_HORIZON = msec(20)
#: Store-buffer delay inside litmus runs: effectively infinite, so
#: buffered stores commit *only* through mem.drain decisions (or a
#: fence) — aging would otherwise collapse the reachable set toward SC.
_LITMUS_DELAY = sec(3600)


def _make_build(
    test: LitmusTest, model: str, state: dict
) -> Callable[[KernelConfig], tuple]:
    def build(config: KernelConfig):
        config.ncpus = 1
        config.memory_model = model
        config.store_buffer_delay = _LITMUS_DELAY
        config.switch_cost = 0
        state.clear()
        for register in test.registers:
            state[register] = 0
        kernel = Kernel(config)
        variables = {name: SimVar(f"{test.name}.{name}", 0) for name in test.variables}

        def make_body(ops: tuple[Op, ...]):
            def body():
                for op in ops:
                    if op[0] == "w":
                        yield p.MemWrite(variables[op[1]], op[2])
                    else:
                        state[op[2]] = yield p.MemRead(variables[op[1]])
                    yield p.Yield()

            return body

        for index, ops in enumerate(test.threads):
            kernel.fork_root(make_body(ops), name=f"{test.name}.t{index}", priority=4)
        return kernel, kernel.shutdown

    return build


def _make_check(
    test: LitmusTest, model: str, state: dict
) -> Callable[[Kernel], "str | None"]:
    allowed = test.expected[model]

    def check(kernel: Kernel) -> "str | None":
        outcome = tuple(state[register] for register in test.registers)
        state["outcome"] = outcome
        if outcome not in allowed:
            return (
                f"litmus {test.name}: outcome {outcome} is outside the "
                f"pinned {model} table — the model is unsound"
            )
        return None

    return check


_scenario_cache: dict[tuple[str, str], tuple[Any, dict]] = {}


def litmus_scenario(test_name: str, model: str) -> tuple[Any, dict]:
    """The ``ExploreScenario`` for one (test, model) pair plus the shared
    register-state dict its builds write into.  Cached so the registry
    entry and the enumerator share one state closure."""
    key = (test_name, model)
    cached = _scenario_cache.get(key)
    if cached is not None:
        return cached
    from repro.explore.scenarios import ExploreScenario

    test = LITMUS_TESTS[test_name]
    if model not in test.expected:
        raise KeyError(f"no pinned table for model {model!r}")
    state: dict = {}
    scenario = ExploreScenario(
        name=f"litmus-{test_name}-{model}",
        build=_make_build(test, model, state),
        horizon=_HORIZON,
        plan=None,
        expect_violation=False,
        check=_make_check(test, model, state),
        description=f"{test.title} under {model}: every outcome must stay "
                    "inside the pinned table",
    )
    _scenario_cache[key] = (scenario, state)
    return scenario, state


def explore_scenarios() -> list:
    """All litmus (test, model) scenarios, for the explore registry."""
    return [
        litmus_scenario(test_name, model)[0]
        for test_name in LITMUS_TESTS
        for model in MODELS
    ]


def default_plan(test_name: str, model: str) -> tuple[str, int]:
    """The default (strategy, budget) for one (test, model) pair.

    SB/MP/LB trees exhaust in at most a few hundred schedules, so DFS
    gives the exact reachable set.  IRIW's tree is 25k schedules under
    sc and ~400k under tso/pso (4 threads x drain interleavings) —
    there the seeded random walk covers all 15 reachable outcomes in
    well under 2000 schedules, and soundness (the forbidden outcome
    staying out) is checked on every run either way.
    """
    if test_name == "iriw":
        return "random", 2000
    return "exhaustive", 30000


@dataclass
class LitmusResult:
    """Reachable-outcome verdict for one (test, model) pair."""

    test: str
    model: str
    strategy: str
    budget: int
    runs: int = 0
    exhausted: bool = False
    #: outcome -> the ScheduleOutcome of its first witness schedule.
    witnesses: dict = field(default_factory=dict)
    #: Outcomes the check rejected (outside the pinned table).
    forbidden: list = field(default_factory=list)
    harness_failures: list = field(default_factory=list)

    @property
    def reached(self) -> frozenset:
        return frozenset(self.witnesses)

    @property
    def expected(self) -> frozenset:
        return LITMUS_TESTS[self.test].expected[self.model]

    @property
    def ok(self) -> bool:
        """Sound (nothing forbidden, no harness failure) and — when the
        space was searched to exhaustion — complete."""
        if self.forbidden or self.harness_failures:
            return False
        if self.exhausted:
            return self.reached == self.expected
        return self.reached <= self.expected

    def to_dict(self) -> dict:
        return {
            "test": self.test,
            "model": self.model,
            "strategy": self.strategy,
            "budget": self.budget,
            "runs": self.runs,
            "exhausted": self.exhausted,
            "reached": sorted(self.reached),
            "expected": sorted(self.expected),
            "missing": sorted(self.expected - self.reached),
            "forbidden": [list(outcome) for outcome, _ in self.forbidden],
            "harness_failures": list(self.harness_failures),
            "ok": self.ok,
        }


def enumerate_litmus(
    test_name: str,
    model: str,
    *,
    strategy: str = "exhaustive",
    budget: int = 3000,
    seed: int = 0,
) -> LitmusResult:
    """Enumerate reachable outcomes of one litmus test under one model.

    With the default exhaustive strategy the decision tree is searched
    depth-first until ``budget`` schedules or exhaustion; ``random`` and
    ``pct`` sample instead (useful for quick sweeps of the big IRIW
    tree).  Every run's outcome is checked against the pinned table —
    an outcome outside it is a soundness violation regardless of
    strategy.
    """
    from repro.explore.driver import run_schedule
    from repro.explore.strategies import make_strategy

    scenario, state = litmus_scenario(test_name, model)
    search = make_strategy(strategy, seed=seed)
    result = LitmusResult(
        test=test_name, model=model, strategy=search.name, budget=budget
    )
    for index in range(budget):
        if search.exhausted:
            result.exhausted = True
            break
        controller = search.controller(index)
        outcome = run_schedule(
            scenario, controller, seed=search.kernel_seed(index, seed), index=index
        )
        search.observe(outcome.trace)
        result.runs += 1
        registers = state.get("outcome")
        if outcome.harness_failures:
            result.harness_failures.append(
                {"index": index, "failures": list(outcome.harness_failures)}
            )
        if outcome.violation is not None:
            result.forbidden.append((registers, outcome.violation))
        elif registers is not None and registers not in result.witnesses:
            result.witnesses[registers] = outcome
    else:
        result.exhausted = bool(search.exhausted)
    return result
