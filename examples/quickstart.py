"""Quickstart: a tiny threaded application on the simulated PCR kernel.

Shows the core API surface in one place:

* thread bodies are generator functions that yield kernel traps;
* FORK/JOIN, Compute, Pause;
* a Mesa monitor protecting shared state, with a condition variable;
* running the kernel and reading its statistics.

Run:  python examples/quickstart.py
"""

from repro.kernel import Kernel, KernelConfig, msec, sec, usec
from repro.kernel import primitives as p
from repro.sync import ConditionVariable, Monitor, await_condition
from repro.kernel.primitives import Enter, Exit, Notify


def main() -> None:
    kernel = Kernel(KernelConfig(seed=42))

    # Shared state, Mesa style: a monitor, a condition, plain data.
    lock = Monitor("mailbox")
    nonempty = ConditionVariable(lock, "mailbox.nonempty")
    mailbox: list[str] = []

    def producer():
        """Put three messages in the box, 100 ms apart."""
        for n in range(3):
            yield p.Pause(msec(100))
            yield Enter(lock)
            try:
                mailbox.append(f"message-{n}")
                yield Notify(nonempty)
            finally:
                yield Exit(lock)
        return "producer-done"

    def consumer():
        """Drain three messages; WAIT always sits inside a loop."""
        received = []
        for _ in range(3):
            yield Enter(lock)
            try:
                yield from await_condition(nonempty, lambda: bool(mailbox))
                received.append(mailbox.pop(0))
            finally:
                yield Exit(lock)
            yield p.Compute(usec(200))  # pretend to process it
        return received

    def coordinator():
        """FORK both, JOIN both — the basic Mesa idiom."""
        producer_thread = yield p.Fork(producer, name="producer")
        consumer_thread = yield p.Fork(consumer, name="consumer", priority=5)
        yield p.Join(producer_thread)
        messages = yield p.Join(consumer_thread)
        print(f"[{(yield p.GetTime()) / 1000:.1f} ms] consumer got: {messages}")

    kernel.fork_root(coordinator, name="coordinator")
    kernel.run_for(sec(2))

    stats = kernel.stats
    print(
        f"simulated 2 s: {stats.threads_created} threads, "
        f"{stats.switches} switches, {stats.ml_enters} monitor entries, "
        f"{stats.cv_waits} CV waits ({stats.cv_timeouts} timed out)"
    )
    kernel.shutdown()


if __name__ == "__main__":
    main()
