"""The paper's motivating critical path: keystroke echo through the
X-server slack process, with and without YieldButNotToMe (Section 5.2).

"The time between when a key is pressed and the corresponding glyph is
echoed to a window is very important to the usability of these systems."

Run:  python examples/keyboard_echo.py
"""

from repro.casestudies.quantum import sweep_quantum
from repro.casestudies.ybntm import run_comparison


def main() -> None:
    print("=== The buffer-thread problem (Section 5.2) ===")
    comparison = run_comparison()
    plain = comparison.plain_yield
    fixed = comparison.ybntm
    print(f"plain YIELD       : {plain.flushes} flushes, "
          f"mean batch {plain.mean_batch:.1f}, "
          f"server busy {plain.server_busy / 1000:.1f} ms")
    print(f"YieldButNotToMe   : {fixed.flushes} flushes, "
          f"mean batch {fixed.mean_batch:.1f}, "
          f"server busy {fixed.server_busy / 1000:.1f} ms")
    print(f"-> {comparison.server_work_reduction:.1f}x less server work "
          f"(the paper reports 'about a three-fold performance improvement')")

    print()
    print("=== The quantum clocks the slack process (Section 6.3) ===")
    for strategy in ("ybntm", "sleep"):
        sweep = sweep_quantum(strategy)
        print(f"strategy={strategy}:")
        for quantum, result in sweep.results.items():
            print(
                f"  quantum {quantum / 1000:>6g} ms: "
                f"mean echo {result.mean_latency / 1000:>6.1f} ms, "
                f"mean batch {result.mean_batch:.2f}, "
                f"{result.flushes} flushes"
            )
    print("note the 1 ms collapse (no batching) and the 1 s burstiness")


if __name__ == "__main__":
    main()
