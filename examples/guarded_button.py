"""One-shots: the guarded button (paper Section 4.3).

"A guarded button must be pressed twice, in close, but not too close
succession.  They usually look like 'Butten' on the screen."  After the
first press a one-shot thread arms the button; a second click inside the
window invokes the action; expiry repaints the guard.

Run:  python examples/guarded_button.py
"""

from repro.kernel import Kernel, KernelConfig, msec, sec
from repro.paradigms.oneshot import GuardedButton


def drive(clicks: list[int], label: str) -> None:
    kernel = Kernel(KernelConfig(seed=0))
    fired = []
    button = GuardedButton(
        "delete-everything",
        lambda: fired.append(True),
        arming_period=msec(100),
        invocation_window=msec(1500),
    )
    outcomes = []

    def presser(at):
        def proc():
            result = yield from button.press()
            outcomes.append((at, result, button.label))
        return proc

    for at in clicks:
        kernel.post_at(at, lambda k, a=at: k.fork_root(presser(a), name=f"click@{a}"))
    kernel.run_for(sec(4))

    print(f"--- {label} ---")
    for at, result, shown in outcomes:
        print(f"  click at {at / 1000:>6.0f} ms -> {result:<14} label now {shown!r}")
    print(f"  action fired: {bool(fired)}, guard repaints: {button.repaints}")
    kernel.shutdown()


def main() -> None:
    drive([msec(100), msec(500)], "double click, well spaced: invokes")
    drive([msec(100), msec(150)], "second click too close: swallowed")
    drive([msec(100)], "single click: window expires, guard repainted")


if __name__ == "__main__":
    main()
