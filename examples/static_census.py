"""The Table 4 static census: generate the corpus, classify it like a
reading researcher, print the recovered distribution.

Also prints a couple of sample fragments so you can see what the
classifier is looking at.

Run:  python examples/static_census.py
"""

from repro.analysis.classifier import accuracy, census, classify
from repro.analysis.report import format_table
from repro.corpus import cedar_corpus, gvx_corpus
from repro.corpus.model import PAPER_TABLE4, PARADIGMS


def main() -> None:
    for name, corpus in (("Cedar", cedar_corpus()), ("GVX", gvx_corpus())):
        result = census(corpus, name)
        rows = [
            [paradigm, PAPER_TABLE4[name][paradigm], result.counts[paradigm],
             f"{100 * result.fraction(paradigm):.0f}%"]
            for paradigm in PARADIGMS
        ]
        rows.append(["TOTAL", sum(PAPER_TABLE4[name].values()),
                     result.total, ""])
        print()
        print(
            format_table(
                f"Table 4 ({name}) — classifier accuracy "
                f"{accuracy(corpus):.1%}",
                ["paradigm", "paper", "recovered", "share"],
                rows,
            )
        )

    print()
    print("=== sample fragments, as the census reads them ===")
    for fragment in cedar_corpus()[:60:20]:
        print(f"\n# {fragment.module}.{fragment.procedure} "
              f"-> classified as {classify(fragment)!r}")
        print(fragment.text)


if __name__ == "__main__":
    main()
