"""Run the synthetic Cedar and GVX worlds through the paper's benchmark
activities and print Tables 1-3, paper values alongside measured ones.

This is the full Section 3 reproduction in one script; expect roughly a
minute of wall-clock time for the 12 simulated worlds.

Run:  python examples/cedar_session.py
"""

from repro.analysis import dynamic
from repro.analysis.report import format_table


def main() -> None:
    for system in ("Cedar", "GVX"):
        results = dynamic.measure_all(system)
        rows = []
        for result in results:
            paper = dynamic.paper_row(system, result.activity)
            rows.append(
                [
                    result.activity,
                    f"{paper.forks_per_sec:g}/{result.forks_per_sec:.1f}",
                    f"{paper.switches_per_sec:g}/{result.switches_per_sec:.0f}",
                    f"{paper.waits_per_sec:g}/{result.waits_per_sec:.0f}",
                    f"{100 * paper.timeout_fraction:.0f}/{100 * result.timeout_fraction:.0f}",
                    f"{paper.ml_enters_per_sec:g}/{result.ml_enters_per_sec:.0f}",
                    f"{paper.distinct_cvs}/{result.distinct_cvs}",
                    f"{paper.distinct_mls}/{result.distinct_mls}",
                ]
            )
        print()
        print(
            format_table(
                f"{system}: Tables 1-3, shown as paper/measured",
                ["activity", "forks/s", "switch/s", "waits/s",
                 "tmo %", "ML/s", "#CVs", "#MLs"],
                rows,
            )
        )


if __name__ == "__main__":
    main()
