"""Render a "100 millisecond event history" — the microscopic analysis
view the paper's authors stared at for a year (Section 7).

Builds a small interactive scene (producer, consumer, sleeper, notifier)
with tracing on, then prints one 100 ms window of per-thread scheduling
events.

Run:  python examples/event_history.py
"""

from repro.analysis.timeline import render_history
from repro.kernel import Kernel, KernelConfig, msec, sec, usec
from repro.kernel import primitives as p
from repro.kernel.primitives import Enter, Exit, Notify
from repro.sync import ConditionVariable, Monitor, await_condition


def main() -> None:
    kernel = Kernel(KernelConfig(seed=11, trace=True))
    lock = Monitor("workq")
    nonempty = ConditionVariable(lock, "workq.nonempty", timeout=msec(40))
    queue = []
    keyboard = kernel.channel("keyboard")

    def producer():
        while True:
            yield p.Pause(msec(30))
            yield Enter(lock)
            try:
                queue.append("item")
                yield Notify(nonempty)
            finally:
                yield Exit(lock)

    def consumer():
        while True:
            yield Enter(lock)
            try:
                yield from await_condition(nonempty, lambda: bool(queue))
                queue.pop()
            finally:
                yield Exit(lock)
            yield p.Compute(msec(3))

    def notifier():
        while True:
            yield p.Channelreceive(keyboard)
            yield p.Compute(usec(200))

    def cursor_blink():
        while True:
            yield p.Pause(msec(45))
            yield p.Compute(usec(300))

    kernel.fork_root(producer, name="producer", priority=3)
    kernel.fork_root(consumer, name="consumer", priority=5)
    kernel.fork_root(notifier, name="Notifier", priority=7)
    kernel.fork_root(cursor_blink, name="blink", priority=4)
    kernel.post_every(msec(22), lambda k: keyboard.post("key"))
    kernel.run_for(sec(1))

    print(render_history(kernel.tracer, start=msec(500), end=msec(600)))
    kernel.shutdown()


if __name__ == "__main__":
    main()
