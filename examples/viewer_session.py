"""A miniature Cedar "Viewer" session: most of the Section 4 paradigms
cooperating in one application.

The scene: a window system with two viewers.  Input events flow through
a critical Notifier (defer work) into an MBQueue (serializer); clicks on
a guarded button (one-shot) trigger a document format job (worker +
defer work); repaints go through a slack process to the X server;
adjusting the window boundary forks painters to avoid lock-order
deadlock; a flaky client callback is survived via task rejuvenation; and
cache sleepers tick away in the background.

Run:  python examples/viewer_session.py
"""

from repro.kernel import Kernel, KernelConfig, msec, sec, usec
from repro.kernel import primitives as p
from repro.paradigms.deadlock_avoid import WindowManager
from repro.paradigms.defer import CriticalEventLoop
from repro.paradigms.oneshot import GuardedButton
from repro.paradigms.rejuvenate import RejuvenatingDispatcher
from repro.paradigms.serializer import MBQueue
from repro.paradigms.slack import SlackProcess
from repro.paradigms.sleeper import PeriodicalProcess
from repro.sync.queues import UnboundedQueue
from repro.xwindows.buffer_thread import PaintRequest
from repro.xwindows.server import XServer


def main() -> None:
    kernel = Kernel(KernelConfig(seed=7))
    log: list[str] = []

    def note(message):
        def _note(now):
            log.append(f"[{now / 1000:7.1f} ms] {message}")
        return _note

    # -- substrate: X server + slack-process repaint path ----------------
    server = XServer()
    paint_queue = UnboundedQueue("paints")

    def deliver(batch):
        yield from server.submit(batch)

    buffer_thread = SlackProcess("buffer", paint_queue, deliver,
                                 strategy="ybntm")
    kernel.fork_root(buffer_thread.proc, name="buffer", priority=5)

    # -- window system: deadlock avoiders ---------------------------------
    windows = WindowManager()
    upper = windows.add_window("upper-viewer")
    lower = windows.add_window("lower-viewer")

    # -- serializer: the viewer's MBQueue ----------------------------------
    mbq = MBQueue("viewer")
    kernel.fork_root(mbq.proc, name="viewer.serializer", priority=4)

    # -- one-shot: a guarded "Reformat" button ----------------------------
    def reformat_action():
        now = yield p.GetTime()
        note("guarded button fired: forking format job")(now)
        yield from _fork_format_job()

    button = GuardedButton("Reformat", lambda: None,
                           arming_period=msec(100),
                           invocation_window=msec(1500))
    button.action = reformat_action  # generator action

    def _fork_format_job():
        def format_job():
            yield p.Compute(msec(30))  # format a page
            for region in range(3):
                yield from paint_queue.put(
                    PaintRequest(region=f"page-region-{region}")
                )
                yield p.Compute(msec(1))
            now = yield p.GetTime()
            note("format job done, repaint queued")(now)

        yield p.Fork(format_job, name="format-worker", priority=3,
                     detached=True)

    # -- rejuvenating input dispatcher -------------------------------------
    raw_input = kernel.channel("raw-input")
    dispatcher = RejuvenatingDispatcher(raw_input)

    def fragile_tracker(event):
        if event == ("mouse", "glitch"):
            raise RuntimeError("tracker corrupted by odd event")

    dispatcher.register(fragile_tracker)
    kernel.fork_root(dispatcher.proc, name="dispatcher", priority=6)

    # -- critical notifier: defers all real handling -----------------------
    cooked_input = kernel.channel("cooked-input")

    def handler_factory(event):
        kind, payload = event

        def handle():
            if kind == "click-button":
                result = yield from button.press()
                now = yield p.GetTime()
                note(f"button press -> {result}")(now)
            elif kind == "adjust":
                yield from windows.adjust_boundary(upper, lower, payload,
                                                   fork_repaint=True)
                now = yield p.GetTime()
                note("boundary adjusted; painters forked")(now)
            elif kind == "type":
                yield from mbq.enqueue(lambda: None, key=payload,
                                       cost=usec(150))

        return handle

    notifier = CriticalEventLoop(cooked_input, handler_factory,
                                 worker_priority=4)
    kernel.fork_root(notifier.proc, name="Notifier", priority=7)

    # -- background sleepers, multiplexed on one thread ---------------------
    caches = PeriodicalProcess("caches")
    caches.add("font-cache-ager", msec(400), lambda: None)
    caches.add("name-cache-ager", msec(700), lambda: None)
    kernel.fork_root(caches.proc, name="caches", priority=2)

    # -- the user's session -------------------------------------------------
    def at(time, kind, payload=None):
        kernel.post_at(time, lambda k: cooked_input.post((kind, payload)))

    for i, char in enumerate("hello"):
        at(msec(50 + 60 * i), "type", char)
    at(msec(400), "click-button")       # arms the guard
    at(msec(800), "click-button")       # fires it
    at(msec(1200), "adjust", 24)        # boundary drag
    kernel.post_at(msec(600), lambda k: raw_input.post(("mouse", "move")))
    kernel.post_at(msec(650), lambda k: raw_input.post(("mouse", "glitch")))
    kernel.post_at(msec(700), lambda k: raw_input.post(("mouse", "move")))

    kernel.run_for(sec(4))

    for line in log:
        print(line)
    print()
    print(f"serializer processed {mbq.processed} keystrokes in order:",
          mbq.history)
    print(f"X server: {server.flushes} flushes, "
          f"mean batch {server.mean_batch_size:.1f} "
          f"(slack merge ratio {buffer_thread.merge_ratio:.2f})")
    print(f"windows repainted: upper={upper.repaints} lower={lower.repaints} "
          f"(forked painters: {windows.forked_repaints})")
    print(f"dispatcher survived {dispatcher.log.restarts} client crash(es); "
          f"background cache sleepers ran {caches.activations} times "
          "on one stack")
    kernel.shutdown()


if __name__ == "__main__":
    main()
