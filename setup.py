"""Legacy setup shim.

Kept because the target environment is offline without the ``wheel``
package, so ``pip install -e .`` must use the legacy setuptools path
instead of PEP 660.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
