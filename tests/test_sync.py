"""Monitors and condition variables: Mesa semantics (paper Section 2),
spurious lock conflicts (Section 6.1), timeout granularity (Section 6.3)."""

import pytest

from repro.kernel import (
    Kernel,
    KernelConfig,
    MonitorProtocolError,
    msec,
    sec,
    usec,
)
from repro.kernel import primitives as p
from repro.kernel.primitives import Broadcast, Enter, Exit, Notify, Wait
from repro.sync import (
    BoundedBuffer,
    BoundedQueue,
    ConditionVariable,
    Monitor,
    UnboundedQueue,
    await_condition,
    entered,
    monitored,
)
from repro.sync.monitor import MonitoredModule


def make_kernel(**overrides):
    defaults = dict(switch_cost=0, monitor_overhead=0)
    defaults.update(overrides)
    return Kernel(KernelConfig(**defaults))


class TestMonitorMutualExclusion:
    def test_only_one_thread_inside(self):
        kernel = make_kernel()
        lock = Monitor("m")
        inside = []
        max_inside = []

        def worker(tag):
            yield Enter(lock)
            try:
                inside.append(tag)
                max_inside.append(len(inside))
                yield p.Compute(usec(100))
                inside.remove(tag)
            finally:
                yield Exit(lock)

        for tag in range(5):
            kernel.fork_root(worker, args=(tag,))
        kernel.run_for(msec(10))
        assert max(max_inside) == 1
        assert lock.enters == 5

    def test_fifo_handoff_order(self):
        kernel = make_kernel()
        lock = Monitor("m")
        order = []

        def worker(tag):
            yield Enter(lock)
            try:
                order.append(tag)
                yield p.Compute(usec(50))
            finally:
                yield Exit(lock)

        for tag in range(4):
            kernel.fork_root(worker, args=(tag,))
        kernel.run_for(msec(10))
        assert order == [0, 1, 2, 3]

    def test_contention_is_counted(self):
        # On a uniprocessor contention needs the holder to leave the CPU
        # while holding — here it sleeps inside the monitor.
        kernel = make_kernel()
        lock = Monitor("m")

        def holder():
            yield Enter(lock)
            try:
                yield p.Pause(msec(100))
            finally:
                yield Exit(lock)

        def contender():
            yield p.Pause(msec(50))  # arrive while the holder sleeps
            yield Enter(lock)
            yield Exit(lock)

        kernel.fork_root(holder)
        kernel.fork_root(contender)
        kernel.run_for(sec(1))
        assert lock.blocks == 1
        assert kernel.stats.ml_contended == 1
        assert lock.contention == pytest.approx(0.5)

    def test_no_contention_for_uncontended_short_sections(self):
        # The common case in the paper: contention on 0.01%-0.1% of
        # entries, because critical sections are short and uniprocessor
        # scheduling rarely interleaves them.
        kernel = make_kernel()
        lock = Monitor("m")

        def worker():
            for _ in range(50):
                yield Enter(lock)
                yield p.Compute(usec(5))
                yield Exit(lock)
                yield p.Compute(usec(20))

        kernel.fork_root(worker)
        kernel.fork_root(worker)
        kernel.run_for(sec(1))
        assert lock.enters == 100
        assert lock.blocks == 0

    def test_reentry_is_an_error(self):
        kernel = make_kernel()
        lock = Monitor("m")

        def worker():
            yield Enter(lock)
            yield Enter(lock)

        kernel.fork_root(worker)
        with pytest.raises(MonitorProtocolError):
            kernel.run_for(msec(1))

    def test_exit_without_hold_is_an_error(self):
        kernel = make_kernel()
        lock = Monitor("m")

        def worker():
            yield Exit(lock)

        kernel.fork_root(worker)
        with pytest.raises(MonitorProtocolError):
            kernel.run_for(msec(1))

    def test_finishing_while_holding_is_an_error(self):
        kernel = make_kernel()
        lock = Monitor("m")

        def worker():
            yield Enter(lock)
            # finishes without Exit

        kernel.fork_root(worker)
        with pytest.raises(MonitorProtocolError):
            kernel.run_for(msec(1))

    def test_exception_unwinding_releases_via_finally(self):
        kernel = make_kernel(propagate_thread_errors=False)
        lock = Monitor("m")
        order = []

        def dies():
            result = yield from entered(lock, _raise_inside())
            return result

        def _raise_inside():
            yield p.Compute(usec(10))
            raise ValueError("inside monitor")

        def survivor():
            yield Enter(lock)
            order.append("survivor-acquired")
            yield Exit(lock)

        kernel.fork_root(dies)
        kernel.fork_root(survivor)
        kernel.run_for(msec(10))
        assert order == ["survivor-acquired"]
        assert not lock.held

    def test_monitored_module_decorator(self):
        kernel = make_kernel()

        class Counter(MonitoredModule):
            def __init__(self):
                super().__init__("Counter")
                self.value = 0

            @monitored
            def increment(self):
                before = self.value
                yield p.Compute(usec(10))  # a preemption window
                self.value = before + 1
                return self.value

        counter = Counter()
        results = []

        def worker():
            for _ in range(10):
                results.append((yield from counter.increment()))

        kernel.fork_root(worker)
        kernel.fork_root(worker)
        kernel.run_for(msec(10))
        # Mutual exclusion makes the read-modify-write atomic: all 20
        # increments land despite the compute window inside.
        assert counter.value == 20
        assert sorted(results) == list(range(1, 21))


class TestConditionVariables:
    def test_notify_wakes_exactly_one(self):
        kernel = make_kernel()
        lock = Monitor("m")
        cv = ConditionVariable(lock, "cond")
        woken = []

        def waiter(tag):
            yield Enter(lock)
            try:
                yield Wait(cv)
                woken.append(tag)
            finally:
                yield Exit(lock)

        def notifier():
            yield p.Pause(msec(50))  # let both waiters park
            yield Enter(lock)
            try:
                yield Notify(cv)
            finally:
                yield Exit(lock)

        kernel.fork_root(waiter, args=("a",))
        thread_b = kernel.fork_root(waiter, args=("b",))
        kernel.fork_root(notifier)
        kernel.run_for(sec(2))
        # Exactly-one-waiter-wakens: "b" is still parked on the CV.
        assert woken == ["a"]
        from repro.kernel import ThreadState

        assert thread_b.state is ThreadState.WAITING_CV

    def test_broadcast_wakes_everyone(self):
        kernel = make_kernel()
        lock = Monitor("m")
        cv = ConditionVariable(lock, "cond")
        woken = []

        def waiter(tag):
            yield Enter(lock)
            try:
                yield Wait(cv)
                woken.append(tag)
            finally:
                yield Exit(lock)

        def broadcaster():
            yield p.Pause(msec(50))
            yield Enter(lock)
            try:
                yield Broadcast(cv)
            finally:
                yield Exit(lock)

        for tag in range(3):
            kernel.fork_root(waiter, args=(tag,))
        kernel.fork_root(broadcaster)
        kernel.run_for(sec(1))
        assert sorted(woken) == [0, 1, 2]

    def test_wait_without_monitor_is_an_error(self):
        kernel = make_kernel()
        lock = Monitor("m")
        cv = ConditionVariable(lock, "cond")

        def bad():
            yield Wait(cv)

        kernel.fork_root(bad)
        with pytest.raises(MonitorProtocolError):
            kernel.run_for(msec(1))

    def test_notify_without_monitor_is_an_error(self):
        kernel = make_kernel()
        lock = Monitor("m")
        cv = ConditionVariable(lock, "cond")

        def bad():
            yield Notify(cv)

        kernel.fork_root(bad)
        with pytest.raises(MonitorProtocolError):
            kernel.run_for(msec(1))

    def test_wait_releases_monitor_while_waiting(self):
        kernel = make_kernel()
        lock = Monitor("m")
        cv = ConditionVariable(lock, "cond")
        order = []

        def waiter():
            yield Enter(lock)
            try:
                order.append("waiting")
                yield Wait(cv)
                order.append("woken")
            finally:
                yield Exit(lock)

        def visitor():
            yield p.Pause(msec(50))
            yield Enter(lock)
            try:
                order.append("visitor-inside")  # only possible if released
                yield Notify(cv)
            finally:
                yield Exit(lock)

        kernel.fork_root(waiter)
        kernel.fork_root(visitor)
        kernel.run_for(sec(1))
        assert order == ["waiting", "visitor-inside", "woken"]

    def test_wait_timeout_at_tick_granularity(self):
        kernel = make_kernel(quantum=msec(50))
        lock = Monitor("m")
        cv = ConditionVariable(lock, "cond", timeout=msec(60))
        stamps = []

        def waiter():
            yield Enter(lock)
            try:
                notified = yield Wait(cv)
                stamps.append((notified, (yield p.GetTime())))
            finally:
                yield Exit(lock)

        kernel.fork_root(waiter)
        kernel.run_for(sec(1))
        # 60 ms deadline -> wakes at the 100 ms tick, notified=False.
        assert stamps == [(False, msec(100))]
        assert cv.timeouts == 1
        assert kernel.stats.cv_timeouts == 1

    def test_per_wait_timeout_overrides_cv_default(self):
        kernel = make_kernel(quantum=msec(50))
        lock = Monitor("m")
        cv = ConditionVariable(lock, "cond", timeout=sec(10))
        stamps = []

        def waiter():
            yield Enter(lock)
            try:
                yield Wait(cv, timeout=msec(10))
                stamps.append((yield p.GetTime()))
            finally:
                yield Exit(lock)

        kernel.fork_root(waiter)
        kernel.run_for(sec(1))
        assert stamps == [msec(50)]

    def test_notified_wait_returns_true_and_cancels_timeout(self):
        kernel = make_kernel(quantum=msec(50))
        lock = Monitor("m")
        cv = ConditionVariable(lock, "cond", timeout=msec(200))
        results = []

        def waiter():
            yield Enter(lock)
            try:
                results.append((yield Wait(cv)))
            finally:
                yield Exit(lock)

        def notifier():
            yield p.Pause(msec(50))
            yield Enter(lock)
            try:
                yield Notify(cv)
            finally:
                yield Exit(lock)

        kernel.fork_root(waiter)
        kernel.fork_root(notifier)
        kernel.run_for(sec(1))
        assert results == [True]
        assert cv.timeouts == 0

    def test_await_condition_rechecks_predicate(self):
        # WAIT-in-a-WHILE-loop: a notify with the condition still false
        # must not let the consumer proceed.
        kernel = make_kernel()
        lock = Monitor("m")
        cv = ConditionVariable(lock, "cond")
        state = {"ready": False}
        outcomes = []

        def consumer():
            yield Enter(lock)
            try:
                yield from await_condition(cv, lambda: state["ready"])
                outcomes.append(state["ready"])
            finally:
                yield Exit(lock)

        def false_notifier():
            yield p.Pause(msec(50))
            yield Enter(lock)
            try:
                yield Notify(cv)  # condition still false!
            finally:
                yield Exit(lock)

        def true_notifier():
            yield p.Pause(msec(150))
            yield Enter(lock)
            try:
                state["ready"] = True
                yield Notify(cv)
            finally:
                yield Exit(lock)

        kernel.fork_root(consumer)
        kernel.fork_root(false_notifier)
        kernel.fork_root(true_notifier)
        kernel.run_for(sec(1))
        assert outcomes == [True]


class TestSpuriousLockConflicts:
    """Section 6.1: a NOTIFY wakes a higher-priority waiter that
    immediately blocks on the still-held monitor — unless rescheduling is
    deferred until monitor exit (the paper's fix)."""

    def _producer_consumer(self, kernel):
        lock = Monitor("m")
        cv = ConditionVariable(lock, "cond")
        state = {"items": 0}

        def consumer():
            for _ in range(10):
                yield Enter(lock)
                try:
                    yield from await_condition(cv, lambda: state["items"] > 0)
                    state["items"] -= 1
                finally:
                    yield Exit(lock)

        def producer():
            for _ in range(10):
                yield Enter(lock)
                try:
                    state["items"] += 1
                    yield Notify(cv)
                    yield p.Compute(usec(100))  # still inside the monitor
                finally:
                    yield Exit(lock)
                yield p.Compute(usec(100))

        # Consumer at higher priority than producer: the §6.1 uniprocessor
        # interpriority case.
        kernel.fork_root(consumer, priority=5)
        kernel.fork_root(producer, priority=3)
        kernel.run_for(sec(1))

    def test_immediate_notify_causes_spurious_conflicts(self):
        kernel = make_kernel(notify_semantics="immediate", switch_cost=usec(40))
        self._producer_consumer(kernel)
        assert kernel.stats.spurious_conflicts >= 9

    def test_deferred_notify_eliminates_spurious_conflicts(self):
        kernel = make_kernel(notify_semantics="deferred", switch_cost=usec(40))
        self._producer_consumer(kernel)
        assert kernel.stats.spurious_conflicts == 0

    def test_deferred_notify_makes_fewer_switches(self):
        counts = {}
        for semantics in ("immediate", "deferred"):
            kernel = make_kernel(notify_semantics=semantics, switch_cost=usec(40))
            self._producer_consumer(kernel)
            counts[semantics] = kernel.stats.switches
        assert counts["deferred"] < counts["immediate"]


class TestQueues:
    def test_bounded_buffer_producer_consumer(self):
        kernel = make_kernel()
        buffer = BoundedBuffer("buf", capacity=3)
        received = []

        def producer():
            for n in range(20):
                yield from buffer.put(n)
                yield p.Compute(usec(10))

        def consumer():
            for _ in range(20):
                item = yield from buffer.get()
                received.append(item)
                yield p.Compute(usec(25))

        kernel.fork_root(producer)
        kernel.fork_root(consumer)
        kernel.run_for(sec(1))
        assert received == list(range(20))
        assert buffer.max_depth <= 3

    def test_bounded_buffer_put_blocks_when_full(self):
        kernel = make_kernel()
        buffer = BoundedBuffer("buf", capacity=2)
        stamps = []

        def producer():
            for n in range(3):
                yield from buffer.put(n)
                stamps.append((n, (yield p.GetTime())))

        def slow_consumer():
            yield p.Pause(msec(100))
            yield from buffer.get()

        kernel.fork_root(producer)
        kernel.fork_root(slow_consumer)
        kernel.run_for(sec(1), raise_on_deadlock=False)
        # First two puts are immediate; the third waits for the consumer.
        assert stamps[0][1] == 0
        assert stamps[1][1] == 0
        assert stamps[2][1] >= msec(100)

    def test_unbounded_queue_get_timeout_returns_none(self):
        kernel = make_kernel(quantum=msec(50))
        queue = UnboundedQueue("q")
        results = []

        def consumer():
            results.append((yield from queue.get(timeout=msec(40))))

        kernel.fork_root(consumer)
        kernel.run_for(sec(1))
        assert results == [None]

    def test_unbounded_queue_get_all_drains(self):
        kernel = make_kernel()
        queue = UnboundedQueue("q")
        results = []

        def producer():
            for n in range(5):
                yield from queue.put(n)

        def consumer():
            yield p.Pause(msec(100))
            results.append((yield from queue.get_all()))

        kernel.fork_root(producer)
        kernel.fork_root(consumer)
        kernel.run_for(sec(1))
        assert results == [[0, 1, 2, 3, 4]]

    def test_distinct_use_tracking_for_table3(self):
        kernel = make_kernel()
        locks = [Monitor(f"m{i}") for i in range(7)]
        cv_lock = Monitor("cv-lock")
        cv = ConditionVariable(cv_lock, "cv", timeout=msec(10))

        def toucher():
            for lock in locks:
                yield Enter(lock)
                yield Exit(lock)
            yield Enter(cv_lock)
            try:
                yield Wait(cv)
            finally:
                yield Exit(cv_lock)

        kernel.fork_root(toucher)
        kernel.run_for(sec(1))
        assert len(kernel.stats.monitors_used) == 8
        assert len(kernel.stats.cvs_used) == 1


class TestBoundedQueue:
    def test_try_put_rejects_when_full(self):
        kernel = make_kernel()
        queue = BoundedQueue("q", capacity=2)
        outcomes = []

        def producer():
            for n in range(4):
                outcomes.append((yield from queue.try_put(n)))

        kernel.fork_root(producer)
        kernel.run_for(msec(10))
        assert outcomes == [True, True, False, False]
        assert queue.rejects == 2
        assert queue.max_depth == 2
        assert len(queue) == 2

    def test_put_zero_timeout_is_try_put(self):
        kernel = make_kernel()
        queue = BoundedQueue("q", capacity=1)
        outcomes = []

        def producer():
            outcomes.append((yield from queue.put("a", timeout=0)))
            outcomes.append((yield from queue.put("b", timeout=0)))

        kernel.fork_root(producer)
        kernel.run_for(msec(10))
        assert outcomes == [True, False]
        assert queue.rejects == 1

    def test_put_timeout_expires_while_full(self):
        kernel = make_kernel(quantum=msec(50))
        queue = BoundedQueue("q", capacity=1)
        outcomes = []

        def producer():
            yield from queue.put("first")
            start = yield p.GetTime()
            ok = yield from queue.put("second", timeout=msec(100))
            outcomes.append((ok, (yield p.GetTime()) - start))

        kernel.fork_root(producer)
        kernel.run_for(sec(1))
        assert outcomes == [(False, msec(100))]
        assert queue.rejects == 1

    def test_put_timeout_succeeds_when_slot_frees(self):
        kernel = make_kernel(quantum=msec(50))
        queue = BoundedQueue("q", capacity=1)
        outcomes = []

        def producer():
            yield from queue.put("first")
            ok = yield from queue.put("second", timeout=msec(500))
            outcomes.append(ok)

        def consumer():
            yield p.Pause(msec(100))
            yield from queue.get()

        kernel.fork_root(producer)
        kernel.fork_root(consumer)
        kernel.run_for(sec(1))
        assert outcomes == [True]
        assert queue.rejects == 0
        assert len(queue) == 1

    def test_get_timeout_returns_none_when_empty(self):
        kernel = make_kernel(quantum=msec(50))
        queue = BoundedQueue("q", capacity=4, get_timeout=msec(50))
        results = []

        def consumer():
            results.append((yield from queue.get()))
            results.append((yield from queue.get(timeout=msec(100))))

        kernel.fork_root(consumer)
        kernel.run_for(sec(1))
        assert results == [None, None]

    def test_multi_consumer_notify_wakes_exactly_one(self):
        """One put, three blocked consumers: exactly one gets the item,
        the others time out empty-handed (Mesa exactly-one NOTIFY)."""
        kernel = make_kernel(quantum=msec(50))
        queue = BoundedQueue("q", capacity=4)
        results = []

        def consumer(tag):
            item = yield from queue.get(timeout=msec(200))
            results.append((tag, item))

        def producer():
            yield p.Pause(msec(50))
            yield from queue.put("only")

        for tag in range(3):
            kernel.fork_root(consumer, args=(tag,))
        kernel.fork_root(producer)
        kernel.run_for(sec(1))
        delivered = [r for r in results if r[1] is not None]
        empty = [r for r in results if r[1] is None]
        assert len(delivered) == 1
        assert len(empty) == 2

    def test_fifo_order_under_contention(self):
        """Two producers racing three consumers: items come out in the
        exact order they went in, no loss, no duplication."""
        kernel = make_kernel()
        queue = BoundedQueue("q", capacity=4)
        put_order = []
        got_order = []

        def producer(base):
            for n in range(10):
                item = base + n
                ok = yield from queue.put(item)
                assert ok
                put_order.append(item)
                yield p.Compute(usec(30))

        def consumer():
            while len(got_order) < 20:
                item = yield from queue.get(timeout=msec(100))
                if item is not None:
                    got_order.append(item)
                    yield p.Compute(usec(70))

        kernel.fork_root(producer, args=(0,))
        kernel.fork_root(producer, args=(100,))
        for _ in range(3):
            kernel.fork_root(consumer)
        kernel.run_for(sec(5))
        assert got_order == put_order
        assert queue.puts == 20
        assert queue.gets == 20

    def test_prune_removes_matches_and_wakes_putters(self):
        kernel = make_kernel(quantum=msec(50))
        queue = BoundedQueue("q", capacity=3)
        removed_items = []
        late_put = []

        def producer():
            for n in range(3):
                yield from queue.put(n)
            # Queue is now full; this put blocks until prune frees slots.
            ok = yield from queue.put(99, timeout=msec(500))
            late_put.append(ok)

        def pruner():
            yield p.Pause(msec(100))
            removed = yield from queue.prune(lambda n: n % 2 == 0)
            removed_items.extend(removed)

        kernel.fork_root(producer)
        kernel.fork_root(pruner)
        kernel.run_for(sec(1))
        assert removed_items == [0, 2]
        assert late_put == [True]
        assert sorted(queue.items) == [1, 99]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedQueue("q", capacity=0)


class TestDiagnostics:
    def test_drain_waiters_lists_parked_threads(self):
        from repro.sync.condition import drain_waiters

        kernel = make_kernel()
        lock = Monitor("m")
        cv = ConditionVariable(lock, "cond")

        def waiter():
            yield Enter(lock)
            try:
                yield Wait(cv)
            finally:
                yield Exit(lock)

        kernel.fork_root(waiter, name="parked-one")
        kernel.fork_root(waiter, name="parked-two")
        kernel.run_for(msec(10))
        assert drain_waiters(cv) == ["parked-one", "parked-two"]
        kernel.shutdown()
