"""Replication and failover (repro.cluster.replication + balancer).

Covers the failover PR end to end:

* the pre-fix loss, pinned: a wedged shard with no replica strands its
  acknowledged in-flight work (now at least *counted* in
  ``lost_inflight``), while the replicated cluster promotes and loses
  nothing;
* reroutes no longer charge the tenant's retry budget (``renew`` vs
  ``rearm``) and are accounted separately from genuine retries;
* breaker recovery needs a sustained clean-strike window, not one
  dripped completion (the flapping regression);
* the op log ships and applies deterministically;
* the directed kill-primary and partition-balancer chaos scenarios
  pass their post-checks (zero lost acknowledged requests);
* the custody property: under sampled chaos plans — random kills
  included — every minted request is either terminal (DONE / SHED /
  FAILED) or still held by some component.  Nothing vanishes.
"""

from repro.analysis.faults import FaultPlan
from repro.cluster.replication import lost_requests
from repro.cluster.world import build_cluster_world
from repro.kernel import KernelConfig, msec, sec, usec
from repro.server.model import DONE, FAILED, PENDING, SHED, TenantSpec

RUN = msec(600)

#: The wedge tests need the full second: the steady mix's late FAILED
#: outcomes keep advancing the progress counter, so the breaker trips
#: only after they drain.
WEDGE_RUN = sec(1)

#: Observed health-probe cadence: the sleeper pauses 2 quanta, but
#: timeouts round up to quantum boundaries, so ticks land every 3rd
#: quantum (150ms at the default 50ms quantum).
PROBE = 3 * msec(50)


def _poison_shard0(world, balancer, *, ordered: bool = True) -> None:
    """Wedge shard 0 at msec(5): every worker plus the serializer.

    ``ordered=False`` for mixes without an ordered tenant — the router
    only has serial queues for tenants that registered as ordered.
    """
    shard0 = balancer.shards[0]
    poison = TenantSpec(
        name="poison", mode="open", cost=sec(30), cost_jitter=0.0,
        deadline=sec(10), max_retries=0,
    )
    ordered_poison = TenantSpec(
        name="ordered", mode="open", cost=sec(30), cost_jitter=0.0,
        deadline=sec(10), max_retries=0, ordered=True,
    )

    def inject(k):
        for _ in range(shard0.workers):
            shard0.net.post(shard0.make_request(poison, k.now))
        if ordered:
            shard0.net.post(shard0.make_request(ordered_poison, k.now))

    world.kernel.post_at(msec(5), inject)


def _track_minted(balancer) -> list:
    minted: list = []
    original = balancer.factory.make

    def make(*args, **kwargs):
        req = original(*args, **kwargs)
        minted.append(req)
        return req

    balancer.factory.make = make
    return minted


def _settled_losses(world, balancer, minted) -> list:
    lost = lost_requests(balancer, minted)
    for _ in range(3):
        if not lost:
            break
        world.kernel.run_for(msec(40), raise_on_deadlock=False)
        lost = lost_requests(balancer, minted)
    return lost


class TestEvacuationLoss:
    def test_unreplicated_wedge_strands_inflight_work(self):
        """The pre-fix behaviour, pinned: without a replica, tripping a
        wedged shard evacuates only what is still queued — the
        acknowledged in-flight remainder is stranded, and the new
        ``lost_inflight`` counter says exactly how much."""
        world, balancer = build_cluster_world(
            KernelConfig(seed=0, ncpus=2), scenario="steady"
        )
        _poison_shard0(world, balancer)
        world.run_for(WEDGE_RUN)
        try:
            assert balancer.trips >= 1
            assert balancer.promotions == 0
            assert sum(balancer.lost_inflight) > 0
        finally:
            world.shutdown()

    def test_replicated_wedge_promotes_and_loses_nothing(self):
        """With a replica the same wedge promotes instead: in-flight
        work is replayed, nothing is stranded, nothing is counted lost."""
        world, balancer = build_cluster_world(
            KernelConfig(seed=0, ncpus=4), scenario="steady",
            replicas=True, standby=False,
        )
        _poison_shard0(world, balancer)
        minted = _track_minted(balancer)
        world.run_for(WEDGE_RUN)
        try:
            assert balancer.trips >= 1
            assert balancer.promotions >= 1
            assert balancer.replayed >= 1
            assert sum(balancer.lost_inflight) == 0
            assert _settled_losses(world, balancer, minted) == []
        finally:
            world.shutdown()


class TestRerouteAccounting:
    def test_renew_does_not_charge_the_retry_budget(self):
        """``renew`` (reroutes, replays) refreshes the deadline without
        touching ``attempt``; ``rearm`` (real retries) charges it."""
        tenant = TenantSpec(name="t", deadline=msec(100), max_retries=1)
        world, balancer = build_cluster_world(
            KernelConfig(seed=0, ncpus=2), tenants=(tenant,)
        )
        try:
            req = balancer.make_request(tenant, now=0)
            assert req.attempt == 0 and req.expires_at == msec(100)
            req.renew(msec(50))
            assert req.attempt == 0
            assert req.expires_at == msec(50) + msec(100)
            assert req.status == PENDING
            req.rearm(msec(70))
            assert req.attempt == 1
            assert req.expires_at == msec(70) + msec(100)
        finally:
            world.shutdown()

    def test_reroutes_do_not_consume_retry_budget(self):
        """Regression for the double-charge: a rerouted request that
        never actually timed out keeps ``attempt == 0``, and reroutes
        land in the ``rerouted`` stat, not ``retries``.

        The tenant's deadline is far past the horizon, so no server-side
        expiry ever rearms anything — the *only* thing that could bump
        ``attempt`` is the old reroute-as-rearm bug."""
        patient = TenantSpec(
            name="patient", mode="open", rate_per_sec=600.0,
            cost=usec(500), cost_jitter=0.0, deadline=sec(5),
            max_retries=0,
        )
        world, balancer = build_cluster_world(
            KernelConfig(seed=0, ncpus=2), tenants=(patient,)
        )
        _poison_shard0(world, balancer, ordered=False)
        minted = _track_minted(balancer)
        world.run_for(WEDGE_RUN)
        try:
            assert balancer.trips >= 1
            rerouted = [r for r in minted if r.reroutes >= 1]
            assert rerouted, "the wedge should have rerouted something"
            # Pre-fix, _reroute_proc rearm()ed: attempt tracked reroutes
            # and no rerouted request could still be on attempt 0.
            assert all(r.attempt == 0 for r in rerouted)
            assert balancer.stats.total("rerouted") == balancer.reroutes
            assert balancer.stats.total("rerouted") > 0
            assert balancer.stats.total("retries") == 0
        finally:
            world.shutdown()


class TestCleanStrikeRecovery:
    def test_single_completion_does_not_reheal(self):
        """The flapping regression: one dripped completion must not
        close the breaker — recovery takes RECOVERY_CLEAN_TICKS
        *consecutive* advancing probes, and a stall restarts the window.

        Traffic-free mix, so the only progress is what the test bumps;
        the balancer's own probe (every PROBE) is the driver.
        """
        from repro.cluster.balancer import RECOVERY_CLEAN_TICKS

        idle = TenantSpec(name="idle", mode="closed", clients=0)
        world, balancer = build_cluster_world(
            KernelConfig(seed=0, ncpus=2), tenants=(idle,)
        )
        try:
            shard0 = balancer.shards[0]
            # Land mid-interval so each step below spans one probe tick.
            world.run_for(PROBE // 2)
            balancer.healthy[0] = False
            balancer._last_done[0] = balancer.shard_done(0)
            balancer._clean[0] = 0

            def drip():
                shard0.stats.bump("idle", "completed")

            drip()
            world.run_for(PROBE)  # one advancing probe
            assert balancer.healthy[0] is False  # pre-fix: healed here
            assert balancer._clean[0] == 1

            drip()
            world.run_for(PROBE)
            assert balancer.healthy[0] is False
            assert balancer._clean[0] == 2

            world.run_for(PROBE)  # stalled probe: the window restarts
            assert balancer.healthy[0] is False
            assert balancer._clean[0] == 0
            assert balancer.recoveries == 0

            for _ in range(RECOVERY_CLEAN_TICKS):
                drip()
                world.run_for(PROBE)
            assert balancer.healthy[0] is True
            assert balancer.recoveries == 1
        finally:
            world.shutdown()


class TestOpLog:
    def test_ship_apply_and_ack(self):
        """Records ship with a fixed delay, the applier folds them, and
        completions ack: terminal rids leave ``pending`` for ``acked``."""
        light = TenantSpec(
            name="light", mode="open", rate_per_sec=200.0,
            cost=usec(300), cost_jitter=0.0,
        )
        world, balancer = build_cluster_world(
            KernelConfig(seed=0, ncpus=2), shards=1, tenants=(light,),
            replicas=True, standby=False,
        )
        world.run_for(RUN)
        try:
            (link,) = balancer.links
            assert link.shipped > 0
            assert 0 < link.applied <= link.shipped
            completed = balancer.shards[0].stats.total("completed")
            assert completed > 0
            assert len(link.acked) > 0
            # Everything acked is terminal; nothing acked is pending.
            assert all(rid not in link.pending for rid in link.acked)
            done = [r for r in link.log if r.kind == "complete"]
            assert done and link.is_acked(done[0].rid)
        finally:
            world.shutdown()


class TestDirectedFailover:
    def test_kill_primary_zero_lost(self):
        """The tentpole scenario: kill a primary mid-batch; promotion
        replays the acknowledged in-flight work and the custody audit
        finds nothing lost."""
        from repro.analysis.chaos import DIRECTED_SCENARIOS, run_one

        scenario = next(s for s in DIRECTED_SCENARIOS
                        if s.name == "cluster-kill-primary")
        record = run_one(scenario, FaultPlan(), seed=0)
        assert record.ok, record.failures
        assert record.deadlocks == 0

    def test_partition_balancer_standby_takes_over(self):
        """Kill the balancer: the lease lapses, the standby seizes it,
        rebuilds routing state, and the cluster keeps completing."""
        from repro.analysis.chaos import DIRECTED_SCENARIOS, run_one

        scenario = next(s for s in DIRECTED_SCENARIOS
                        if s.name == "cluster-partition-balancer")
        record = run_one(scenario, FaultPlan(), seed=0)
        assert record.ok, record.failures
        assert record.deadlocks == 0


class TestCustodyProperty:
    def test_no_request_vanishes_under_chaos(self):
        """The property behind every other assertion here: under
        sampled fault plans (random kills included), every request the
        balancer minted is either terminal — DONE, SHED, FAILED — or
        still held by some queue, ledger, worker, or one-shot.  No
        fourth state, no silent disappearance."""
        plans = [
            FaultPlan(kill_thread_prob=0.01, timer_jitter_prob=0.3,
                      timer_jitter_max=msec(20)),
            FaultPlan(drop_notify_prob=0.05, spurious_wakeup_prob=0.05,
                      kill_thread_prob=0.005),
        ]
        for seed, plan in enumerate(plans):
            world, balancer = build_cluster_world(
                KernelConfig(seed=seed, ncpus=4, fault_plan=plan),
                scenario="steady", replicas=True, standby=False,
            )
            minted = _track_minted(balancer)
            world.run_for(RUN, raise_on_deadlock=False)
            try:
                lost = _settled_losses(world, balancer, minted)
                assert lost == [], (
                    f"seed {seed}: {[r.rid for r in lost]} vanished"
                )
                terminal = [r for r in minted if r.status != PENDING]
                assert terminal, "the run should have resolved requests"
                assert all(
                    r.status in (DONE, SHED, FAILED) for r in terminal
                )
            finally:
                world.shutdown()
