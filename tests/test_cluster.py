"""The sharded cluster world (repro.cluster).

Covers the deterministic token bucket, the weighted-fair admission
queue's invariants (weighted shares, isolation, no starvation,
determinism), and the cluster itself: seed -> digest determinism,
healthy steady-state, policy sensitivity, token-bucket wiring and the
wedged-shard health-breaker path.
"""

from types import SimpleNamespace

import pytest

from repro.cluster import TokenBucket, WfqQueue, run_cluster
from repro.cluster.admission import SCALE
from repro.kernel import Kernel, KernelConfig, msec, sec, usec
from repro.kernel import primitives as p

RUN = msec(600)


def item(tenant: str, value: int = 0) -> SimpleNamespace:
    """A minimal queueable: anything with ``.tenant.name``."""
    return SimpleNamespace(tenant=SimpleNamespace(name=tenant), value=value)


def drive(genfn, *, duration=sec(2), seed=0):
    """Run one root generator to completion on a fresh kernel."""
    kernel = Kernel(KernelConfig(seed=seed, switch_cost=0,
                                 monitor_overhead=0))
    out = {}

    def runner():
        out["result"] = yield from genfn()

    kernel.fork_root(runner)
    kernel.run_for(duration)
    return out["result"]


# ---------------------------------------------------------------------------
# TokenBucket
# ---------------------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_throttle(self):
        bucket = TokenBucket(100, burst=3)
        assert [bucket.take(0) for _ in range(4)] == [True, True, True, False]
        assert bucket.taken == 3
        assert bucket.throttled == 1

    def test_refill_is_exact_over_time(self):
        """After T seconds exactly floor(rate*T) tokens beyond the burst
        have been issued, however often take() polled (carry math)."""
        bucket = TokenBucket(333, burst=2)
        granted = 0
        for now in range(0, 1_000_001, 1000):  # poll every 1 ms for 1 s
            while bucket.take(now):
                granted += 1
        assert granted == 2 + 333

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(1000, burst=4)
        assert bucket.take(0)
        bucket._refill(sec(10))  # aeons pass
        assert bucket.tokens == 4

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(1000, burst=1)
        assert bucket.take(usec(5000))
        assert not bucket.take(usec(1000))  # stale timestamp: no refill

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(100, burst=0)


# ---------------------------------------------------------------------------
# WfqQueue invariants
# ---------------------------------------------------------------------------

class TestWfqQueue:
    def test_weighted_shares_under_backlog(self):
        """Both tenants saturated: service is proportional to weight.
        With weights 1:3 the first 12 dequeues split exactly 3:9."""
        q = WfqQueue("q", capacity=16, weights={"a": 1, "b": 3})

        def scenario():
            for i in range(12):
                assert (yield from q.try_put(item("a", i)))
                assert (yield from q.try_put(item("b", i)))
            for _ in range(12):
                yield from q.get()
            return dict(q.served)

        served = drive(scenario)
        assert served == {"a": 3, "b": 9}

    def test_low_weight_tenant_is_not_starved(self):
        """Weight 1 against weight 8, both permanently backlogged: the
        low-weight tenant still gets ~1/9 of the service, never zero."""
        q = WfqQueue("q", capacity=32, weights={"low": 1, "high": 8})

        def scenario():
            for i in range(18):
                assert (yield from q.try_put(item("low", i)))
                assert (yield from q.try_put(item("high", i)))
            for _ in range(18):
                yield from q.get()
            return dict(q.served)

        served = drive(scenario)
        assert served["low"] >= 1
        assert served["high"] >= 8 * served["low"] - 8  # ~8:1, integer slop

    def test_per_tenant_isolation(self):
        """A flood fills only its own sub-queue: its puts reject while a
        quiet tenant's puts still land."""
        q = WfqQueue("q", capacity=4, weights={"flood": 1, "quiet": 1})

        def scenario():
            accepted = 0
            for i in range(10):
                ok = yield from q.try_put(item("flood", i))
                accepted += bool(ok)
            quiet_ok = yield from q.try_put(item("quiet"))
            return accepted, quiet_ok

        accepted, quiet_ok = drive(scenario)
        assert accepted == 4
        assert quiet_ok is True
        assert q.rejects == 6
        assert q.depth_of("flood") == 4
        assert q.depth_of("quiet") == 1

    def test_idle_tenant_does_not_hoard_credit(self):
        """A tenant idle while others drain re-enters at the current
        virtual time — it does not burn accumulated 'credit' to lock out
        the backlogged tenant."""
        q = WfqQueue("q", capacity=16, weights={"busy": 1, "sleepy": 1})

        def scenario():
            for i in range(8):
                yield from q.try_put(item("busy", i))
            for _ in range(8):
                yield from q.get()  # vtime advances to 8*SCALE
            yield from q.try_put(item("sleepy"))
            return q.last_finish["sleepy"]

        finish = drive(scenario)
        assert finish == 8 * SCALE + SCALE  # vtime + one quantum, not SCALE

    def test_unknown_tenant_autoregisters_at_weight_one(self):
        q = WfqQueue("q", capacity=4, weights={"known": 2})

        def scenario():
            assert (yield from q.try_put(item("stranger")))
            got = yield from q.get()
            return got.tenant.name

        assert drive(scenario) == "stranger"
        assert q.weights["stranger"] == 1

    def test_blocking_put_applies_backpressure(self):
        """put() with a full sub-queue parks until get() frees a slot —
        nothing is dropped, rejects stays zero."""
        q = WfqQueue("q", capacity=2, weights={"t": 1})
        landed = []

        def producer():
            for i in range(5):
                assert (yield from q.put(item("t", i)))
                landed.append(i)

        def consumer():
            taken = []
            while len(taken) < 5:
                got = yield from q.get(timeout=msec(200))
                if got is not None:
                    taken.append(got.value)
                yield p.Compute(usec(100))
            return taken

        kernel = Kernel(KernelConfig(switch_cost=0, monitor_overhead=0))
        out = {}

        def consume():
            out["taken"] = yield from consumer()

        kernel.fork_root(producer)
        kernel.fork_root(consume)
        kernel.run_for(sec(2))
        assert landed == [0, 1, 2, 3, 4]
        assert out["taken"] == [0, 1, 2, 3, 4]
        assert q.rejects == 0

    def test_get_timeout_returns_none(self):
        q = WfqQueue("q", capacity=2, weights={"t": 1})

        def scenario():
            got = yield from q.get(timeout=msec(60))
            return got

        assert drive(scenario) is None

    def test_prune_removes_matches_across_tenants(self):
        q = WfqQueue("q", capacity=8, weights={"a": 1, "b": 1})

        def scenario():
            for i in range(3):
                yield from q.try_put(item("a", i))
                yield from q.try_put(item("b", i))
            removed = yield from q.prune(lambda it: it.value % 2 == 1)
            return sorted((it.tenant.name, it.value) for it in removed)

        removed = drive(scenario)
        assert removed == [("a", 1), ("b", 1)]
        assert len(q) == 4

    def test_service_order_is_deterministic(self):
        """Same seed, same interleaved producers: identical service
        order both runs — the property the cluster digest rests on."""

        def run_once():
            q = WfqQueue("q", capacity=8, weights={"a": 1, "b": 2})
            order = []
            kernel = Kernel(KernelConfig(seed=3, switch_cost=0,
                                         monitor_overhead=0))

            def producer(tenant, count):
                rng = kernel.rng.fork(f"prod.{tenant}")
                for i in range(count):
                    yield p.Compute(rng.randint(10, 200))
                    yield from q.put(item(tenant, i))

            def consumer():
                while len(order) < 12:
                    got = yield from q.get(timeout=msec(100))
                    if got is not None:
                        order.append((got.tenant.name, got.value))

            kernel.fork_root(producer, args=("a", 6))
            kernel.fork_root(producer, args=("b", 6))
            kernel.fork_root(consumer)
            kernel.run_for(sec(2))
            return order

        first, second = run_once(), run_once()
        assert first == second
        assert len(first) == 12


# ---------------------------------------------------------------------------
# The cluster world
# ---------------------------------------------------------------------------

class TestClusterWorld:
    def test_same_seed_same_digest(self):
        first = run_cluster(scenario="steady", duration=RUN)
        second = run_cluster(scenario="steady", duration=RUN)
        assert first.digest == second.digest
        assert first.completed > 0

    def test_different_seeds_diverge(self):
        first = run_cluster(scenario="steady", duration=RUN)
        second = run_cluster(scenario="steady", seed=1, duration=RUN)
        assert first.digest != second.digest

    def test_steady_cluster_is_healthy(self):
        report = run_cluster(scenario="steady", duration=RUN)
        assert report.balancer["trips"] == 0
        assert all(report.balancer["healthy"])
        assert report.shed_fraction < 0.10
        # every shard did real work — the balancer actually spreads load
        for stats in report.per_shard:
            assert stats["totals"]["completed"] > 0

    def test_routing_policies_differ(self):
        by_policy = {
            policy: run_cluster(scenario="steady", policy=policy,
                                duration=RUN).digest
            for policy in ("hash", "p2c")
        }
        assert by_policy["hash"] != by_policy["p2c"]

    def test_token_bucket_throttles_metered_tenant(self):
        """The skewed mix's ``metered`` tenant offers 3x its configured
        rate limit; the balancer's bucket visibly throttles it."""
        report = run_cluster(scenario="skewed", duration=RUN)
        assert report.balancer["throttled"]["metered"] > 0
        metered = report.merged["tenants"]["metered"]
        # Throttled requests are shed at the balancer, so completions
        # stay at or under the limit (200/s over the run), with slack
        # for the initial burst allowance.
        limit = 200 * (RUN / 1_000_000) + 32
        assert metered["completed"] <= limit

    def test_wfq_outperforms_drop_tail_for_interactive(self):
        """Under the skewed flood the interactive tenant completes at
        least as much and waits no longer with WFQ admission."""
        wfq = run_cluster(scenario="skewed", admission="wfq", duration=RUN)
        drop = run_cluster(scenario="skewed", admission="drop_tail",
                           duration=RUN)
        w = wfq.merged["tenants"]["interactive"]
        d = drop.merged["tenants"]["interactive"]
        assert w["completed"] >= d["completed"]
        assert wfq.tenant_share("bulk") < drop.tenant_share("bulk")

    def test_wedged_shard_trips_breaker_and_reroutes(self):
        """The directed chaos scenario end-to-end: poisoning every
        shard0 worker (and its serializer) trips the health probe,
        queued work is evacuated and re-dispatched, the watchdog stays
        quiet, and the survivors keep completing requests."""
        from repro.analysis.chaos import DIRECTED_SCENARIOS, run_one
        from repro.analysis.faults import FaultPlan

        scenario = next(s for s in DIRECTED_SCENARIOS
                        if s.name == "cluster-wedged-shard")
        record = run_one(scenario, FaultPlan(), seed=0)
        assert record.ok, record.failures
        assert record.deadlocks == 0
