"""Lifetime analysis unit tests."""

from repro.analysis.lifetimes import analyse, is_well_under_a_second
from repro.kernel.simtime import msec, sec


class TestLifetimeAnalysis:
    def test_classification_by_role(self):
        report = analyse([
            (msec(100), None),     # transient
            (msec(200), None),     # transient
            (sec(5), "worker"),    # worker
        ])
        assert report.transient_count == 2
        assert report.worker_count == 1
        assert report.mean_transient_lifetime == msec(150)
        assert report.max_transient_lifetime == msec(200)

    def test_transient_share(self):
        report = analyse([(1, None), (2, None), (3, "worker")])
        assert report.transient_share == 2 / 3

    def test_none_durations_skipped(self):
        report = analyse([(None, None), (msec(10), None)])
        assert report.finished == 1
        assert report.transient_count == 1

    def test_empty(self):
        report = analyse([])
        assert report.finished == 0
        assert report.mean_transient_lifetime == 0.0
        assert not is_well_under_a_second(report)

    def test_well_under_a_second_threshold(self):
        quick = analyse([(msec(100), None)])
        slow = analyse([(sec(2), None)])
        assert is_well_under_a_second(quick)
        assert not is_well_under_a_second(slow)
