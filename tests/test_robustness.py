"""Robustness across seeds: the calibrated worlds and case studies must
hold their shape for seeds we never tuned against."""

import pytest

from repro.casestudies.spurious import run_producer_consumer
from repro.casestudies.ybntm import run_comparison
from repro.kernel.simtime import sec
from repro.workloads.base import run_activity
from repro.workloads.cedar import CEDAR_ACTIVITIES, build_cedar_world
from repro.workloads.gvx import GVX_ACTIVITIES, build_gvx_world

SEEDS = [1, 17, 42]


@pytest.mark.parametrize("seed", SEEDS)
class TestSeedRobustness:
    def test_cedar_idle_bands(self, seed):
        result = run_activity(
            system="Cedar", activity="idle",
            build_world=build_cedar_world, install=None,
            warmup=sec(2), window=sec(6), seed=seed,
        )
        assert 0.4 <= result.forks_per_sec <= 1.6
        assert 100 <= result.switches_per_sec <= 180
        assert result.timeout_fraction >= 0.7
        assert result.distinct_cvs == 22
        assert result.max_live_threads <= 41

    def test_gvx_never_forks_any_seed(self, seed):
        result = run_activity(
            system="GVX", activity="keyboard",
            build_world=build_gvx_world,
            install=GVX_ACTIVITIES["keyboard"],
            warmup=sec(2), window=sec(6), seed=seed,
        )
        assert result.forks_per_sec == 0
        assert result.distinct_cvs == 7

    def test_ybntm_improvement_holds(self, seed):
        comparison = run_comparison(seed=seed)
        assert comparison.plain_yield.mean_batch <= 1.2
        assert comparison.ybntm.mean_batch >= 3.0
        assert comparison.server_work_reduction >= 2.0

    def test_spurious_fix_holds(self, seed):
        immediate = run_producer_consumer(
            notify_semantics="immediate", items=20, seed=seed
        )
        deferred = run_producer_consumer(
            notify_semantics="deferred", items=20, seed=seed
        )
        assert immediate.spurious_conflicts >= 18
        assert deferred.spurious_conflicts == 0


class TestCrossActivityShape:
    """Orderings between activities must hold regardless of seed."""

    @pytest.mark.parametrize("seed", [5])
    def test_keyboard_busier_than_idle(self, seed):
        idle = run_activity(
            system="Cedar", activity="idle",
            build_world=build_cedar_world, install=None,
            warmup=sec(2), window=sec(6), seed=seed,
        )
        keyboard = run_activity(
            system="Cedar", activity="keyboard",
            build_world=build_cedar_world,
            install=CEDAR_ACTIVITIES["keyboard"],
            warmup=sec(2), window=sec(6), seed=seed,
        )
        assert keyboard.ml_enters_per_sec > 3 * idle.ml_enters_per_sec
        assert keyboard.forks_per_sec > 3 * idle.forks_per_sec
        assert keyboard.timeout_fraction < idle.timeout_fraction
