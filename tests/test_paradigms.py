"""The ten thread-usage paradigms (paper Section 4)."""

import pytest

from repro.kernel import Deadlock, Kernel, KernelConfig, msec, sec, usec
from repro.kernel import primitives as p
from repro.paradigms.deadlock_avoid import (
    FlakyClientError,
    WindowManager,
    finalization_service,
    fork_callback,
)
from repro.paradigms.defer import CriticalEventLoop, defer_work, run_deferred
from repro.paradigms.encapsulated import (
    CallbackRegistry,
    delayed_fork,
    periodical_fork,
)
from repro.paradigms.exploit import parallel_map, serial_map
from repro.paradigms.oneshot import GUARDED, GuardedButton, one_shot
from repro.paradigms.pump import Pump
from repro.paradigms.rejuvenate import RejuvenatingDispatcher, rejuvenating
from repro.paradigms.serializer import CoalescingSerializer, MBQueue
from repro.paradigms.slack import SlackProcess
from repro.paradigms.sleeper import PeriodicalProcess, Sleeper
from repro.sync.queues import BoundedBuffer, UnboundedQueue


def make_kernel(**overrides):
    defaults = dict(switch_cost=0, monitor_overhead=0)
    defaults.update(overrides)
    return Kernel(KernelConfig(**defaults))


class TestDeferWork:
    def test_defer_work_returns_before_work_completes(self):
        kernel = make_kernel()
        stamps = {}

        def slow_print_job():
            yield p.Compute(msec(500))
            stamps["printed"] = yield p.GetTime()

        def command():
            yield from defer_work(slow_print_job, name="print")
            stamps["returned"] = yield p.GetTime()

        kernel.fork_root(command)
        kernel.run_for(sec(1))
        # Latency reduction: the command returns immediately.
        assert stamps["returned"] == 0
        assert stamps["printed"] == msec(500)

    def test_run_deferred_is_joinable(self):
        kernel = make_kernel()
        results = []

        def job():
            yield p.Compute(usec(10))
            return "formatted"

        def command():
            handle = yield from run_deferred(job)
            results.append((yield p.Join(handle)))

        kernel.fork_root(command)
        kernel.run_for(msec(10))
        assert results == ["formatted"]

    def test_critical_event_loop_forks_per_event(self):
        kernel = make_kernel()
        handled = []

        def handler_factory(event):
            def handler():
                yield p.Compute(msec(5))  # "real work" at low priority
                handled.append(event)

            return handler

        keyboard = kernel.channel("keyboard")
        notifier = CriticalEventLoop(keyboard, handler_factory, worker_priority=3)
        kernel.fork_root(notifier.proc, name="Notifier", priority=7)
        for i in range(5):
            kernel.post_at(msec(10 * (i + 1)), lambda k, i=i: keyboard.post(i))
        kernel.run_for(sec(1))
        assert sorted(handled) == [0, 1, 2, 3, 4]
        assert notifier.forks_made == 5

    def test_critical_loop_stays_responsive_under_load(self):
        # The notifier (priority 7) must pick up each event immediately
        # even while a forked worker still grinds at priority 3.
        kernel = make_kernel()

        def handler_factory(event):
            def handler():
                yield p.Compute(msec(40))

            return handler

        keyboard = kernel.channel("keyboard")
        notifier = CriticalEventLoop(keyboard, handler_factory, worker_priority=3)

        kernel.fork_root(notifier.proc, name="Notifier", priority=7)
        kernel.post_at(msec(10), lambda k: keyboard.post("a"))
        kernel.post_at(msec(12), lambda k: keyboard.post("b"))
        kernel.run_for(sec(1))
        assert notifier.events_seen == 2


class TestPumps:
    def test_pipeline_preserves_order(self):
        kernel = make_kernel()
        source = UnboundedQueue("src")
        middle = BoundedBuffer("mid", capacity=4)
        sink = UnboundedQueue("dst")
        received = []

        stage1 = Pump("stage1", source, middle, transform=lambda x: x * 2)
        stage2 = Pump("stage2", middle, sink, transform=lambda x: x + 1)

        def producer():
            for n in range(10):
                yield from source.put(n)
                yield p.Compute(usec(20))

        def collector():
            for _ in range(10):
                received.append((yield from sink.get()))

        kernel.fork_root(stage1.proc, name="stage1")
        kernel.fork_root(stage2.proc, name="stage2")
        kernel.fork_root(producer)
        kernel.fork_root(collector)
        kernel.run_for(sec(1), raise_on_deadlock=False)
        assert received == [n * 2 + 1 for n in range(10)]
        assert stage1.items_pumped == 10

    def test_pump_fanout_and_drop(self):
        kernel = make_kernel()
        source = UnboundedQueue("src")
        sink = UnboundedQueue("dst")
        received = []

        def expand_evens(x):
            if x % 2:
                return None  # drop odds
            return [x, x]  # duplicate evens

        pump = Pump("expander", source, sink, transform=expand_evens)

        def producer():
            for n in range(6):
                yield from source.put(n)

        def collector():
            for _ in range(6):
                received.append((yield from sink.get()))

        kernel.fork_root(pump.proc, name="expander")
        kernel.fork_root(producer)
        kernel.fork_root(collector)
        kernel.run_for(sec(1), raise_on_deadlock=False)
        assert received == [0, 0, 2, 2, 4, 4]

    def test_pump_reads_from_device_channel(self):
        kernel = make_kernel()
        device = kernel.channel("raw-input")
        sink = UnboundedQueue("cooked")
        pump = Pump("preprocessor", device, sink,
                    transform=lambda event: f"cooked:{event}")

        kernel.fork_root(pump.proc, name="preprocessor")
        kernel.post_at(msec(10), lambda k: device.post("keydown"))
        kernel.run_for(msec(100))
        assert list(sink.items) == ["cooked:keydown"]


class TestSlackProcess:
    def _run_echo(self, strategy, producer_priority, slack_priority, **cfg):
        kernel = make_kernel(**cfg)
        queue = UnboundedQueue("paint-requests")
        delivered = []

        def deliver(batch):
            delivered.append(list(batch))
            yield p.Compute(usec(10))

        slack = SlackProcess("buffer", queue, deliver, strategy=strategy)

        def imaging():
            # Bursts of 5 paint requests, tiny gaps between them.
            for burst in range(4):
                for i in range(5):
                    # Overlapping requests: only 2 distinct screen regions,
                    # so a gathered burst of 5 merges down to 2.
                    yield from queue.put(_Paint(key=i % 2, burst=burst))
                    yield p.Compute(usec(30))
                yield p.Pause(msec(100))

        kernel.fork_root(slack.proc, name="buffer", priority=slack_priority)
        kernel.fork_root(imaging, name="imaging", priority=producer_priority)
        kernel.run_for(sec(1))
        return slack, delivered

    def test_ybntm_strategy_merges_bursts(self):
        slack, delivered = self._run_echo("ybntm", 3, 5)
        # With YieldButNotToMe the producer fills the queue during the
        # donation, so requests batch instead of trickling one by one.
        assert slack.merge_ratio > 2.0

    def test_plain_yield_fails_to_merge_when_higher_priority(self):
        # §5.2: "the scheduler always chooses the buffer thread to run,
        # not the image thread ... no merging occurs."
        slack, delivered = self._run_echo("yield", 3, 5)
        assert slack.merge_ratio == pytest.approx(1.0)

    def test_plain_yield_works_at_equal_priority(self):
        slack, delivered = self._run_echo("yield", 4, 4)
        assert slack.merge_ratio > 2.0

    def test_ybntm_sends_fewer_batches_than_yield(self):
        ybntm, _ = self._run_echo("ybntm", 3, 5)
        plain, _ = self._run_echo("yield", 3, 5)
        assert ybntm.batches_sent < plain.batches_sent

    def test_merge_keeps_latest_per_key(self):
        slack, delivered = self._run_echo("ybntm", 3, 5)
        for batch in delivered:
            keys = [item.key for item in batch]
            assert len(keys) == len(set(keys))

    def test_timed_queue_timeout_delivers_no_phantom_batch(self):
        """A slack process on a default-timeout queue must treat a timed-out
        (None) get as "poll again", not as an item to batch."""
        kernel = make_kernel(quantum=msec(50))
        queue = UnboundedQueue("q", get_timeout=msec(50))
        delivered = []

        def deliver(batch):
            delivered.append(list(batch))
            yield p.Compute(usec(10))

        slack = SlackProcess("buffer", queue, deliver, strategy="ybntm")

        def producer():
            yield p.Pause(msec(400))  # several empty timeouts first
            yield from queue.put(_Paint(key=0, burst=0))

        kernel.fork_root(slack.proc, name="buffer", priority=4)
        kernel.fork_root(producer, name="producer", priority=4)
        kernel.run_for(sec(1))
        assert len(delivered) == 1
        assert all(item is not None for batch in delivered for item in batch)


class _Paint:
    def __init__(self, key, burst):
        self.key = key
        self.burst = burst

    def __repr__(self):
        return f"paint({self.key},{self.burst})"


class TestSleepers:
    def test_sleeper_activates_periodically(self):
        kernel = make_kernel()
        ticks = []
        # Zero work cost: wakes land exactly on the 100 ms grid.
        sleeper = Sleeper("cache-ager", msec(100), lambda: ticks.append(1),
                          work_cost=0)
        kernel.fork_root(sleeper.proc, name="cache-ager")
        kernel.run_for(sec(1))
        assert sleeper.activations == 10

    def test_sleeper_period_stretches_with_tick_granularity(self):
        # §6.3 in miniature: with 100 us of work per activation the next
        # 100 ms deadline lands just past a tick, so the sleeper wakes at
        # the *following* 50 ms tick — an effective 150 ms period.
        kernel = make_kernel()
        sleeper = Sleeper("drifter", msec(100), lambda: None,
                          work_cost=usec(100))
        kernel.fork_root(sleeper.proc, name="drifter")
        kernel.run_for(sec(1))
        assert sleeper.activations == 7  # 100,250,400,...,1000 ms

    def test_periodical_process_multiplexes_closures(self):
        kernel = make_kernel()
        runs = {"fast": 0, "slow": 0}
        pp = PeriodicalProcess()
        pp.add("fast", msec(100), lambda: runs.__setitem__("fast", runs["fast"] + 1))
        pp.add("slow", msec(300), lambda: runs.__setitem__("slow", runs["slow"] + 1))
        kernel.fork_root(pp.proc, name="PeriodicalProcess")
        kernel.run_for(sec(1))
        assert runs["fast"] >= 8
        assert 2 <= runs["slow"] <= 4

    def test_periodical_process_uses_one_stack(self):
        kernel = make_kernel(stack_reservation=100 * 1024)
        pp = PeriodicalProcess()
        for i in range(50):
            pp.add(f"closure-{i}", msec(200), lambda: None)
        kernel.fork_root(pp.proc, name="PeriodicalProcess")
        kernel.run_for(msec(10))
        # 50 logical sleepers, one 100 KB stack — the §5.1 economy.
        assert kernel.stats.stack_bytes == 100 * 1024

    def test_forked_sleepers_use_many_stacks(self):
        kernel = make_kernel(stack_reservation=100 * 1024)
        for i in range(50):
            sleeper = Sleeper(f"s{i}", msec(200), lambda: None)
            kernel.fork_root(sleeper.proc, name=f"s{i}")
        kernel.run_for(msec(10))
        assert kernel.stats.stack_bytes == 50 * 100 * 1024

    def test_sleeper_runs_generator_work(self):
        kernel = make_kernel()
        log = []

        def work():
            yield p.Compute(usec(10))
            log.append((yield p.GetTime()))

        sleeper = Sleeper("gen-worker", msec(100), work, work_cost=0)
        kernel.fork_root(sleeper.proc, name="gen-worker")
        # The 10 us of generator work pushes each deadline past a tick:
        # activations at 100 ms and 250 ms within 350 ms (tick drift).
        kernel.run_for(msec(350))
        assert log == [msec(100) + usec(10), msec(250) + usec(10)]


class TestOneShots:
    def test_one_shot_fires_once_then_exits(self):
        kernel = make_kernel()
        fired = []
        proc = one_shot(msec(120), lambda: fired.append(1))
        kernel.fork_root(proc, name="oneshot")
        kernel.run_for(sec(1))
        assert fired == [1]
        assert kernel.stats.live_threads == 0

    def _press_at(self, kernel, button, at, outcomes):
        def presser():
            result = yield from button.press()
            outcomes.append((at, result))

        kernel.post_at(at, lambda k: k.fork_root(presser, name=f"press@{at}"))

    def test_guarded_button_double_click_invokes(self):
        kernel = make_kernel()
        fired = []
        button = GuardedButton(
            "delete", lambda: fired.append(1),
            arming_period=msec(100), invocation_window=msec(1500),
        )
        outcomes = []
        self._press_at(kernel, button, msec(10), outcomes)    # arm
        self._press_at(kernel, button, msec(400), outcomes)   # invoke
        kernel.run_for(sec(3))
        assert fired == [1]
        assert button.invocations == 1

    def test_guarded_button_too_close_second_click_ignored(self):
        kernel = make_kernel()
        fired = []
        button = GuardedButton(
            "delete", lambda: fired.append(1),
            arming_period=msec(100), invocation_window=msec(1500),
        )
        outcomes = []
        self._press_at(kernel, button, msec(10), outcomes)
        self._press_at(kernel, button, msec(50), outcomes)  # inside arming
        kernel.run_for(sec(3))
        assert fired == []
        assert ("ignored" in [r for _, r in outcomes])

    def test_guarded_button_expiry_repaints_guard(self):
        kernel = make_kernel()
        fired = []
        button = GuardedButton(
            "delete", lambda: fired.append(1),
            arming_period=msec(100), invocation_window=msec(500),
        )
        outcomes = []
        self._press_at(kernel, button, msec(10), outcomes)
        kernel.run_for(sec(2))
        assert fired == []
        assert button.label == GUARDED
        assert button.repaints == 1


class TestDeadlockAvoiders:
    def _contended_manager(self, kernel, fork_repaint):
        manager = WindowManager()
        upper = manager.add_window("upper")
        lower = manager.add_window("lower")

        def adjuster():
            yield from manager.adjust_boundary(
                upper, lower, 10, fork_repaint=fork_repaint
            )

        def painter():
            # Takes window lock then tree lock — the canonical order.
            yield from manager.paint(upper, cost=msec(5))

        # The painter grabs the window lock, sleeps... we interleave by
        # priorities: painter starts first, adjuster preempts mid-paint.
        def painter_with_hold():
            yield p.Enter if False else None  # (never reached)

        kernel.fork_root(painter, name="painter", priority=4)
        kernel.post_at(usec(50), lambda k: k.fork_root(adjuster, name="adjuster", priority=6))
        return manager, upper, lower

    def test_forked_repaint_avoids_deadlock(self):
        kernel = make_kernel()
        manager, upper, lower = self._contended_manager(kernel, fork_repaint=True)
        kernel.run_for(sec(1))
        assert manager.adjustments == 1
        assert upper.repaints >= 1
        assert lower.repaints >= 1

    def test_inline_repaint_deadlocks(self):
        kernel = make_kernel()
        manager, upper, lower = self._contended_manager(kernel, fork_repaint=False)
        with pytest.raises(Deadlock):
            kernel.run_for(sec(1))

    def test_fork_callback_insulates_service(self):
        kernel = make_kernel(propagate_thread_errors=False)
        progressed = []

        def bad_client():
            yield p.Compute(usec(10))
            raise FlakyClientError("client bug")

        def service():
            yield from fork_callback(bad_client, name="client-callback")
            yield p.Compute(usec(50))
            progressed.append("service-survived")

        kernel.fork_root(service)
        kernel.run_for(msec(10))
        assert progressed == ["service-survived"]
        assert len(kernel.pending_thread_errors) == 1

    def test_finalization_service_forked_vs_inline(self):
        def bad_finalizer():
            yield p.Compute(usec(5))
            raise FlakyClientError("finalizer bug")

        def good_finalizer():
            yield p.Compute(usec(5))
            completed.append("good")

        # Forked: the bad finalizer cannot prevent the good one.
        completed = []
        kernel = make_kernel(propagate_thread_errors=False)
        service = finalization_service([bad_finalizer, good_finalizer], forked=True)
        kernel.fork_root(service, name="finalization")
        kernel.run_for(msec(10))
        assert completed == ["good"]

        # Inline: the service dies at the bad finalizer.
        completed = []
        kernel = make_kernel(propagate_thread_errors=False)
        service = finalization_service([bad_finalizer, good_finalizer], forked=False)
        kernel.fork_root(service, name="finalization")
        kernel.run_for(msec(10))
        assert completed == []
        assert len(kernel.pending_thread_errors) == 1


class TestTaskRejuvenation:
    def test_rejuvenating_service_restarts_after_error(self):
        kernel = make_kernel()
        attempts = []

        def flaky_factory():
            def body():
                attempts.append(1)
                yield p.Compute(usec(10))
                if len(attempts) < 3:
                    raise RuntimeError("bad state")
                # Third incarnation survives.
                yield p.Compute(usec(10))

            return body

        proc, log = rejuvenating(flaky_factory, name="flaky", max_restarts=5)
        kernel.fork_root(proc, name="flaky")
        kernel.run_for(msec(10))
        assert len(attempts) == 3
        assert log.restarts == 2

    def test_rejuvenation_gives_up_after_max_restarts(self):
        kernel = make_kernel(propagate_thread_errors=False)

        def always_bad_factory():
            def body():
                yield p.Compute(usec(10))
                raise RuntimeError("hopeless")

            return body

        proc, log = rejuvenating(always_bad_factory, max_restarts=3)
        kernel.fork_root(proc, name="hopeless")
        kernel.run_for(msec(10))
        assert log.restarts == 4  # 1 original + 3 restarts, last re-raises
        assert len(kernel.pending_thread_errors) == 1

    def test_dispatcher_survives_bad_callback(self):
        kernel = make_kernel()
        device = kernel.channel("input-events")
        dispatcher = RejuvenatingDispatcher(device)
        good_events = []

        def sometimes_bad(event):
            if event == "poison":
                raise RuntimeError("client callback bug")
            good_events.append(event)

        dispatcher.register(sometimes_bad)
        kernel.fork_root(dispatcher.proc, name="dispatcher")
        for at, event in [(msec(10), "a"), (msec(20), "poison"), (msec(30), "b")]:
            kernel.post_at(at, lambda k, e=event: device.post(e))
        kernel.run_for(sec(1))
        # The rejuvenated copy keeps dispatching after the poison event.
        assert good_events == ["a", "b"]
        assert dispatcher.log.restarts == 1


class TestSerializers:
    def test_mbqueue_preserves_arrival_order(self):
        kernel = make_kernel()
        mbq = MBQueue("viewer")
        kernel.fork_root(mbq.proc, name="viewer.serializer")

        def clicker(tag):
            yield from mbq.enqueue(lambda: None, key=tag)

        for i in range(8):
            kernel.post_at(
                msec(10 * (i + 1)),
                lambda k, i=i: k.fork_root(clicker, args=(i,), name=f"click{i}"),
            )
        kernel.run_for(sec(1))
        assert mbq.history == list(range(8))

    def test_mbqueue_serializes_concurrent_sources(self):
        # "input events can arrive from a number of different sources.
        # They are handled by a single thread."
        kernel = make_kernel()
        mbq = MBQueue("events")
        kernel.fork_root(mbq.proc, name="serializer")
        in_handler = []
        max_concurrency = []

        def handler(tag):
            in_handler.append(tag)
            max_concurrency.append(len(in_handler))
            yield p.Compute(usec(200))
            in_handler.remove(tag)

        def source(base):
            for i in range(5):
                yield from mbq.enqueue(handler, (f"{base}-{i}",), cost=0)
                yield p.Compute(usec(30))

        kernel.fork_root(source, args=("mouse",))
        kernel.fork_root(source, args=("keyboard",))
        kernel.run_for(sec(1))
        assert mbq.processed == 10
        assert max(max_concurrency) == 1  # the point of serialization

    def test_coalescing_serializer_drops_superseded_work(self):
        kernel = make_kernel()
        serializer = CoalescingSerializer("repaint")
        kernel.fork_root(serializer.proc, name="repaint.serializer")
        painted = []

        def burst():
            # 6 repaints of the same window queued back-to-back.
            for i in range(6):
                yield from serializer.enqueue(
                    lambda i=i: painted.append(i), key="window-1", cost=usec(500)
                )

        kernel.fork_root(burst)
        kernel.run_for(sec(1))
        # 6 repaints queued; scheduling may split them across 2-3 batches,
        # but most must coalesce away.
        assert serializer.coalesced >= 3
        assert len(painted) <= 3
        assert serializer.coalesced + len(painted) == 6


class TestEncapsulatedForks:
    def test_delayed_fork_runs_in_the_future(self):
        kernel = make_kernel()
        stamps = []

        def repaint():
            stamps.append((yield p.GetTime()))

        def main():
            yield from delayed_fork(repaint, delay=msec(500))

        kernel.fork_root(main)
        kernel.run_for(sec(1))
        assert stamps == [msec(500)]

    def test_periodical_fork_repeats(self):
        kernel = make_kernel()
        stamps = []

        def check():
            stamps.append((yield p.GetTime()))

        def main():
            yield from periodical_fork(check, period=msec(200))

        kernel.fork_root(main)
        kernel.run_for(sec(1))
        assert stamps == [msec(200), msec(400), msec(600), msec(800), msec(1000)]

    def test_callback_registry_forks_by_default(self):
        kernel = make_kernel()
        order = []
        registry = CallbackRegistry("filesystem")
        registry.register(lambda: order.append("forked"))  # fork=True default
        registry.register(lambda: order.append("inline"), fork=False)

        def service():
            yield from registry.invoke_all()
            order.append("service-returned")

        kernel.fork_root(service)
        kernel.run_for(msec(10))
        assert registry.forked_invocations == 1
        # The inline callback ran before the service returned; the forked
        # one ran in its own thread.
        assert "inline" in order and "forked" in order
        assert order.index("inline") < order.index("service-returned")

    def test_unforked_callback_error_kills_caller(self):
        kernel = make_kernel(propagate_thread_errors=False)
        registry = CallbackRegistry("risky")

        def bad():
            raise RuntimeError("expert-only callback bug")

        registry.register(bad, fork=False)
        reached = []

        def service():
            yield from registry.invoke_all()
            reached.append(True)

        kernel.fork_root(service)
        kernel.run_for(msec(10))
        assert reached == []
        assert len(kernel.pending_thread_errors) == 1


class TestConcurrencyExploiters:
    def test_parallel_map_correctness(self):
        kernel = make_kernel(ncpus=2)
        results = []

        def main():
            out = yield from parallel_map(
                list(range(10)), lambda x: x * x, nworkers=2
            )
            results.append(out)

        kernel.fork_root(main)
        kernel.run_for(sec(10))
        assert results == [[x * x for x in range(10)]]

    def test_parallel_map_speedup_on_two_cpus(self):
        durations = {}
        for ncpus in (1, 2):
            kernel = make_kernel(ncpus=ncpus)
            done = []

            def main():
                yield from parallel_map(
                    list(range(8)), lambda x: x, nworkers=2, cost_per_item=msec(10)
                )
                done.append((yield p.GetTime()))

            kernel.fork_root(main)
            kernel.run_for(sec(10))
            durations[ncpus] = done[0]
        assert durations[2] < durations[1]
        assert durations[2] == pytest.approx(durations[1] / 2, rel=0.2)

    def test_serial_map_baseline(self):
        kernel = make_kernel()
        results = []

        def main():
            out = yield from serial_map([1, 2, 3], lambda x: -x)
            results.append(out)

        kernel.fork_root(main)
        kernel.run_for(sec(1))
        assert results == [[-1, -2, -3]]
