"""Small-unit coverage: simtime helpers, scheduler internals, errors."""

import pytest

from repro.kernel import Kernel
from repro.kernel import primitives as p
from repro.kernel.config import KernelConfig
from repro.kernel.errors import (
    Deadlock,
    ForkFailed,
    KernelError,
    KernelUsageError,
    MonitorProtocolError,
    SimThreadError,
    UncaughtThreadError,
)
from repro.kernel.rng import DeterministicRng
from repro.kernel.scheduler import Scheduler
from repro.kernel.simtime import fmt_time, msec, per_second, sec, usec
from repro.kernel.thread import SimThread, ThreadState


class TestSimtime:
    def test_conversions(self):
        assert usec(1) == 1
        assert msec(1) == 1000
        assert sec(1) == 1_000_000
        assert msec(1.5) == 1500
        assert sec(0.25) == 250_000

    def test_rounding(self):
        assert usec(1.4) == 1
        assert usec(2.6) == 3

    def test_fmt_time(self):
        assert fmt_time(1_500_000) == "1.500000s"
        assert fmt_time(0) == "0.000000s"

    def test_per_second(self):
        assert per_second(10, sec(2)) == 5.0
        assert per_second(10, 0) == 0.0
        assert per_second(0, sec(1)) == 0.0


def _thread(tid, priority=4, name=None):
    def body():
        yield None

    return SimThread(
        tid=tid, name=name or f"t{tid}", body=body(), priority=priority,
        created_at=0,
    )


class TestSchedulerUnit:
    def test_make_ready_and_take_order(self):
        scheduler = Scheduler(1)
        a, b = _thread(1), _thread(2)
        scheduler.make_ready(a)
        scheduler.make_ready(b)
        assert scheduler.take_next(scheduler.cpus[0]) is a
        assert scheduler.take_next(scheduler.cpus[0]) is b
        assert scheduler.take_next(scheduler.cpus[0]) is None

    def test_front_insertion_for_preempted(self):
        scheduler = Scheduler(1)
        a, b = _thread(1), _thread(2)
        scheduler.make_ready(a)
        scheduler.make_ready(b, front=True)
        assert scheduler.take_next(scheduler.cpus[0]) is b

    def test_double_ready_is_a_bug(self):
        scheduler = Scheduler(1)
        a = _thread(1)
        scheduler.make_ready(a)
        with pytest.raises(AssertionError):
            scheduler.make_ready(a)

    def test_priority_ordering(self):
        scheduler = Scheduler(1)
        low, high = _thread(1, priority=2), _thread(2, priority=6)
        scheduler.make_ready(low)
        scheduler.make_ready(high)
        assert scheduler.highest_ready_priority() == 6
        assert scheduler.take_next(scheduler.cpus[0]) is high

    def test_would_preempt_strictness(self):
        scheduler = Scheduler(1)
        peer = _thread(1, priority=4)
        scheduler.make_ready(peer)
        assert not scheduler.would_preempt(4)  # equal never preempts
        assert scheduler.would_preempt(3)
        assert not scheduler.would_preempt(5)

    def test_peek_best_other_excludes(self):
        scheduler = Scheduler(1)
        a, b = _thread(1, priority=5), _thread(2, priority=3)
        scheduler.make_ready(a)
        scheduler.make_ready(b)
        assert scheduler.peek_best_other(a) is b
        assert scheduler.peek_best_other(b) is a

    def test_requeue_for_priority_change(self):
        scheduler = Scheduler(1)
        a, b = _thread(1, priority=2), _thread(2, priority=4)
        scheduler.make_ready(a)
        scheduler.make_ready(b)
        scheduler.requeue_for_priority_change(a, 6)
        assert a.priority == 6
        assert scheduler.take_next(scheduler.cpus[0]) is a

    def test_requeue_same_priority_keeps_round_robin_position(self):
        # Regression: a "change" to the thread's current priority used to
        # remove and re-append it, sending it behind same-priority peers.
        scheduler = Scheduler(1)
        a, b, c = _thread(1), _thread(2), _thread(3)
        for thread in (a, b, c):
            scheduler.make_ready(thread)
        scheduler.requeue_for_priority_change(a, a.priority)
        cpu = scheduler.cpus[0]
        assert [scheduler.take_next(cpu) for _ in range(3)] == [a, b, c]

    def test_peek_best_other_fair_share_routes_through_lottery(self):
        # Regression: peek_best_other always scanned strict-priority order,
        # so a fair-share donation always went to the top-priority thread
        # even though dispatch itself is a ticket lottery.
        scheduler = Scheduler(
            1, policy="fair_share", rng=DeterministicRng(0).fork("scheduler")
        )
        caller = _thread(1, priority=4)
        high, low = _thread(2, priority=6), _thread(3, priority=1)
        scheduler.make_ready(caller)
        scheduler.make_ready(high)
        scheduler.make_ready(low)
        picks = {scheduler.peek_best_other(caller) for _ in range(400)}
        assert caller not in picks  # never donate to yourself
        assert picks == {high, low}  # low priority still wins some draws

    def test_peek_best_other_strict_ignores_rng(self):
        # Strict policy keeps the pre-knob behaviour even with an rng set.
        scheduler = Scheduler(1, rng=DeterministicRng(0).fork("scheduler"))
        a, b = _thread(1, priority=5), _thread(2, priority=3)
        scheduler.make_ready(a)
        scheduler.make_ready(b)
        assert all(scheduler.peek_best_other(b) is a for _ in range(20))

    def test_clear_donations(self):
        scheduler = Scheduler(2)
        donee = _thread(1)
        scheduler.cpus[0].donee = donee
        scheduler.cpus[1].donee = donee
        scheduler.clear_donations()
        assert all(cpu.donee is None for cpu in scheduler.cpus)

    def test_ready_threads_best_first(self):
        scheduler = Scheduler(1)
        threads = [_thread(i, priority=p) for i, p in enumerate([2, 6, 4], 1)]
        for thread in threads:
            scheduler.make_ready(thread)
        priorities = [t.priority for t in scheduler.ready_threads()]
        assert priorities == [6, 4, 2]


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(MonitorProtocolError, KernelUsageError)
        assert issubclass(KernelUsageError, KernelError)
        assert issubclass(ForkFailed, SimThreadError)
        assert issubclass(Deadlock, KernelError)

    def test_uncaught_wraps_original(self):
        original = ValueError("inner")
        wrapped = UncaughtThreadError("worker", original)
        assert wrapped.original is original
        assert "worker" in str(wrapped)

    def test_config_validation_messages(self):
        with pytest.raises(ValueError):
            KernelConfig(quantum=0)
        with pytest.raises(ValueError):
            KernelConfig(ncpus=0)
        with pytest.raises(ValueError):
            KernelConfig(notify_semantics="later")
        with pytest.raises(ValueError):
            KernelConfig(fork_failure="shrug")
        with pytest.raises(ValueError):
            KernelConfig(switch_cost=-1)
        with pytest.raises(ValueError):
            KernelConfig(at_least_one_extra_prob=1.5)


class TestThreadUnit:
    def test_describe_block_states(self):
        thread = _thread(1)
        thread.state = ThreadState.READY
        assert "runnable" in thread.describe_block()
        thread.state = ThreadState.SLEEPING
        thread.blocked_on = "sleep"
        assert "sleeping" in thread.describe_block()

    def test_ancestry_walks_to_root(self):
        root = _thread(1, name="root")
        child = SimThread(
            tid=2, name="child", body=root.body, priority=4,
            created_at=0, parent=root,
        )
        grandchild = SimThread(
            tid=3, name="grandchild", body=root.body, priority=4,
            created_at=0, parent=child,
        )
        assert [t.name for t in grandchild.ancestry()] == ["child", "root"]
        assert grandchild.generation == 2

    def test_lifetime_none_while_alive(self):
        thread = _thread(1)
        assert thread.lifetime is None
        thread.ended_at = 500
        assert thread.lifetime == 500


class TestYieldThreadStats:
    """All three yield flavours must count in the yielder's per-thread
    stats, not just the global counters (DirectedYield regression)."""

    def _run_yielder(self, flavour):
        kernel = Kernel(KernelConfig(switch_cost=0, monitor_overhead=0))

        def target():
            yield p.Compute(usec(10))

        def yielder():
            handle = yield p.Fork(target, priority=2, detached=True)
            if flavour == "yield":
                yield p.Yield()
            elif flavour == "ybntm":
                yield p.YieldButNotToMe()
            else:
                yield p.DirectedYield(handle)
            yield p.Compute(1)

        thread = kernel.fork_root(yielder, priority=5)
        kernel.run_for(msec(10))
        return kernel, thread

    def test_yield_counts_per_thread(self):
        kernel, thread = self._run_yielder("yield")
        assert thread.stats.yields == 1
        assert kernel.stats.yields == 1

    def test_yield_but_not_to_me_counts_per_thread(self):
        kernel, thread = self._run_yielder("ybntm")
        assert thread.stats.yields == 1
        assert kernel.stats.yields == 1

    def test_directed_yield_counts_per_thread(self):
        kernel, thread = self._run_yielder("directed")
        assert thread.stats.yields == 1
        assert kernel.stats.directed_yields == 1
        assert kernel.stats.yields == 0
