"""Failure injection: systems built on the paradigms must degrade the
way the paper says they do — crashes contained, services rejuvenated,
locks never leaked."""

import pytest
from hypothesis import Phase, given, settings, strategies as st

from repro.kernel import Kernel, KernelConfig, msec, sec, usec
from repro.kernel import primitives as p
from repro.kernel.primitives import Enter, Exit
from repro.paradigms.rejuvenate import RejuvenatingDispatcher, rejuvenating
from repro.sync import Monitor

_PHASES = (Phase.explicit, Phase.reuse, Phase.generate, Phase.shrink)


def make_kernel(**overrides):
    defaults = dict(
        switch_cost=0, monitor_overhead=0, propagate_thread_errors=False
    )
    defaults.update(overrides)
    return Kernel(KernelConfig(**defaults))


class TestCrashContainment:
    def test_worker_crash_does_not_break_the_monitor(self):
        # A thread dying mid-critical-section (via its finally) releases
        # the lock; later users proceed.
        kernel = make_kernel()
        lock = Monitor("shared")
        completed = []

        def crasher():
            yield Enter(lock)
            try:
                yield p.Compute(usec(50))
                raise RuntimeError("died under the lock")
            finally:
                yield Exit(lock)

        def survivor():
            yield p.Pause(msec(100))
            yield Enter(lock)
            try:
                completed.append("survivor")
            finally:
                yield Exit(lock)

        kernel.fork_root(crasher)
        kernel.fork_root(survivor)
        kernel.run_for(sec(1))
        assert completed == ["survivor"]
        assert not lock.held
        assert len(kernel.pending_thread_errors) == 1
        kernel.shutdown()

    def test_crash_storm_in_forked_callbacks_spares_the_forker(self):
        kernel = make_kernel()
        progressed = []

        def bad_callback(n):
            yield p.Compute(usec(10))
            raise ValueError(f"callback {n}")

        def service():
            for n in range(10):
                yield p.Fork(bad_callback, (n,), detached=True)
                yield p.Compute(usec(50))
            progressed.append("all-dispatched")

        kernel.fork_root(service)
        kernel.run_for(sec(1))
        assert progressed == ["all-dispatched"]
        assert len(kernel.pending_thread_errors) == 10
        kernel.shutdown()


class TestRejuvenationUnderFire:
    @settings(max_examples=10, deadline=None, phases=_PHASES)
    @given(
        poison_positions=st.sets(
            st.integers(min_value=0, max_value=19), min_size=1, max_size=8
        )
    )
    def test_dispatcher_survives_arbitrary_poison_patterns(
        self, poison_positions
    ):
        kernel = make_kernel()
        device = kernel.channel("events")
        dispatcher = RejuvenatingDispatcher(device, max_restarts=50)
        good = []

        def handler(event):
            if event == "poison":
                raise RuntimeError("poisoned")
            good.append(event)

        dispatcher.register(handler)
        kernel.fork_root(dispatcher.proc, name="dispatcher")
        events = [
            "poison" if index in poison_positions else index
            for index in range(20)
        ]
        for offset, event in enumerate(events):
            kernel.post_at(msec(5 * (offset + 1)),
                           lambda k, e=event: device.post(e))
        kernel.run_for(sec(2))
        # Every good event was handled despite the poison between them.
        assert good == [e for e in events if e != "poison"]
        assert dispatcher.log.restarts == len(poison_positions)
        kernel.shutdown()

    def test_rejuvenating_service_bounded_restarts_then_gives_up(self):
        kernel = make_kernel()

        def doomed_factory():
            def body():
                yield p.Compute(usec(10))
                raise RuntimeError("always")

            return body

        proc, log = rejuvenating(doomed_factory, max_restarts=4)
        kernel.fork_root(proc, name="doomed")
        kernel.run_for(sec(1))
        assert log.restarts == 5  # original + 4 restarts
        assert len(kernel.pending_thread_errors) == 1  # the final give-up
        kernel.shutdown()


class TestPipelineFaults:
    def test_dead_pump_stalls_but_does_not_corrupt(self):
        from repro.paradigms.pump import Pump
        from repro.sync.queues import UnboundedQueue

        kernel = make_kernel()
        source = UnboundedQueue("src")
        sink = UnboundedQueue("dst")

        def explode_on_three(x):
            if x == 3:
                raise RuntimeError("stage bug")
            return x

        pump = Pump("fragile", source, sink, transform=explode_on_three)
        kernel.fork_root(pump.proc, name="fragile")

        def producer():
            for n in range(6):
                yield from source.put(n)

        kernel.fork_root(producer)
        kernel.run_for(sec(1))
        # Items before the fault made it; the rest are stranded upstream,
        # in order, not lost or reordered.
        assert list(sink.items) == [0, 1, 2]
        assert list(source.items) == [4, 5]
        assert len(kernel.pending_thread_errors) == 1
        kernel.shutdown()

    def test_rejuvenated_pump_drains_the_backlog(self):
        from repro.paradigms.pump import Pump
        from repro.sync.queues import UnboundedQueue

        kernel = make_kernel()
        source = UnboundedQueue("src")
        sink = UnboundedQueue("dst")
        state = {"armed": True}

        def explode_once(x):
            if x == 3 and state["armed"]:
                state["armed"] = False
                raise RuntimeError("transient stage bug")
            return x

        pump = Pump("healing", source, sink, transform=explode_once)
        proc, log = rejuvenating(lambda: pump.proc, name="pump")
        kernel.fork_root(proc, name="healing")

        def producer():
            for n in range(6):
                yield from source.put(n)

        kernel.fork_root(producer)
        kernel.run_for(sec(1))
        # The rejuvenated copy picks up where the dead one left off.
        assert list(sink.items) == [0, 1, 2, 4, 5]
        assert log.restarts == 1
        kernel.shutdown()
