"""Scheduler policy: strict priorities, preemption, round-robin, yields,
YieldButNotToMe and directed-yield donations (paper Sections 2, 5.2, 6.2,
6.3)."""

import pytest

from repro.kernel import Kernel, KernelConfig, msec, sec, usec
from repro.kernel import primitives as p


def make_kernel(**overrides):
    defaults = dict(switch_cost=0, monitor_overhead=0)
    defaults.update(overrides)
    return Kernel(KernelConfig(**defaults))


class TestStrictPriority:
    def test_higher_priority_runs_first(self):
        kernel = make_kernel()
        order = []

        def worker(tag):
            order.append(tag)
            yield p.Compute(usec(10))

        kernel.fork_root(worker, args=("low",), priority=2)
        kernel.fork_root(worker, args=("high",), priority=6)
        kernel.fork_root(worker, args=("mid",), priority=4)
        kernel.run_for(msec(1))
        assert order == ["high", "mid", "low"]

    def test_fork_of_higher_priority_child_preempts_parent(self):
        kernel = make_kernel()
        order = []

        def child():
            order.append("child")
            yield p.Compute(usec(10))

        def parent():
            order.append("parent-before")
            yield p.Fork(child, priority=6)
            order.append("parent-after")

        kernel.fork_root(parent, priority=4)
        kernel.run_for(msec(1))
        assert order == ["parent-before", "child", "parent-after"]

    def test_fork_of_equal_priority_child_does_not_preempt(self):
        kernel = make_kernel()
        order = []

        def child():
            order.append("child")
            yield p.Compute(usec(10))

        def parent():
            yield p.Fork(child, priority=4)
            order.append("parent-after")
            yield p.Compute(usec(10))

        kernel.fork_root(parent, priority=4)
        kernel.run_for(msec(1))
        assert order == ["parent-after", "child"]

    def test_wakeup_preempts_mid_compute(self):
        kernel = make_kernel()
        stamps = []

        def background():
            yield p.Compute(msec(40))
            stamps.append(("background-done", (yield p.GetTime())))

        def urgent():
            stamps.append(("urgent-ran", (yield p.GetTime())))
            yield p.Compute(msec(1))

        kernel.fork_root(background, priority=2)
        kernel.post_at(msec(10), lambda k: k.fork_root(urgent, priority=6))
        kernel.run_for(msec(100))
        events = dict(stamps)
        assert events["urgent-ran"] == msec(10)
        # background lost 1 ms to urgent: finishes at 41 ms, not 40.
        assert events["background-done"] == msec(41)

    def test_preemption_even_while_holding_monitor(self):
        # "the scheduler will preempt the currently running thread, even
        # if it holds monitor locks."
        from repro.sync import Monitor
        from repro.kernel.primitives import Enter, Exit

        kernel = make_kernel()
        lock = Monitor("held-across-preemption")
        order = []

        def holder():
            yield Enter(lock)
            order.append("acquired")
            yield p.Compute(msec(20))
            order.append("still-holding")
            yield Exit(lock)

        def urgent():
            order.append("urgent")
            yield p.Compute(usec(10))

        kernel.fork_root(holder, priority=3)
        kernel.post_at(msec(5), lambda k: k.fork_root(urgent, priority=7))
        kernel.run_for(msec(100))
        assert order == ["acquired", "urgent", "still-holding"]
        assert kernel.stats.preemptions >= 1

    def test_set_priority_returns_previous_and_takes_effect(self):
        kernel = make_kernel()
        observed = []

        def self_demoter():
            previous = yield p.SetPriority(2)
            observed.append(previous)
            yield p.Compute(usec(10))
            observed.append("low-done")

        def other():
            yield p.Compute(usec(10))
            observed.append("mid-done")

        def main():
            yield p.Fork(self_demoter, priority=5)
            yield p.Fork(other, priority=4)
            yield p.Compute(1)

        kernel.fork_root(main, priority=6)
        kernel.run_for(msec(1))
        # The demotion takes effect *immediately*: the priority-4 thread
        # preempts before the demoter even receives SetPriority's return
        # value, so "mid-done" lands first.
        assert observed == ["mid-done", 5, "low-done"]

    def test_priority_bounds_enforced(self):
        kernel = make_kernel()

        def bad():
            yield p.SetPriority(9)

        kernel.fork_root(bad)
        from repro.kernel import KernelUsageError

        with pytest.raises(KernelUsageError):
            kernel.run_for(msec(1))


class TestRoundRobin:
    def test_equal_priority_threads_share_via_quantum(self):
        kernel = make_kernel(quantum=msec(50))
        finish = {}

        def worker(tag):
            yield p.Compute(msec(100))
            finish[tag] = yield p.GetTime()

        kernel.fork_root(worker, args=("a",))
        kernel.fork_root(worker, args=("b",))
        kernel.run_for(sec(1))
        # With rotation both finish around 200 ms, interleaved in 50 ms
        # slices — not 100 ms and 200 ms as run-to-completion would give.
        assert finish["a"] == msec(150)
        assert finish["b"] == msec(200)

    def test_execution_intervals_show_quantum_peak(self):
        kernel = make_kernel(quantum=msec(50))

        def worker():
            yield p.Compute(msec(500))

        kernel.fork_root(worker)
        kernel.fork_root(worker)
        kernel.run_for(sec(2))
        intervals = [d for d, _prio in kernel.stats.exec_intervals]
        # Rotation every 50 ms: the bulk of intervals sit at the quantum.
        quantum_like = [d for d in intervals if d == msec(50)]
        assert len(quantum_like) >= 15

    def test_no_rotation_without_competition(self):
        kernel = make_kernel(quantum=msec(50))

        def lone():
            yield p.Compute(msec(500))

        thread = kernel.fork_root(lone)
        kernel.run_for(sec(1))
        # A lone thread is never rotated: one long execution interval.
        assert thread.stats.run_intervals == [msec(500)]

    def test_lower_priority_starves_under_strict_priority(self):
        # The behaviour that makes priority inversion "stable" (§6.2).
        kernel = make_kernel(quantum=msec(50))
        progress = []

        def hog():
            while True:
                yield p.Compute(msec(10))

        def background():
            yield p.Compute(msec(1))
            progress.append("background-ran")

        kernel.fork_root(hog, priority=5)
        kernel.fork_root(background, priority=2)
        kernel.run_for(sec(1))
        assert progress == []


class TestYields:
    def test_yield_rotates_to_equal_priority_peer(self):
        kernel = make_kernel()
        order = []

        def a():
            order.append("a1")
            yield p.Yield()
            order.append("a2")
            yield p.Compute(1)

        def b():
            order.append("b1")
            yield p.Compute(1)

        kernel.fork_root(a)
        kernel.fork_root(b)
        kernel.run_for(msec(1))
        assert order == ["a1", "b1", "a2"]

    def test_yield_does_not_cede_to_lower_priority(self):
        kernel = make_kernel()
        order = []

        def high():
            order.append("h1")
            yield p.Yield()
            order.append("h2")
            yield p.Compute(1)

        def low():
            order.append("low")
            yield p.Compute(1)

        kernel.fork_root(high, priority=5)
        kernel.fork_root(low, priority=3)
        kernel.run_for(msec(1))
        assert order == ["h1", "h2", "low"]

    def test_yield_but_not_to_me_cedes_to_lower_priority(self):
        # The §5.2 fix: "gives the processor to the highest priority ready
        # thread other than its caller, if such a thread exists."
        kernel = make_kernel()
        order = []

        def high():
            order.append("h1")
            yield p.YieldButNotToMe()
            order.append("h2")
            yield p.Compute(1)

        def low():
            order.append("low")
            yield p.Compute(usec(10))

        kernel.fork_root(high, priority=5)
        kernel.fork_root(low, priority=3)
        kernel.run_for(msec(1))
        assert order == ["h1", "low", "h2"]

    def test_yield_but_not_to_me_noop_when_alone(self):
        kernel = make_kernel()
        order = []

        def lone():
            order.append("before")
            yield p.YieldButNotToMe()
            order.append("after")

        kernel.fork_root(lone)
        kernel.run_for(msec(1))
        assert order == ["before", "after"]

    def test_donation_expires_at_tick(self):
        # "The end of a timeslice ends the effect of a YieldButNotToMe."
        kernel = make_kernel(quantum=msec(50))
        stamps = []

        def high():
            yield p.Compute(msec(10))
            yield p.YieldButNotToMe()
            stamps.append(("high-resumed", (yield p.GetTime())))
            yield p.Compute(msec(1))

        def low():
            while True:
                yield p.Compute(msec(10))

        kernel.fork_root(high, priority=5)
        kernel.fork_root(low, priority=2)
        kernel.run_for(msec(200))
        # low runs from 10 ms under the donation; at the 50 ms tick the
        # donation expires and strict priority resumes high immediately.
        assert stamps == [("high-resumed", msec(50))]

    def test_directed_yield_runs_specific_thread(self):
        kernel = make_kernel()
        order = []
        handles = {}

        def target():
            order.append("target")
            yield p.Compute(usec(10))

        def other():
            order.append("other")
            yield p.Compute(usec(10))

        def director():
            handles["t"] = yield p.Fork(target, priority=2)
            yield p.Fork(other, priority=3)
            yield p.DirectedYield(handles["t"])
            order.append("director-back")
            yield p.Compute(1)

        kernel.fork_root(director, priority=5)
        kernel.run_for(msec(1))
        # The donation picks the priority-2 target over the priority-3
        # thread; after the target blocks/finishes, strict priority rules.
        assert order[0] == "target"
        assert order[1] == "director-back"

    def test_directed_yield_to_unready_thread_is_noop(self):
        kernel = make_kernel()
        order = []

        def sleeper():
            yield p.Pause(sec(1))

        def director():
            handle = yield p.Fork(sleeper)
            yield p.Compute(usec(10))  # let the sleeper block
            yield p.DirectedYield(handle)
            order.append("director-continues")

        kernel.fork_root(director, priority=5)
        kernel.run_for(msec(100))
        assert order == ["director-continues"]


class TestMultiprocessor:
    def test_two_cpus_run_two_threads_in_parallel(self):
        kernel = make_kernel(ncpus=2)
        finish = {}

        def worker(tag):
            yield p.Compute(msec(100))
            finish[tag] = yield p.GetTime()

        kernel.fork_root(worker, args=("a",))
        kernel.fork_root(worker, args=("b",))
        kernel.run_for(sec(1))
        assert finish == {"a": msec(100), "b": msec(100)}

    def test_three_threads_two_cpus(self):
        kernel = make_kernel(ncpus=2, quantum=msec(50))
        finish = {}

        def worker(tag):
            yield p.Compute(msec(100))
            finish[tag] = yield p.GetTime()

        for tag in ("a", "b", "c"):
            kernel.fork_root(worker, args=(tag,))
        kernel.run_for(sec(1))
        # 300 ms of work on 2 CPUs: last finisher at 150 ms.
        assert max(finish.values()) == msec(150)
        assert min(finish.values()) == msec(100)


class TestLotteryPick:
    """The fair-share ticket draw (`Scheduler._lottery_pick`), including
    the rng-less fallback regression: the fallback must honour the
    documented ticket distribution, not the list's arrival order."""

    class FakeThread:
        def __init__(self, name, priority):
            self.name = name
            self.priority = priority

        def __repr__(self):
            return f"<{self.name} prio={self.priority}>"

    def _scheduler(self, rng):
        from repro.kernel.scheduler import Scheduler

        return Scheduler(1, policy="fair_share", rng=rng)

    def test_seeded_draw_tracks_ticket_proportions(self):
        from repro.kernel.rng import DeterministicRng

        sched = self._scheduler(DeterministicRng(0).fork("sched"))
        threads = [
            self.FakeThread("low", 1),    # 1 ticket
            self.FakeThread("mid", 2),    # 2 tickets
            self.FakeThread("high", 3),   # 4 tickets
        ]
        wins = {"low": 0, "mid": 0, "high": 0}
        for _ in range(7000):
            wins[sched._lottery_pick(threads).name] += 1
        # Deterministic in the seed; expectation is 1000/2000/4000.
        assert wins["low"] < wins["mid"] < wins["high"]
        assert abs(wins["low"] - 1000) < 150
        assert abs(wins["mid"] - 2000) < 150
        assert abs(wins["high"] - 4000) < 150

    def test_rngless_fallback_follows_tickets_not_list_order(self):
        # Regression: the fallback used to return ready[0] regardless of
        # tickets, which is wrong for the unsorted filtered lists
        # peek_best_other hands over.
        sched = self._scheduler(None)
        low_first = [
            self.FakeThread("low", 2),
            self.FakeThread("high", 6),
            self.FakeThread("mid", 4),
        ]
        assert sched._lottery_pick(low_first).name == "high"
        # Ties: first of the maximal-ticket threads (stable, modal).
        tied = [
            self.FakeThread("low", 1),
            self.FakeThread("first-high", 5),
            self.FakeThread("second-high", 5),
        ]
        assert sched._lottery_pick(tied).name == "first-high"

    def test_single_candidate_consumes_no_rng_state(self):
        class CountingRng:
            def __init__(self):
                self.draws = 0

            def randint(self, low, high):
                self.draws += 1
                return low

        rng = CountingRng()
        sched = self._scheduler(rng)
        only = [self.FakeThread("solo", 3)]
        assert sched._lottery_pick(only).name == "solo"
        assert rng.draws == 0
        assert sched._lottery_pick([]) is None
        assert rng.draws == 0

    def test_peek_best_other_fair_share_uses_the_fallback_correctly(self):
        # End-to-end through the kernel: under fair share with the
        # donation path, peek_best_other must not hand the donation to
        # an arbitrary list head.
        sched = self._scheduler(None)
        low = self.FakeThread("low", 1)
        high = self.FakeThread("high", 5)
        from repro.kernel.thread import ThreadState

        for fake in (low, high):
            fake.state = ThreadState.NEW
            fake.blocked_on = None
        sched.make_ready(low)
        sched.make_ready(high)
        chosen = sched.peek_best_other(exclude=self.FakeThread("me", 3))
        assert chosen.name == "high"
