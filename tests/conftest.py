"""Shared test fixtures.

The autouse teardown closes any kernels a test left running so their
suspended thread generators (paused inside ``try/finally`` blocks that
yield Exit traps) unwind cleanly instead of emitting "generator ignored
GeneratorExit" warnings at garbage collection.
"""

import pytest

from repro.kernel.kernel import shutdown_all_kernels


@pytest.fixture(autouse=True)
def _shutdown_kernels():
    yield
    shutdown_all_kernels()
