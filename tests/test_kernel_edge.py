"""Kernel edge cases: multiprocessor scheduling, donation corners,
fork-wait ordering, trap misuse, run-boundary behaviour."""

import pytest

from repro.kernel import (
    Kernel,
    KernelConfig,
    KernelUsageError,
    msec,
    sec,
    usec,
)
from repro.kernel import primitives as p
from repro.sync import ConditionVariable, Monitor
from repro.kernel.primitives import Enter, Exit, Notify, Wait


def make_kernel(**overrides):
    defaults = dict(switch_cost=0, monitor_overhead=0)
    defaults.update(overrides)
    return Kernel(KernelConfig(**defaults))


class TestMultiprocessor:
    def test_monitor_blocks_across_cpus(self):
        kernel = make_kernel(ncpus=2)
        lock = Monitor("m")
        overlap = []
        inside = [0]

        def worker():
            yield Enter(lock)
            try:
                inside[0] += 1
                overlap.append(inside[0])
                yield p.Compute(msec(5))
                inside[0] -= 1
            finally:
                yield Exit(lock)

        kernel.fork_root(worker)
        kernel.fork_root(worker)
        kernel.run_for(sec(1))
        assert max(overlap) == 1  # mutual exclusion holds across CPUs
        assert lock.blocks == 1   # genuine cross-CPU contention
        kernel.shutdown()

    def test_spurious_conflict_on_multiprocessor(self):
        # Birrell's original MP case: notifier keeps running on its CPU
        # holding the lock while the notifyee starts on the other CPU.
        kernel = Kernel(
            KernelConfig(
                ncpus=2, notify_semantics="immediate", switch_cost=0,
                monitor_overhead=0,
            )
        )
        lock = Monitor("m")
        cv = ConditionVariable(lock, "cv")
        state = {"go": False}

        def waiter():
            yield Enter(lock)
            try:
                while not state["go"]:
                    yield Wait(cv)
            finally:
                yield Exit(lock)

        def notifier():
            yield p.Pause(msec(50))
            yield Enter(lock)
            try:
                state["go"] = True
                yield Notify(cv)
                yield p.Compute(msec(1))  # keep holding on this CPU
            finally:
                yield Exit(lock)

        kernel.fork_root(waiter, priority=4)
        kernel.fork_root(notifier, priority=4)
        kernel.run_for(sec(1))
        assert kernel.stats.spurious_conflicts == 1
        kernel.shutdown()

    def test_four_cpus_scale_independent_work(self):
        kernel = make_kernel(ncpus=4)
        finish = []

        def worker():
            yield p.Compute(msec(100))
            finish.append((yield p.GetTime()))

        for _ in range(4):
            kernel.fork_root(worker)
        kernel.run_for(sec(1))
        assert finish == [msec(100)] * 4
        kernel.shutdown()

    def test_preemption_picks_one_cpu(self):
        # A single high-priority wake preempts exactly one busy CPU.
        kernel = make_kernel(ncpus=2)
        order = []

        def grinder(tag):
            yield p.Compute(msec(40))
            order.append((tag, (yield p.GetTime())))

        def urgent():
            order.append(("urgent", (yield p.GetTime())))
            yield p.Compute(msec(1))

        kernel.fork_root(grinder, ("a",), priority=3)
        kernel.fork_root(grinder, ("b",), priority=3)
        kernel.post_at(msec(10), lambda k: k.fork_root(urgent, priority=6))
        kernel.run_for(sec(1))
        done = dict(order)
        assert done["urgent"] == msec(10)
        # One grinder lost ~1 ms, the other none.
        finish_times = sorted(t for tag, t in order if tag != "urgent")
        assert finish_times == [msec(40), msec(41)]
        kernel.shutdown()


class TestDonationCorners:
    def test_ybntm_donee_finishing_returns_to_strict_priority(self):
        kernel = make_kernel()
        order = []

        def short_low():
            order.append("low")
            yield p.Compute(usec(100))
            # finishes: donation is spent

        def mid():
            order.append("mid")
            yield p.Compute(usec(100))

        def high():
            yield p.Fork(short_low, priority=2, detached=True)
            yield p.Fork(mid, priority=3, detached=True)
            yield p.YieldButNotToMe()
            order.append("high-back")
            yield p.Compute(usec(10))

        kernel.fork_root(high, priority=6)
        kernel.run_for(sec(1))
        # YBNTM picks the *highest* other (mid); when it finishes, strict
        # priority resumes the donor before the low thread.
        assert order == ["mid", "high-back", "low"]
        kernel.shutdown()

    def test_directed_yield_donation_survives_donee_yield(self):
        kernel = make_kernel(quantum=msec(50))
        order = []
        handles = {}

        def donee():
            order.append("donee-1")
            yield p.Yield()  # goes READY; donation persists until tick
            order.append("donee-2")
            yield p.Compute(usec(10))

        def director():
            handles["d"] = yield p.Fork(donee, priority=2)
            yield p.DirectedYield(handles["d"])
            order.append("director-back")
            yield p.Compute(usec(10))

        kernel.fork_root(director, priority=6)
        kernel.run_for(sec(1))
        # The donee's own Yield does not end the donation: it is re-picked.
        assert order[:2] == ["donee-1", "donee-2"]
        kernel.shutdown()

    def test_system_daemon_donation_expires_at_tick(self):
        from repro.runtime.daemon import install_system_daemon

        kernel = Kernel(KernelConfig(seed=5, quantum=msec(50)))

        def hog():
            while True:
                yield p.Compute(msec(10))

        def starved():
            while True:
                yield p.Compute(msec(10))

        kernel.fork_root(hog, priority=5, name="hog")
        low = kernel.fork_root(starved, priority=1, name="starved")
        install_system_daemon(kernel, period=msec(100))
        kernel.run_for(sec(5))
        # The starved thread gets slices, but each at most one quantum.
        assert low.stats.cpu_time > 0
        assert max(low.stats.run_intervals) <= msec(50)
        kernel.shutdown()


class TestForkWaitOrdering:
    def test_blocked_forks_complete_fifo(self):
        kernel = make_kernel(max_threads=3, fork_failure="wait")
        started = []

        def job(tag):
            started.append(tag)
            yield p.Compute(msec(10))

        def requester(tag):
            yield p.Fork(job, (tag,), detached=True)

        def spawner():
            # Fill the table (spawner + 2 jobs), then queue two more
            # requesters whose forks must wait, in order.
            yield p.Fork(job, ("a",), detached=True)
            yield p.Fork(job, ("b",), detached=True)
            yield p.Fork(job, ("c",), detached=True)
            yield p.Fork(job, ("d",), detached=True)

        kernel.fork_root(spawner)
        kernel.run_for(sec(1))
        assert started == ["a", "b", "c", "d"]
        kernel.shutdown()


class TestTrapMisuse:
    def test_yielding_non_trap_is_usage_error(self):
        kernel = make_kernel()

        def bad():
            yield "not a trap"

        kernel.fork_root(bad)
        with pytest.raises(KernelUsageError):
            kernel.run_for(msec(1))

    def test_negative_compute_rejected_at_construction(self):
        with pytest.raises(ValueError):
            p.Compute(-1)

    def test_negative_pause_rejected(self):
        with pytest.raises(ValueError):
            p.Pause(-5)

    def test_fork_priority_bounds(self):
        kernel = make_kernel()

        def child():
            yield p.Compute(1)

        def parent():
            yield p.Fork(child, priority=0)

        kernel.fork_root(parent)
        with pytest.raises(KernelUsageError):
            kernel.run_for(msec(1))

    def test_annotate_lands_in_trace(self):
        kernel = Kernel(KernelConfig(trace=True))

        def worker():
            yield p.Annotate("checkpoint", {"step": 1})

        kernel.fork_root(worker)
        kernel.run_for(msec(1))
        notes = [e for e in kernel.tracer.events if e.category == "annotate"]
        assert len(notes) == 1
        assert notes[0].kind == "checkpoint"
        kernel.shutdown()


class TestRunBoundaries:
    def test_burst_spans_run_until_calls(self):
        kernel = make_kernel()
        stamps = []

        def worker():
            yield p.Compute(msec(30))
            stamps.append((yield p.GetTime()))

        kernel.fork_root(worker)
        kernel.run_until(msec(10))  # burst in progress at the boundary
        assert stamps == []
        kernel.run_until(msec(100))
        assert stamps == [msec(30)]
        kernel.shutdown()

    def test_channel_post_between_runs(self):
        kernel = make_kernel()
        channel = kernel.channel("ch")
        got = []

        def reader():
            while True:
                got.append((yield p.Channelreceive(channel)))

        kernel.fork_root(reader)
        kernel.run_for(msec(10))
        channel.post("between-runs")
        kernel.run_for(msec(10))
        assert got == ["between-runs"]
        kernel.shutdown()

    def test_post_at_in_past_rejected(self):
        kernel = make_kernel()
        kernel.run_until(msec(100))
        with pytest.raises(ValueError):
            kernel.post_at(msec(50), lambda k: None)
        kernel.shutdown()

    def test_post_every_until_bound(self):
        kernel = make_kernel()
        fired = []
        kernel.post_every(
            msec(100), lambda k: fired.append(k.now), until=msec(350)
        )
        kernel.run_for(sec(1))
        assert fired == [msec(100), msec(200), msec(300)]
        kernel.shutdown()

    def test_zero_cost_yield_loop_raises_instead_of_hanging(self):
        # Regression for the livelock guard: with switch_cost=0 a thread
        # yielding in a tight loop never advances simulated time.  The
        # kernel must diagnose this, not spin the host CPU forever.
        kernel = make_kernel(switch_cost=0)

        def spinner():
            while True:
                yield p.Yield()

        kernel.fork_root(spinner)
        with pytest.raises(KernelUsageError, match="livelock"):
            kernel.run_for(msec(1))
        kernel.shutdown()

    def test_shutdown_is_idempotent(self):
        kernel = make_kernel()

        def spin():
            while True:
                yield p.Pause(msec(50))

        kernel.fork_root(spin)
        kernel.run_for(msec(100))
        kernel.shutdown()
        kernel.shutdown()  # second call is a no-op
        assert all(not t.alive for t in kernel.threads.values())
