"""Core kernel behaviour: fork/join, time, compute, detach, errors."""

import pytest

from repro.kernel import (
    Deadlock,
    ForkFailed,
    JoinProtocolError,
    Kernel,
    KernelConfig,
    KernelUsageError,
    ThreadState,
    UncaughtThreadError,
    msec,
    sec,
    usec,
)
from repro.kernel import primitives as p


def make_kernel(**overrides):
    defaults = dict(switch_cost=0, monitor_overhead=0)
    defaults.update(overrides)
    return Kernel(KernelConfig(**defaults))


class TestForkJoin:
    def test_root_thread_runs_and_returns(self):
        kernel = make_kernel()

        def main():
            yield p.Compute(usec(100))
            return 42

        thread = kernel.fork_root(main)
        kernel.run_for(msec(1))
        assert thread.result == 42
        assert thread.state is ThreadState.DONE

    def test_join_returns_child_result(self):
        kernel = make_kernel()
        seen = []

        def child(value):
            yield p.Compute(usec(10))
            return value * 2

        def parent():
            handle = yield p.Fork(child, args=(21,))
            result = yield p.Join(handle)
            seen.append(result)

        kernel.fork_root(parent)
        kernel.run_for(msec(1))
        assert seen == [42]

    def test_join_on_already_finished_child(self):
        kernel = make_kernel()
        seen = []

        def child():
            return "done"
            yield  # pragma: no cover - makes this a generator

        def parent():
            handle = yield p.Fork(child)
            yield p.Compute(usec(500))  # child finishes long before the join
            seen.append((yield p.Join(handle)))

        kernel.fork_root(parent)
        kernel.run_for(msec(5))
        assert seen == ["done"]

    def test_join_twice_is_an_error(self):
        kernel = make_kernel()

        def child():
            yield p.Compute(1)

        def parent():
            handle = yield p.Fork(child)
            yield p.Join(handle)
            yield p.Join(handle)

        kernel.fork_root(parent)
        with pytest.raises(JoinProtocolError):
            kernel.run_for(msec(1))

    def test_join_detached_thread_is_an_error(self):
        kernel = make_kernel()

        def child():
            yield p.Compute(1)

        def parent():
            handle = yield p.Fork(child, detached=True)
            yield p.Join(handle)

        kernel.fork_root(parent)
        with pytest.raises(JoinProtocolError):
            kernel.run_for(msec(1))

    def test_self_join_is_an_error(self):
        kernel = make_kernel()

        def narcissist():
            me = yield p.GetSelf()
            yield p.Join(me)

        kernel.fork_root(narcissist)
        with pytest.raises(JoinProtocolError):
            kernel.run_for(msec(1))

    def test_child_exception_reraised_at_join(self):
        kernel = make_kernel()

        def child():
            yield p.Compute(1)
            raise ValueError("boom")

        caught = []

        def parent():
            handle = yield p.Fork(child)
            try:
                yield p.Join(handle)
            except UncaughtThreadError as error:
                caught.append(error)

        kernel.fork_root(parent)
        kernel.run_for(msec(1))
        assert len(caught) == 1
        assert isinstance(caught[0].original, ValueError)

    def test_unjoined_error_propagates_at_end_of_run(self):
        kernel = make_kernel()

        def dies():
            yield p.Compute(1)
            raise RuntimeError("unobserved")

        kernel.fork_root(dies)
        with pytest.raises(UncaughtThreadError):
            kernel.run_for(msec(1))

    def test_error_propagation_can_be_disabled(self):
        kernel = make_kernel(propagate_thread_errors=False)

        def dies():
            yield p.Compute(1)
            raise RuntimeError("unobserved")

        kernel.fork_root(dies)
        kernel.run_for(msec(1))
        assert len(kernel.pending_thread_errors) == 1

    def test_fork_inherits_parent_priority(self):
        kernel = make_kernel()
        priorities = []

        def child():
            me = yield p.GetSelf()
            priorities.append(me.priority)

        def parent():
            yield p.Fork(child)

        kernel.fork_root(parent, priority=6)
        kernel.run_for(msec(1))
        assert priorities == [6]

    def test_generation_tracking(self):
        kernel = make_kernel()

        def grandchild():
            yield p.Compute(1)

        def child():
            yield p.Fork(grandchild)

        def parent():
            yield p.Fork(child)

        kernel.fork_root(parent)
        kernel.run_for(msec(1))
        generations = {r.name.split("#")[0]: r.generation
                       for r in kernel.stats.thread_log}
        assert generations == {"parent": 0, "child": 1, "grandchild": 2}

    def test_non_generator_proc_rejected(self):
        kernel = make_kernel()

        def not_a_generator():
            return 1

        with pytest.raises(KernelUsageError):
            kernel.fork_root(not_a_generator)


class TestTimeAndCompute:
    def test_compute_advances_simulated_time(self):
        kernel = make_kernel()
        stamps = []

        def main():
            t0 = yield p.GetTime()
            yield p.Compute(usec(250))
            t1 = yield p.GetTime()
            stamps.append((t0, t1))

        kernel.fork_root(main)
        kernel.run_for(msec(1))
        (t0, t1), = stamps
        assert t1 - t0 == usec(250)

    def test_computes_accumulate(self):
        kernel = make_kernel()

        def main():
            for _ in range(10):
                yield p.Compute(usec(100))

        thread = kernel.fork_root(main)
        kernel.run_for(msec(10))
        assert thread.stats.cpu_time == usec(1000)

    def test_zero_compute_is_instant(self):
        kernel = make_kernel()
        stamps = []

        def main():
            t0 = yield p.GetTime()
            yield p.Compute(0)
            stamps.append((yield p.GetTime()) - t0)

        kernel.fork_root(main)
        kernel.run_for(msec(1))
        assert stamps == [0]

    def test_run_until_does_not_go_backwards(self):
        kernel = make_kernel()
        kernel.run_until(msec(10))
        with pytest.raises(ValueError):
            kernel.run_until(msec(5))

    def test_clock_advances_to_t_end_when_idle(self):
        kernel = make_kernel()
        end = kernel.run_until(sec(3))
        assert end == sec(3)
        assert kernel.now == sec(3)

    def test_switch_cost_is_charged(self):
        kernel = make_kernel(switch_cost=usec(40))
        stamps = []

        def main():
            stamps.append((yield p.GetTime()))

        kernel.fork_root(main)
        kernel.run_for(msec(1))
        # The thread's first instruction runs only after the switch burst.
        assert stamps == [usec(40)]


class TestPauseAndTicks:
    def test_pause_wakes_at_tick_granularity(self):
        kernel = make_kernel(quantum=msec(50))
        stamps = []

        def sleeper():
            yield p.Pause(msec(60))
            stamps.append((yield p.GetTime()))

        kernel.fork_root(sleeper)
        kernel.run_for(msec(500))
        # deadline 60 ms -> first tick at or after it is 100 ms.
        assert stamps == [msec(100)]

    def test_pause_zero_sleeps_to_next_tick(self):
        kernel = make_kernel(quantum=msec(50))
        stamps = []

        def sleeper():
            yield p.Compute(msec(10))
            yield p.Pause(0)
            stamps.append((yield p.GetTime()))

        kernel.fork_root(sleeper)
        kernel.run_for(msec(500))
        assert stamps == [msec(50)]

    def test_pause_exactly_on_tick_boundary(self):
        kernel = make_kernel(quantum=msec(50))
        stamps = []

        def sleeper():
            yield p.Pause(msec(100))
            stamps.append((yield p.GetTime()))

        kernel.fork_root(sleeper)
        kernel.run_for(msec(500))
        assert stamps == [msec(100)]

    def test_smaller_quantum_gives_finer_wakeups(self):
        kernel = make_kernel(quantum=msec(20))
        stamps = []

        def sleeper():
            yield p.Pause(msec(25))
            stamps.append((yield p.GetTime()))

        kernel.fork_root(sleeper)
        kernel.run_for(msec(500))
        assert stamps == [msec(40)]


class TestDetachAndForkFailure:
    def test_detach_allows_resource_recovery(self):
        kernel = make_kernel()

        def child():
            yield p.Compute(1)

        def parent():
            handle = yield p.Fork(child)
            yield p.Detach(handle)

        kernel.fork_root(parent)
        kernel.run_for(msec(1))
        assert kernel.stats.live_threads == 0
        assert kernel.stats.stack_bytes == 0

    def test_fork_failure_raise_policy(self):
        kernel = make_kernel(max_threads=2, fork_failure="raise")
        outcomes = []

        def busy():
            yield p.Pause(sec(1))

        def parent():
            yield p.Fork(busy, detached=True)  # fills the table (parent + 1)
            try:
                yield p.Fork(busy, detached=True)
            except ForkFailed:
                outcomes.append("failed")

        kernel.fork_root(parent)
        kernel.run_for(msec(10))
        assert outcomes == ["failed"]
        assert kernel.stats.fork_failures == 1

    def test_fork_failure_wait_policy_blocks_until_slot_frees(self):
        kernel = make_kernel(max_threads=2, fork_failure="wait")
        stamps = []

        def short_lived():
            yield p.Compute(msec(10))

        def second():
            yield p.Compute(1)

        def parent():
            yield p.Fork(short_lived, detached=True)
            handle = yield p.Fork(second)  # must wait ~10 ms for the slot
            stamps.append((yield p.GetTime()))
            yield p.Join(handle)

        kernel.fork_root(parent)
        kernel.run_for(msec(100))
        assert kernel.stats.fork_waits == 1
        assert stamps and stamps[0] >= msec(10)

    def test_stack_reservation_accounting(self):
        kernel = make_kernel(stack_reservation=100 * 1024)

        def sleeper():
            yield p.Pause(sec(10))

        for _ in range(5):
            kernel.fork_root(sleeper)
        kernel.run_for(msec(1))
        assert kernel.stats.stack_bytes == 5 * 100 * 1024
        assert kernel.stats.max_stack_bytes == 5 * 100 * 1024


class TestDeadlockDetection:
    def test_channel_wait_is_not_a_deadlock(self):
        # Device channels are the external boundary: a thread parked on
        # one is an idle server, not a wedge — host code may post later.
        kernel = make_kernel()
        silent = kernel.channel("not-posted-yet")
        received = []

        def waiter():
            received.append((yield p.Channelreceive(silent)))

        thread = kernel.fork_root(waiter)
        kernel.run_for(sec(1))  # must not raise
        assert thread.state is ThreadState.RECEIVING
        silent.post("late-arrival")
        kernel.run_for(msec(10))
        assert received == ["late-arrival"]

    def test_mutual_join_deadlock(self):
        kernel = make_kernel()
        handles = {}

        def second():
            yield p.Join(handles["first"])

        def first():
            handles["first"] = yield p.GetSelf()
            child = yield p.Fork(second)
            yield p.Join(child)  # child is joining us: classic deadlock

        kernel.fork_root(first, detached=False)
        with pytest.raises(Deadlock) as excinfo:
            kernel.run_for(sec(1))
        assert "joining" in str(excinfo.value)

    def test_no_deadlock_when_all_threads_finish(self):
        kernel = make_kernel()

        def quick():
            yield p.Compute(1)

        kernel.fork_root(quick)
        kernel.run_for(sec(1))
        assert kernel.stats.live_threads == 0


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def build_and_run(seed):
            kernel = Kernel(KernelConfig(seed=seed, trace=True))
            results = []

            def worker(n):
                yield p.Compute(usec(100 + n))
                yield p.Yield()
                yield p.Compute(usec(50))
                return n

            def main():
                handles = []
                for n in range(5):
                    handles.append((yield p.Fork(worker, args=(n,))))
                for handle in handles:
                    results.append((yield p.Join(handle)))

            kernel.fork_root(main)
            kernel.run_for(msec(100))
            trace = [(e.time, e.category, e.kind, e.thread)
                     for e in kernel.tracer.events]
            return results, trace

        first = build_and_run(7)
        second = build_and_run(7)
        assert first == second
