"""Cache-tier tests: hit/miss accounting, TTL, invalidation, and the
single-flight guard's stampede contrast.

Each test compiles a small purpose-built :class:`WorkloadSpec` (tiny
populations, short runs) so the counter it pins is the dominant effect,
then reads the :class:`~repro.cluster.cache.CacheTier`'s books via
``run_workload(..., keep_world=True)``.
"""

from repro.kernel.simtime import msec, sec, usec
from repro.server.model import TenantSpec
from repro.workload import ClientClass, WorkloadSpec, run_workload


def _cached_tenant(name="reads", *, cost=usec(400), keys=4, hot=0.5,
                   ttl=msec(100), deadline=msec(500)) -> TenantSpec:
    return TenantSpec(
        name=name, mode="open", cost=cost, deadline=deadline,
        slo=msec(100), cached=True, cache_keys=keys, cache_hot_frac=hot,
        cache_ttl=ttl,
    )


def _spec(name, classes, **kwargs) -> WorkloadSpec:
    return WorkloadSpec(name=name, classes=classes, cache=True, **kwargs)


def _reads(tenant, clients=30_000, rate=0.01) -> ClientClass:
    return ClientClass(tenant=tenant, clients=clients, rate_per_client=rate)


def _run(spec, *, duration=msec(500), single_flight=None):
    report, ww = run_workload(
        spec=spec, duration=duration, single_flight=single_flight,
        keep_world=True,
    )
    cache = ww.cache
    counters = cache.cache_counters()
    ww.world.shutdown()
    return report, counters


# -- steady state ------------------------------------------------------------

def test_warm_cache_hits_dominate():
    """Long TTL and a small key space: after one fill per key, reads hit."""
    spec = _spec("warm", (_reads(_cached_tenant(ttl=sec(10))),))
    report, cache = _run(spec)
    assert cache["hits"] > cache["misses"]
    assert cache["hit_rate"] > 0.5
    assert cache["fills"] > 0
    assert cache["failed_fills"] == 0
    assert report.tenants["reads"]["completed"] > 0


def test_counters_are_consistent():
    """Every cacheable arrival is classified exactly once: hits + misses
    accounts for all completed lookups, and every miss either coalesced
    onto an in-flight fetch or minted one."""
    spec = _spec("consistent", (_reads(_cached_tenant()),))
    report, cache = _run(spec)
    offered = report.tenants["reads"]["offered"]
    assert 0 < cache["hits"] + cache["misses"] <= offered
    assert cache["misses"] == cache["coalesced_waits"] + cache["fetches"]


def test_single_flight_amplification_is_exactly_one():
    spec = _spec("guarded", (_reads(_cached_tenant(keys=2, hot=0.9)),))
    _, cache = _run(spec, single_flight=True)
    assert cache["fetches"] == cache["fetch_windows"]
    assert cache["amplification"] == 1.0
    assert cache["max_inflight_per_key"] == 1


def test_guard_off_duplicates_fetches():
    """Same scenario without the guard: concurrent misses on the hot
    key each fetch, so fetches outrun miss windows and the per-key
    in-flight depth exceeds one — the stampede in miniature."""
    tenant = _cached_tenant(keys=2, hot=0.9, ttl=msec(20), cost=usec(800))
    spec = _spec("stampy", (_reads(tenant, clients=60_000, rate=0.01),))
    _, off = _run(spec, single_flight=False)
    _, on = _run(spec, single_flight=True)
    assert off["coalesced_waits"] == 0
    assert off["fetches"] > off["fetch_windows"]
    assert off["amplification"] > 1.0
    assert off["max_inflight_per_key"] > 1
    assert on["coalesced_waits"] > 0
    assert off["fetches"] > on["fetches"]


def test_passthrough_for_uncached_tenants():
    """An uncached tenant rides through the cache untouched and is
    served (and counted) by the backend cluster."""
    api = TenantSpec(name="api", mode="open", cost=usec(400),
                     deadline=msec(400), slo=msec(100))
    spec = _spec("mixed", (
        _reads(_cached_tenant(ttl=sec(10))),
        ClientClass(tenant=api, clients=20_000, rate_per_client=0.01),
    ))
    report, cache = _run(spec)
    assert cache["hits"] > 0
    assert report.tenants["api"]["completed"] > 0
    assert report.cluster["totals"]["completed"] >= (
        report.tenants["api"]["completed"]
    )


# -- freshness: TTL, invalidation, dead-on-arrival fills ---------------------

def test_ttl_expires_entries():
    spec = _spec("expiring", (_reads(_cached_tenant(ttl=msec(30))),))
    _, cache = _run(spec)
    assert cache["expired_entries"] > 0
    assert cache["fills"] > cache["live_entries"]  # refilled many times


def test_invalidation_forces_refetch():
    """Wildcard invalidations drop every entry, so each cycle pays
    fresh fetches even though the TTL alone would have kept them."""
    quiet = _spec("quiet", (_reads(_cached_tenant(ttl=sec(10))),))
    noisy = _spec(
        "noisy", (_reads(_cached_tenant(ttl=sec(10))),),
        invalidate_every=msec(50),
    )
    _, without = _run(quiet)
    _, with_inval = _run(noisy)
    assert with_inval["invalidated"] > 0
    assert without["invalidated"] == 0
    assert with_inval["fetch_windows"] > without["fetch_windows"]


def test_fill_slower_than_ttl_is_dead_on_arrival():
    """Freshness dates from fetch *initiation*: when the fill latency
    exceeds the TTL the value is already stale on arrival — it serves
    its waiters but is never cached, so the cache never warms.  (This
    is the mechanism that keeps an unguarded stampede metastable.)"""
    tenant = _cached_tenant(ttl=msec(1), cost=usec(3000), keys=1, hot=1.0)
    spec = _spec("doa", (_reads(tenant, clients=10_000, rate=0.01),))
    report, cache = _run(spec, single_flight=True)
    assert cache["fills"] > 0
    assert cache["stale_fills"] == cache["fills"]
    assert cache["hits"] == 0
    assert cache["live_entries"] == 0
    # The waiters were still answered, just never from cache.
    assert report.tenants["reads"]["completed"] > 0


# -- determinism -------------------------------------------------------------

def test_cache_run_is_deterministic():
    spec = _spec("det", (_reads(_cached_tenant(ttl=msec(40))),))
    first, first_cache = _run(spec)
    second, second_cache = _run(spec)
    assert first.digest == second.digest
    assert first_cache == second_cache


# -- capacity: LRU eviction --------------------------------------------------

def test_unbounded_cache_never_evicts():
    spec = _spec("nolimit", (_reads(_cached_tenant(ttl=sec(10))),))
    _, cache = _run(spec)
    assert cache["capacity"] is None
    assert cache["evictions"] == 0


def test_capacity_evicts_lru():
    """A cache smaller than the key space churns: fills into the full
    map push out the least-recently-used entry and the live map never
    exceeds the configured capacity."""
    tenant = _cached_tenant(ttl=sec(10), keys=4, hot=0.0)
    spec = _spec("bounded", (_reads(tenant),), cache_capacity=2)
    _, cache = _run(spec)
    assert cache["capacity"] == 2
    assert cache["evictions"] > 0
    assert cache["live_entries"] <= 2
    # Every eviction is a future miss: with 4 uniformly drawn keys and
    # room for 2, refills (fetch windows beyond the first fill of each
    # key) must keep happening.
    assert cache["fetch_windows"] > 4


def test_capacity_one_keeps_single_flight_amplification():
    """The ISSUE pin: even a capacity-1 cache (maximum churn — every
    fill for a new key evicts the previous entry) keeps the guard's
    amplification at exactly 1.0: eviction storms widen miss windows
    but never mint duplicate fetches."""
    tenant = _cached_tenant(ttl=sec(10), keys=3, hot=0.5)
    spec = _spec("tiny", (_reads(tenant),), cache_capacity=1)
    _, cache = _run(spec, single_flight=True)
    assert cache["capacity"] == 1
    assert cache["evictions"] > 0
    assert cache["live_entries"] <= 1
    assert cache["fetches"] == cache["fetch_windows"]
    assert cache["amplification"] == 1.0
    assert cache["max_inflight_per_key"] == 1
