"""The synthetic Cedar and GVX worlds: structure and dynamic shape."""

import pytest

from repro.kernel.config import KernelConfig
from repro.kernel.simtime import msec, sec
from repro.workloads.base import (
    CvSleeper,
    LibraryPool,
    StageSet,
    run_activity,
)
from repro.workloads.cedar import CEDAR_ACTIVITIES, build_cedar_world
from repro.workloads.gvx import GVX_ACTIVITIES, build_gvx_world
from repro.kernel.rng import DeterministicRng


@pytest.fixture(scope="module")
def cedar_idle():
    return run_activity(
        system="Cedar", activity="idle",
        build_world=build_cedar_world, install=None,
        warmup=sec(2), window=sec(6),
    )


@pytest.fixture(scope="module")
def gvx_idle():
    return run_activity(
        system="GVX", activity="idle",
        build_world=build_gvx_world, install=None,
        warmup=sec(2), window=sec(6),
    )


class TestWorldStructure:
    def test_cedar_has_about_35_eternal_threads(self):
        world, context = build_cedar_world(KernelConfig(seed=0))
        assert 33 <= len(world.eternal_threads) <= 38
        world.shutdown()

    def test_gvx_has_22_eternal_threads(self):
        world, context = build_gvx_world(KernelConfig(seed=0))
        assert len(world.eternal_threads) == 22
        world.shutdown()

    def test_cedar_priority_levels(self):
        # Level 5 unused; 7 = Notifier; 6 = daemons (F4).
        world, context = build_cedar_world(KernelConfig(seed=0))
        priorities = [t.priority for t in world.eternal_threads]
        assert 5 not in priorities
        assert priorities.count(7) == 1
        assert priorities.count(6) == 2
        world.shutdown()

    def test_gvx_priority_levels(self):
        # Level 7 unused; 5 = input watcher; mostly level 3 (F4).
        world, context = build_gvx_world(KernelConfig(seed=0))
        priorities = [t.priority for t in world.eternal_threads]
        assert 7 not in priorities
        assert priorities.count(5) == 1
        assert priorities.count(3) >= 14
        world.shutdown()

    def test_gvx_parked_helpers_never_run(self):
        world, context = build_gvx_world(KernelConfig(seed=0))
        world.run_for(sec(5))
        parked = [t for t in world.eternal_threads if "parked" in t.name]
        assert len(parked) == 2
        for thread in parked:
            # "in fact never ran": only the initial dispatch that parked
            # them on their silent device (one switch cost, no work).
            assert thread.stats.dispatches == 1
            assert thread.stats.cpu_time <= 100
        world.shutdown()

    def test_activity_registries_complete(self):
        assert list(CEDAR_ACTIVITIES) == [
            "idle", "keyboard", "mouse", "scrolling", "formatting",
            "previewing", "make", "compile",
        ]
        assert list(GVX_ACTIVITIES) == ["idle", "keyboard", "mouse", "scrolling"]


class TestIdleShape:
    def test_cedar_idle_rates_in_band(self, cedar_idle):
        assert 0.5 <= cedar_idle.forks_per_sec <= 1.5
        assert 100 <= cedar_idle.switches_per_sec <= 180
        assert 85 <= cedar_idle.waits_per_sec <= 150
        assert 0.75 <= cedar_idle.timeout_fraction <= 0.95
        assert 250 <= cedar_idle.ml_enters_per_sec <= 550

    def test_cedar_idle_distinct_counts(self, cedar_idle):
        assert cedar_idle.distinct_cvs == 22
        assert 400 <= cedar_idle.distinct_mls <= 650

    def test_cedar_idle_thread_count_bounded(self, cedar_idle):
        # "the maximum number of threads concurrently existing in the
        # system never exceeded 41."
        assert cedar_idle.max_live_threads <= 41

    def test_gvx_idle_rates_in_band(self, gvx_idle):
        assert gvx_idle.forks_per_sec == 0
        assert 25 <= gvx_idle.switches_per_sec <= 55
        assert 20 <= gvx_idle.waits_per_sec <= 45
        assert gvx_idle.timeout_fraction >= 0.95

    def test_gvx_idle_distinct_counts(self, gvx_idle):
        assert gvx_idle.distinct_cvs == 5
        assert 30 <= gvx_idle.distinct_mls <= 60

    def test_idle_windows_are_deterministic(self, cedar_idle):
        repeat = run_activity(
            system="Cedar", activity="idle",
            build_world=build_cedar_world, install=None,
            warmup=sec(2), window=sec(6),
        )
        assert repeat.switches_per_sec == cedar_idle.switches_per_sec
        assert repeat.ml_enters_per_sec == cedar_idle.ml_enters_per_sec
        assert repeat.distinct_mls == cedar_idle.distinct_mls


class TestActivityShape:
    def test_cedar_keyboard_forks_per_keystroke(self):
        result = run_activity(
            system="Cedar", activity="keyboard",
            build_world=build_cedar_world,
            install=CEDAR_ACTIVITIES["keyboard"],
            warmup=sec(2), window=sec(6),
        )
        assert 3.5 <= result.forks_per_sec <= 6.5
        assert result.timeout_fraction < 0.7  # notifications dominate more

    def test_gvx_keyboard_never_forks(self):
        result = run_activity(
            system="GVX", activity="keyboard",
            build_world=build_gvx_world,
            install=GVX_ACTIVITIES["keyboard"],
            warmup=sec(2), window=sec(6),
        )
        assert result.forks_per_sec == 0
        assert result.ml_enters_per_sec > 800

    def test_compile_sweeps_most_monitors(self):
        result = run_activity(
            system="Cedar", activity="compile",
            build_world=build_cedar_world,
            install=CEDAR_ACTIVITIES["compile"],
            warmup=sec(2), window=sec(8),
        )
        assert result.distinct_mls > 2000
        assert result.forks_per_sec <= 0.6  # idle forking suppressed


class TestBuildingBlocks:
    def test_library_pool_touch_counts(self):
        from repro.kernel import Kernel

        kernel = Kernel(KernelConfig(switch_cost=0, monitor_overhead=0))
        pool = LibraryPool("lib", 50, DeterministicRng(1))

        def toucher():
            yield from pool.touch(120)

        kernel.fork_root(toucher)
        kernel.run_for(sec(1))
        assert kernel.stats.ml_enters == 120
        # 120 draws over 50 monitors: high but not full coverage required.
        assert 40 <= len(kernel.stats.monitors_used) <= 50
        kernel.shutdown()

    def test_library_pool_requires_size(self):
        with pytest.raises(ValueError):
            LibraryPool("empty", 0, DeterministicRng(1))

    def test_cv_sleeper_wakes_by_timeout_and_stimulus(self):
        from repro.kernel import Kernel

        kernel = Kernel(KernelConfig(switch_cost=0, monitor_overhead=0))
        pool = LibraryPool("lib", 10, DeterministicRng(1))
        sleeper = CvSleeper("s", period=msec(200), pool=pool, touches=1)
        kernel.fork_root(sleeper.proc, name="s")

        def stimulator():
            from repro.kernel import primitives as p

            yield p.Pause(msec(70))
            yield from sleeper.stimulate()

        kernel.fork_root(stimulator)
        kernel.run_for(sec(1))
        # Timeout activations (tick-granular ~250 ms apart) plus the
        # stimulated early wake.
        assert sleeper.activations >= 4
        assert sleeper.cv.notifies == 1
        assert sleeper.cv.timeouts >= 3
        kernel.shutdown()

    def test_stage_set_registers_distinct_cvs(self):
        from repro.kernel import Kernel

        kernel = Kernel(KernelConfig(switch_cost=0, monitor_overhead=0))
        stages = StageSet("pipeline", 6, wait_timeout=msec(20))

        def visitor():
            for _ in range(12):  # two full round-robin laps
                yield from stages.visit_next()

        kernel.fork_root(visitor)
        kernel.run_for(sec(3))
        assert len(kernel.stats.cvs_used) == 6
        kernel.shutdown()
