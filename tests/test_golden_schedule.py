"""Golden-schedule determinism guard.

The kernel hot paths are optimisation targets (O(1) scheduler queries,
allocation-free ``_next_time``, short-circuited tracing), but the contract
is that **no optimisation may change a single scheduling decision**.  This
module enforces that contract: each scenario runs a deterministic
simulation with full tracing on, fingerprints the entire event stream plus
the final statistics, and compares the SHA-256 digests against the pinned
values in ``tests/golden/schedule_hashes.json``.

If a change perturbs one dispatch, one preemption, one timeout, or one
counter in any scenario, the digest changes and the test fails loudly.

The scenario bodies and the fingerprint function live in
:mod:`repro.analysis.golden` so the watchdog false-positive tests and the
chaos runner can re-run the same scenarios under varied configuration.

Pinned hashes are only ever regenerated for *intentional* behaviour
changes (a bugfix that corrects scheduling or accounting):

    GOLDEN_UPDATE=1 PYTHONPATH=src python -m pytest tests/test_golden_schedule.py
    # or: PYTHONPATH=src:. python scripts/update_golden_schedule.py

The scenario set deliberately crosses every hot kernel path: the seed
Cedar/GVX worlds (idle and active), notify semantics (spurious-conflict
producer/consumer), YieldButNotToMe and directed-yield donations,
fork/join churn through the resource-wait path, every timed-wait kind
(sleep, CV timeout, channel timeout), multiprocessor dispatch, the
fair-share lottery, and weak memory with fences.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.golden import (  # noqa: F401 - re-exported for scripts
    SCENARIOS,
    fingerprint,
    load_golden,
    regenerate_golden,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "schedule_hashes.json"

_UPDATE = os.environ.get("GOLDEN_UPDATE") == "1"


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_schedule(name):
    if _UPDATE:
        pytest.skip("regenerating golden hashes (GOLDEN_UPDATE=1)")
    golden = load_golden(GOLDEN_PATH)
    assert name in golden, (
        f"no pinned hashes for scenario {name!r}; regenerate with "
        "GOLDEN_UPDATE=1 (see module docstring) and commit the result"
    )
    actual = SCENARIOS[name]()
    expected = golden[name]
    assert actual == expected, (
        f"scenario {name!r} diverged from the pinned golden schedule.\n"
        f"  expected: {expected}\n"
        f"  actual:   {actual}\n"
        "A kernel change perturbed the event stream or the statistics. "
        "If this is an intentional behaviour change (a scheduling or "
        "accounting bugfix), regenerate the pins with GOLDEN_UPDATE=1; "
        "if it came from a performance change, the optimisation is NOT "
        "behaviour-preserving and must be fixed."
    )


def test_golden_update_mode():
    """When GOLDEN_UPDATE=1, rewrite the pinned hashes (runs last)."""
    if not _UPDATE:
        pytest.skip("pin-check mode")
    golden = regenerate_golden(GOLDEN_PATH)
    assert set(golden) == set(SCENARIOS)
