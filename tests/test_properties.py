"""Property-based tests (hypothesis) on the kernel's core invariants."""

from hypothesis import Phase, given, settings, strategies as st

from repro.kernel import Kernel, KernelConfig, msec, sec, usec
from repro.kernel import primitives as p
from repro.kernel.events import EventHeap
from repro.kernel.rng import DeterministicRng
from repro.paradigms.slack import merge_keep_latest
from repro.sync import BoundedBuffer, ConditionVariable, Monitor, await_condition
from repro.kernel.primitives import Enter, Exit, Notify

# Simulations are deterministic, so a modest example budget suffices and
# keeps the suite fast.  The explain phase is disabled: its AST analysis
# trips a CPython 3.11 recursion-accounting bug (SystemError) on the
# deeply-nested generator frames these tests produce.
_PHASES = (Phase.explicit, Phase.reuse, Phase.generate, Phase.shrink)
FAST = settings(max_examples=25, deadline=None, phases=_PHASES)
SLOWER = settings(max_examples=12, deadline=None, phases=_PHASES)


def make_kernel(**overrides):
    defaults = dict(switch_cost=0, monitor_overhead=0)
    defaults.update(overrides)
    return Kernel(KernelConfig(**defaults))


class TestMutualExclusion:
    @SLOWER
    @given(
        thread_specs=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=7),     # priority
                st.integers(min_value=0, max_value=2000),  # work inside (us)
                st.integers(min_value=0, max_value=500),   # work outside
            ),
            min_size=2,
            max_size=6,
        ),
        rounds=st.integers(min_value=1, max_value=5),
    )
    def test_at_most_one_thread_inside_monitor(self, thread_specs, rounds):
        kernel = make_kernel()
        lock = Monitor("m")
        inside = []
        violations = []

        def worker(priority, work_in, work_out):
            for _ in range(rounds):
                yield Enter(lock)
                try:
                    inside.append(1)
                    if len(inside) > 1:
                        violations.append(len(inside))
                    yield p.Compute(work_in)
                    inside.pop()
                finally:
                    yield Exit(lock)
                yield p.Compute(work_out)

        for index, (priority, work_in, work_out) in enumerate(thread_specs):
            kernel.fork_root(
                worker, (priority, work_in, work_out),
                name=f"w{index}", priority=priority,
            )
        kernel.run_for(sec(5))
        assert violations == []
        assert kernel.stats.live_threads == 0
        kernel.shutdown()


class TestNotifySemanticsInsensitivity:
    @SLOWER
    @given(
        items=st.integers(min_value=1, max_value=15),
        consumers=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_wait_in_loop_code_survives_at_least_one_notify(
        self, items, consumers, seed
    ):
        """"Programs that obey the 'WAIT only in a loop' convention are
        insensitive to whether NOTIFY has at least one waiter wakens
        behavior or exactly one waiter wakens behavior." (Section 2.)"""
        results = {}
        for wakes in ("exactly_one", "at_least_one"):
            kernel = Kernel(
                KernelConfig(
                    seed=seed, notify_wakes=wakes, switch_cost=0,
                    monitor_overhead=0, at_least_one_extra_prob=0.5,
                )
            )
            lock = Monitor("m")
            nonempty = ConditionVariable(lock, "cv", timeout=msec(200))
            state = {"available": 0, "consumed": 0}

            def consumer():
                while state["consumed"] < items:
                    yield Enter(lock)
                    try:
                        yield from await_condition(
                            nonempty, lambda: state["available"] > 0
                        )
                        if state["consumed"] < items:
                            state["available"] -= 1
                            state["consumed"] += 1
                    finally:
                        yield Exit(lock)

            def producer():
                for _ in range(items):
                    yield Enter(lock)
                    try:
                        state["available"] += 1
                        yield Notify(nonempty)
                    finally:
                        yield Exit(lock)
                    yield p.Compute(usec(100))

            for index in range(consumers):
                kernel.fork_root(consumer, name=f"c{index}")
            kernel.fork_root(producer, name="producer")
            kernel.run_for(sec(30), raise_on_deadlock=False)
            results[wakes] = state["consumed"]
            kernel.shutdown()
        # Correctness is identical under both semantics.
        assert results["exactly_one"] == results["at_least_one"] == items


class TestBoundedBufferInvariants:
    @SLOWER
    @given(
        capacity=st.integers(min_value=1, max_value=6),
        items=st.integers(min_value=1, max_value=25),
        producer_cost=st.integers(min_value=0, max_value=300),
        consumer_cost=st.integers(min_value=0, max_value=300),
    )
    def test_fifo_and_capacity(self, capacity, items, producer_cost, consumer_cost):
        kernel = make_kernel()
        buffer = BoundedBuffer("buf", capacity=capacity)
        received = []

        def producer():
            for n in range(items):
                yield from buffer.put(n)
                yield p.Compute(producer_cost)

        def consumer():
            for _ in range(items):
                received.append((yield from buffer.get()))
                yield p.Compute(consumer_cost)

        kernel.fork_root(producer)
        kernel.fork_root(consumer)
        kernel.run_for(sec(10))
        assert received == list(range(items))
        assert buffer.max_depth <= capacity
        kernel.shutdown()


class TestDeterminism:
    @SLOWER
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        nthreads=st.integers(min_value=1, max_value=5),
    )
    def test_same_seed_same_outcome(self, seed, nthreads):
        def run():
            kernel = Kernel(KernelConfig(seed=seed))
            done = []

            def worker(index):
                yield p.Compute(usec(100 * (index + 1)))
                yield p.Pause(msec(10 * index))
                done.append((index, (yield p.GetTime())))

            for index in range(nthreads):
                kernel.fork_root(worker, (index,), priority=1 + index % 7)
            kernel.run_for(sec(2))
            outcome = (list(done), kernel.stats.switches, kernel.stats.dispatches)
            kernel.shutdown()
            return outcome

        assert run() == run()


class TestSchedulerProperties:
    @FAST
    @given(
        priorities=st.lists(
            st.integers(min_value=1, max_value=7),
            min_size=2, max_size=7, unique=True,
        )
    )
    def test_distinct_priorities_finish_in_priority_order(self, priorities):
        kernel = make_kernel()
        finish_order = []

        def worker(priority):
            yield p.Compute(msec(5))
            finish_order.append(priority)

        for priority in priorities:
            kernel.fork_root(worker, (priority,), priority=priority)
        kernel.run_for(sec(5))
        assert finish_order == sorted(priorities, reverse=True)
        kernel.shutdown()

    @FAST
    @given(
        duration=st.integers(min_value=0, max_value=500_000),
        quantum=st.sampled_from([msec(10), msec(20), msec(50), msec(100)]),
    )
    def test_pause_wakes_at_first_tick_after_deadline(self, duration, quantum):
        kernel = Kernel(KernelConfig(quantum=quantum, switch_cost=0,
                                     monitor_overhead=0))
        stamps = []

        def sleeper():
            yield p.Pause(duration)
            stamps.append((yield p.GetTime()))

        kernel.fork_root(sleeper)
        kernel.run_for(duration + 2 * quantum)
        woke = stamps[0]
        assert woke >= duration
        assert woke % quantum == 0
        # At most one full quantum of slack ("the smallest sleep interval
        # is the remainder of the scheduler quantum"; a deadline landing
        # exactly on a boundary waits for the next processed tick).
        assert woke - duration <= quantum
        kernel.shutdown()


class TestEventHeapProperties:
    @FAST
    @given(
        times=st.lists(st.integers(min_value=0, max_value=10_000),
                       min_size=1, max_size=40)
    )
    def test_pop_due_returns_time_order(self, times):
        heap = EventHeap()
        fired = []
        for index, when in enumerate(times):
            heap.push(when, lambda k, i=index, w=when: fired.append((w, i)))
        actions = heap.pop_due(10_000)
        for action in actions:
            action(None)
        assert [w for w, _ in fired] == sorted(times)
        assert len(heap) == 0

    @FAST
    @given(
        times=st.lists(st.integers(min_value=0, max_value=100),
                       min_size=2, max_size=20)
    )
    def test_cancel_removes_events(self, times):
        heap = EventHeap()
        fired = []
        tokens = [heap.push(when, lambda k: fired.append(1)) for when in times]
        heap.cancel(tokens[0])
        heap.cancel(tokens[0])  # double-cancel is harmless
        for action in heap.pop_due(1000):
            action(None)
        assert len(fired) == len(times) - 1


class TestRngProperties:
    @FAST
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_forked_streams_are_stable(self, seed):
        a = DeterministicRng(seed).fork("label")
        b = DeterministicRng(seed).fork("label")
        assert [a.randint(0, 100) for _ in range(5)] == [
            b.randint(0, 100) for _ in range(5)
        ]

    @FAST
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_different_labels_diverge(self, seed):
        a = DeterministicRng(seed).fork("one")
        b = DeterministicRng(seed).fork("two")
        assert [a.randint(0, 10**9) for _ in range(4)] != [
            b.randint(0, 10**9) for _ in range(4)
        ]

    @FAST
    @given(probability=st.floats(min_value=0.0, max_value=1.0))
    def test_chance_extremes(self, probability):
        rng = DeterministicRng(0)
        if probability <= 0.0:
            assert not rng.chance(probability)
        if probability >= 1.0:
            assert rng.chance(probability)


class TestMergeProperties:
    @FAST
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=5),
                      min_size=1, max_size=30)
    )
    def test_merge_keeps_one_latest_per_key(self, keys):
        class Item:
            def __init__(self, key, order):
                self.key = key
                self.order = order

        items = [Item(k, i) for i, k in enumerate(keys)]
        merged = merge_keep_latest(items)
        seen_keys = [item.key for item in merged]
        assert len(seen_keys) == len(set(seen_keys))
        # Each survivor is the LAST occurrence of its key.
        last_order = {}
        for item in items:
            last_order[item.key] = item.order
        for item in merged:
            assert item.order == last_order[item.key]


class TestRwLockProperties:
    @SLOWER
    @given(
        readers=st.integers(min_value=1, max_value=4),
        writers=st.integers(min_value=1, max_value=3),
        read_hold=st.integers(min_value=0, max_value=2000),
        write_hold=st.integers(min_value=0, max_value=2000),
    )
    def test_never_reader_and_writer_together(
        self, readers, writers, read_hold, write_hold
    ):
        from repro.sync.rwlock import ReadWriteLock

        kernel = make_kernel()
        rwlock = ReadWriteLock("shared")
        state = {"readers": 0, "writers": 0}
        violations = []

        def check():
            if state["writers"] > 1 or (state["writers"] and state["readers"]):
                violations.append(dict(state))

        def reader(priority):
            for _ in range(3):
                yield from rwlock.acquire_read()
                state["readers"] += 1
                check()
                yield p.Compute(read_hold)
                state["readers"] -= 1
                yield from rwlock.release_read()
                yield p.Compute(usec(50))

        def writer(priority):
            for _ in range(2):
                yield from rwlock.acquire_write()
                state["writers"] += 1
                check()
                yield p.Compute(write_hold)
                state["writers"] -= 1
                yield from rwlock.release_write()
                yield p.Compute(usec(50))

        for index in range(readers):
            prio = 1 + index % 7
            kernel.fork_root(reader, (prio,), priority=prio)
        for index in range(writers):
            prio = 1 + (index + 3) % 7
            kernel.fork_root(writer, (prio,), priority=prio)
        kernel.run_for(sec(30))
        assert violations == []
        assert kernel.stats.live_threads == 0  # nobody deadlocked
        kernel.shutdown()


class TestLatchProperties:
    @FAST
    @given(
        waiters=st.integers(min_value=1, max_value=6),
        fire_delay=st.integers(min_value=0, max_value=200_000),
    )
    def test_every_waiter_released_exactly_once(self, waiters, fire_delay):
        from repro.sync.latch import Latch

        kernel = make_kernel()
        latch = Latch("gate")
        released = []

        def waiter(tag):
            value = yield from latch.await_fired()
            released.append((tag, value))

        def completer():
            yield p.Pause(fire_delay)
            yield from latch.fire("go")

        for tag in range(waiters):
            kernel.fork_root(waiter, (tag,), priority=1 + tag % 7)
        kernel.fork_root(completer)
        kernel.run_for(sec(5))
        assert sorted(released) == [(tag, "go") for tag in range(waiters)]
        kernel.shutdown()
