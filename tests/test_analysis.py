"""Analysis layer: intervals, genealogy, priorities, report helpers."""

import pytest

from repro.analysis.genealogy import analyse as analyse_genealogy
from repro.analysis.genealogy import forked_during_window
from repro.analysis.intervals import (
    bucketise,
    has_bimodal_shape,
    summarise,
)
from repro.analysis.priorities import analyse as analyse_priorities
from repro.analysis.report import format_table, ratio, shape_holds, within_band
from repro.analysis import dynamic
from repro.kernel.simtime import msec
from repro.kernel.stats import ThreadRecord


def record(tid, generation, priority=4, name="t", created=0):
    return ThreadRecord(
        tid=tid, name=f"{name}#{tid}", parent_tid=None if generation == 0 else tid - 1,
        generation=generation, priority=priority, created_at=created, role=None,
    )


class TestIntervalAnalysis:
    def test_summarise_short_fraction(self):
        intervals = [msec(1)] * 8 + [msec(48)] * 2
        summary = summarise(intervals)
        assert summary.short_fraction == pytest.approx(0.8)

    def test_summarise_quantum_share(self):
        intervals = [msec(1)] * 10 + [msec(48)] * 2
        summary = summarise(intervals)
        expected = (2 * msec(48)) / (10 * msec(1) + 2 * msec(48))
        assert summary.quantum_time_share == pytest.approx(expected)

    def test_summarise_empty(self):
        summary = summarise([])
        assert summary.count == 0
        assert summary.short_fraction == 0.0
        assert summary.quantum_time_share == 0.0

    def test_bucketise_boundaries(self):
        edges = [msec(5), msec(50)]
        buckets = bucketise([msec(5), msec(6), msec(50), msec(51)], edges)
        labels = dict(buckets)
        assert labels["0-5ms"] == 1
        assert labels["5-50ms"] == 2
        assert labels[">50ms"] == 1

    def test_bimodal_detection(self):
        bimodal = [msec(1)] * 50 + [msec(47)] * 5
        unimodal = [msec(1)] * 50
        middling = [msec(1)] * 50 + [msec(30)] * 10 + [msec(47)] * 2
        assert has_bimodal_shape(bimodal)
        assert not has_bimodal_shape(unimodal)
        assert not has_bimodal_shape(middling)
        assert not has_bimodal_shape([])


class TestGenealogy:
    def test_generation_counts(self):
        log = [record(1, 0), record(2, 1), record(3, 1), record(4, 2)]
        report = analyse_genealogy(log)
        assert report.by_generation == {0: 1, 1: 2, 2: 1}
        assert report.max_generation == 2
        assert report.transient_count == 3

    def test_grandchild_kinds_deduplicated(self):
        log = [record(1, 2, name="child"), record(2, 2, name="child")]
        report = analyse_genealogy(log)
        assert report.grandchild_kinds == ["child"]

    def test_window_filter(self):
        log = [record(1, 0, created=5), record(2, 0, created=15)]
        assert [r.tid for r in forked_during_window(log, 0, 10)] == [1]

    def test_empty_log(self):
        report = analyse_genealogy([])
        assert report.max_generation == 0
        assert report.transient_count == 0


class TestPriorities:
    def test_unused_level_detection(self):
        cpu = {p: (100 if p != 5 else 0) for p in range(1, 8)}
        log = [record(i, 0, priority=p) for i, p in enumerate([1, 2, 3, 4, 6, 7])]
        report = analyse_priorities(cpu, log)
        assert report.unused_levels == [5]

    def test_busiest_level(self):
        cpu = {p: 0 for p in range(1, 8)}
        cpu[3] = 1000
        report = analyse_priorities(cpu, [record(1, 0, priority=3)])
        assert report.busiest_level == 3

    def test_thread_counts_by_priority(self):
        log = [record(i, 0, priority=3) for i in range(5)]
        report = analyse_priorities({p: 1 for p in range(1, 8)}, log)
        assert report.threads_by_priority[3] == 5


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], ["xx", 0.001]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_ratio(self):
        assert ratio(2.0, 1.0) == "2.00x"
        assert ratio(0.0, 0.0) == "-"
        assert ratio(1.0, 0.0) == "inf"

    def test_within_band(self):
        assert within_band(0.5, 0.2, 0.6)
        assert not within_band(0.7, 0.2, 0.6)

    def test_shape_holds(self):
        assert shape_holds(110, 100, 0.2)
        assert not shape_holds(130, 100, 0.2)
        assert shape_holds(0, 0, 0.2)
        assert not shape_holds(1, 0, 0.2)


class TestDynamicRegistry:
    def test_paper_rows_complete(self):
        assert len(dynamic.PAPER_ROWS) == 12
        for system, count in (("Cedar", 8), ("GVX", 4)):
            rows = [r for (s, _a), r in dynamic.PAPER_ROWS.items() if s == system]
            assert len(rows) == count

    def test_paper_row_values_transcribed(self):
        idle = dynamic.paper_row("Cedar", "idle")
        assert idle.switches_per_sec == 132
        assert idle.distinct_mls == 554
        gvx_kb = dynamic.paper_row("GVX", "keyboard")
        assert gvx_kb.forks_per_sec == 0.0
        assert gvx_kb.ml_enters_per_sec == 1436

    def test_measure_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            dynamic.measure("VMS", "idle")
        with pytest.raises(ValueError):
            dynamic.measure("GVX", "compile")
